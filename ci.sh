#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), and the full
# workspace test suite. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> kernel_bench --smoke (ISA A/B digest + plan-cache gate)"
# Tiny shapes; the binary asserts its own CSV schema, that the serving
# sweep's warm path repacks zero plan panels after warmup (cold vs warm
# is checked in-process: the first pass packs, the timed passes must
# not), and that planned logits are bit-identical to the unplanned
# baseline. Run twice — once forced onto the portable scalar kernels,
# once auto-dispatched — and assert both the kernel result digest and
# the planned-path logits digest are bit-identical, pinning the
# cross-ISA determinism guarantee for the direct AND cached-plan paths.
scalar_dir="$(mktemp -d)"
auto_dir="$(mktemp -d)"
MEDSPLIT_RESULTS_DIR="$scalar_dir" MEDSPLIT_ISA=scalar \
    cargo run -q --release --offline -p medsplit-bench --bin kernel_bench -- --smoke
MEDSPLIT_RESULTS_DIR="$auto_dir" MEDSPLIT_ISA=auto \
    cargo run -q --release --offline -p medsplit-bench --bin kernel_bench -- --smoke
for digest in kernel_digest plan_digest; do
    if ! cmp -s "$scalar_dir/$digest.txt" "$auto_dir/$digest.txt"; then
        echo "ci.sh: $digest diverged between MEDSPLIT_ISA=scalar and auto:" >&2
        echo "  scalar: $(cat "$scalar_dir/$digest.txt")" >&2
        echo "  auto:   $(cat "$auto_dir/$digest.txt")" >&2
        exit 1
    fi
    echo "    $digest identical across ISAs: $(cat "$auto_dir/$digest.txt")"
done

echo "==> miri (unsafe microkernel + simd + scratch modules)"
# Miri (or cargo-careful as a fallback) over the unsafe kernel modules'
# unit tests. Both need rustup components this offline image may lack,
# so the job is availability-gated rather than required.
if cargo miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-disable-isolation" cargo miri test -q -p medsplit-tensor --offline \
        --lib -- microkernel:: simd:: scratch::
elif cargo careful --version >/dev/null 2>&1; then
    cargo careful test -q -p medsplit-tensor --offline --lib
else
    echo "    (skipped: neither cargo-miri nor cargo-careful is installed)"
fi

echo "==> trace_report --smoke"
# Traced tiny split-training run: dumps a JSONL trace, re-loads it, and
# asserts the expected span names, non-zero per-kind wire counters, and
# per-round phase shares summing to ~100%.
MEDSPLIT_RESULTS_DIR="$(mktemp -d)" \
    cargo run -q --release --offline -p medsplit-bench --bin trace_report -- --smoke

echo "==> resilience_bench --smoke (chaos gate)"
# Fixed-seed tiny MLP under injected faults: asserts training completes
# under 10% loss within quorum, a crash-rejoin window degrades exactly
# its rounds, and a faulty run replays bit-identically from its seed.
MEDSPLIT_RESULTS_DIR="$(mktemp -d)" \
    cargo run -q --release --offline -p medsplit-bench --bin resilience_bench -- --smoke

echo "==> fleet_bench --smoke (sharded serving gate)"
# Replica-count sweep over the fleet: the binary itself asserts the
# completed-logits digest is bit-identical across 1/2/4 replicas, so a
# green run pins the "sharding never changes results" guarantee.
MEDSPLIT_RESULTS_DIR="$(mktemp -d)" \
    cargo run -q --release --offline -p medsplit-bench --bin fleet_bench -- --smoke

echo "==> fleet drain/rejoin acceptance (chaos gate)"
# The 4-replica crash + rejoin scenario: one replica dies mid-load,
# in-flight work re-routes to ring successors, the replica rejoins and
# takes its session shard back, and no admitted request is dropped.
cargo test -q --release --offline --test fleet_chaos

echo "ci.sh: all green"
