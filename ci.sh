#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), and the full
# workspace test suite. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> kernel_bench --smoke"
# Tiny shapes; the binary asserts its own CSV schema, so a green run
# means the benchmark harness itself still works.
MEDSPLIT_RESULTS_DIR="$(mktemp -d)" \
    cargo run -q --release --offline -p medsplit-bench --bin kernel_bench -- --smoke

echo "==> trace_report --smoke"
# Traced tiny split-training run: dumps a JSONL trace, re-loads it, and
# asserts the expected span names, non-zero per-kind wire counters, and
# per-round phase shares summing to ~100%.
MEDSPLIT_RESULTS_DIR="$(mktemp -d)" \
    cargo run -q --release --offline -p medsplit-bench --bin trace_report -- --smoke

echo "==> resilience_bench --smoke (chaos gate)"
# Fixed-seed tiny MLP under injected faults: asserts training completes
# under 10% loss within quorum, a crash-rejoin window degrades exactly
# its rounds, and a faulty run replays bit-identically from its seed.
MEDSPLIT_RESULTS_DIR="$(mktemp -d)" \
    cargo run -q --release --offline -p medsplit-bench --bin resilience_bench -- --smoke

echo "ci.sh: all green"
