#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), the full
# workspace test suite, and the lab-orchestrated experiment gates.
# Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> miri (unsafe microkernel + simd + scratch modules)"
# Miri (or cargo-careful as a fallback) over the unsafe kernel modules'
# unit tests. Both need rustup components this offline image may lack,
# so the job is availability-gated rather than required.
if cargo miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-disable-isolation" cargo miri test -q -p medsplit-tensor --offline \
        --lib -- microkernel:: simd:: scratch::
elif cargo careful --version >/dev/null 2>&1; then
    cargo careful test -q -p medsplit-tensor --offline --lib
else
    echo "    (skipped: neither cargo-miri nor cargo-careful is installed)"
fi

echo "==> lab ci --smoke (manifest-declared experiment gates)"
# The lab replaces the old hand-written smoke stanzas: every
# experiments/*.lab.toml with `ci = true` runs here.
#
#   kernels_ab.lab.toml  — the scalar-vs-auto ISA A/B, declared as an
#                          `invariant_across = ["isa"]` gate on both the
#                          kernel digest and the plan-cache serving
#                          digest (was the mktemp/cmp stanza).
#   smoke.lab.toml       — the split-training matrix (fault × codec ×
#                          threads) gated against baselines/smoke.json,
#                          with thread-invariance declared on accuracy,
#                          bytes, messages, and makespan.
#   bins_smoke.lab.toml  — trace_report / resilience_bench / fleet_bench
#                          smokes (each still runs its own in-process
#                          asserts) pinned against baselines/bins_smoke.json.
#   hierarchy_chaos.lab.toml — relay-hierarchy training under relay
#                          crashes and region partitions, gated against
#                          baselines/hierarchy_chaos.json with the
#                          failover counters declared thread-invariant.
#
# `lab ci` additionally executes every manifest twice and fails unless
# the metrics digests are bit-identical — the determinism witness.
cargo run -q --release --offline -p medsplit-bench --bin lab -- ci --smoke

echo "==> lab gate negative test (a perturbed baseline must fail)"
# The regression gate is only trustworthy if it actually trips: perturb
# one byte-count in the committed baseline and assert `lab gate` exits
# nonzero against it.
perturbed="$(mktemp)"
sed 's/total_bytes": 48880/total_bytes": 48881/' baselines/smoke.json > "$perturbed"
if cmp -s baselines/smoke.json "$perturbed"; then
    echo "ci.sh: perturbation was a no-op — update the sed pattern" >&2
    exit 1
fi
if cargo run -q --release --offline -p medsplit-bench --bin lab -- \
    gate experiments/smoke.lab.toml --baseline "$perturbed" >/dev/null 2>&1; then
    echo "ci.sh: lab gate passed against a perturbed baseline" >&2
    exit 1
fi
rm -f "$perturbed"
echo "    perturbed baseline correctly rejected"

echo "==> fleet drain/rejoin acceptance (chaos gate)"
# The 4-replica crash + rejoin scenario: one replica dies mid-load,
# in-flight work re-routes to ring successors, the replica rejoins and
# takes its session shard back, and no admitted request is dropped.
cargo test -q --release --offline --test fleet_chaos

echo "ci.sh: all green"
