//! Wire messages.

use bytes::Bytes;

use crate::node::NodeId;

/// Fixed per-message framing overhead charged by the accounting, in bytes
/// (an approximation of transport headers: src/dst/round/kind plus
/// TCP/IP framing).
pub const HEADER_BYTES: usize = 64;

/// Frame code base for [`NodeId::Replica`] in [`Envelope::encode`]:
/// replica `i` is encoded as `REPLICA_CODE_BASE + i`, keeping the whole
/// lower half of the code space for platforms and `u64::MAX` for the
/// server.
const REPLICA_CODE_BASE: u64 = 1 << 62;

/// Frame code base for [`NodeId::Relay`]: relay `i` is encoded as
/// `RELAY_CODE_BASE + i`, below the replica band so decode can
/// discriminate by range.
const RELAY_CODE_BASE: u64 = 1 << 61;

/// The semantic type of a message, used for per-kind byte accounting so
/// the evaluation can report *where* each protocol's bandwidth goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MessageKind {
    /// Split learning message 1: `L1` activations, platform → server.
    Activations,
    /// Split learning message 2: output-layer logits, server → platform.
    Logits,
    /// Split learning message 3: loss gradients w.r.t. logits,
    /// platform → server.
    LogitGrads,
    /// Split learning message 4: gradients at the cut, server → platform.
    CutGrads,
    /// U-shaped split: middle-section output features, server → platform
    /// (takes the place of logits when the classifier head also stays on
    /// the platform).
    Features,
    /// U-shaped split: gradients w.r.t. the middle-section output,
    /// platform → server.
    FeatureGrads,
    /// Full model parameters, server → platform (FedAvg / sync-SGD
    /// download).
    ModelDown,
    /// Full model parameters, platform → server (FedAvg upload).
    ModelUp,
    /// Full gradient vector, platform → server (sync-SGD push).
    GradPush,
    /// `L1` parameters exchanged between platforms via the server
    /// (periodic-averaging / cyclic-sharing extensions).
    L1Sync,
    /// Raw patient data, platform → server — only the privacy-violating
    /// centralised baseline ever sends this.
    RawData,
    /// Serving-path request: `L1` activations for a single inference
    /// request (possibly noised), platform → server. Distinct from
    /// [`MessageKind::Activations`] so training and serving traffic are
    /// accounted separately.
    InferRequest,
    /// Serving-path response: logits for one inference request (or an
    /// empty payload for a rejection/timeout), server → platform.
    InferResponse,
    /// Control traffic (round begin/end, shutdown).
    Control,
    /// Fleet rebalancing: exported per-session serving state handed from
    /// a draining (or rejoined-towards) replica to its ring successor,
    /// replica → replica.
    SessionHandoff,
    /// Hierarchical split: a region's smashed-data envelopes concatenated
    /// into one frame by a relay (platform→server direction) or by the
    /// server (server→platform direction), relay ↔ server.
    RelayBatch,
}

impl MessageKind {
    /// Stable short name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            MessageKind::Activations => "activations",
            MessageKind::Logits => "logits",
            MessageKind::LogitGrads => "logit_grads",
            MessageKind::CutGrads => "cut_grads",
            MessageKind::Features => "features",
            MessageKind::FeatureGrads => "feature_grads",
            MessageKind::ModelDown => "model_down",
            MessageKind::ModelUp => "model_up",
            MessageKind::GradPush => "grad_push",
            MessageKind::L1Sync => "l1_sync",
            MessageKind::RawData => "raw_data",
            MessageKind::InferRequest => "infer_request",
            MessageKind::InferResponse => "infer_response",
            MessageKind::Control => "control",
            MessageKind::SessionHandoff => "session_handoff",
            MessageKind::RelayBatch => "relay_batch",
        }
    }

    /// Stable single-byte code used by [`Envelope::encode`]. Codes are
    /// append-only: new kinds take the next free value so old captures
    /// stay decodable.
    pub fn wire_code(&self) -> u8 {
        match self {
            MessageKind::Activations => 0,
            MessageKind::Logits => 1,
            MessageKind::LogitGrads => 2,
            MessageKind::CutGrads => 3,
            MessageKind::Features => 4,
            MessageKind::FeatureGrads => 5,
            MessageKind::ModelDown => 6,
            MessageKind::ModelUp => 7,
            MessageKind::GradPush => 8,
            MessageKind::L1Sync => 9,
            MessageKind::RawData => 10,
            MessageKind::Control => 11,
            MessageKind::InferRequest => 12,
            MessageKind::InferResponse => 13,
            MessageKind::SessionHandoff => 14,
            MessageKind::RelayBatch => 15,
        }
    }

    /// Inverse of [`MessageKind::wire_code`].
    pub fn from_wire_code(code: u8) -> Option<MessageKind> {
        MessageKind::all().iter().copied().find(|k| k.wire_code() == code)
    }

    /// All kinds, for report iteration.
    pub fn all() -> &'static [MessageKind] {
        &[
            MessageKind::Activations,
            MessageKind::Logits,
            MessageKind::LogitGrads,
            MessageKind::CutGrads,
            MessageKind::Features,
            MessageKind::FeatureGrads,
            MessageKind::ModelDown,
            MessageKind::ModelUp,
            MessageKind::GradPush,
            MessageKind::L1Sync,
            MessageKind::RawData,
            MessageKind::InferRequest,
            MessageKind::InferResponse,
            MessageKind::Control,
            MessageKind::SessionHandoff,
            MessageKind::RelayBatch,
        ]
    }
}

impl std::fmt::Display for MessageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// FNV-1a 32-bit hash of a byte slice — the payload checksum carried by
/// every [`Envelope`]. Not cryptographic: it exists so that *injected*
/// bit corruption (see `ChaosTransport`) is detected at the receiver
/// instead of being silently trained on.
pub fn payload_checksum(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Tensor wire-format magics, mirrored from `medsplit_tensor::serialize`
/// (simnet deliberately does not depend on the tensor crate). Used only
/// to *recognise* compressed tensor payloads for logical-byte accounting;
/// (de)serialisation stays in the tensor crate.
const TENSOR_MAGIC_F32: u32 = 0x4D54_534E;
const TENSOR_MAGIC_F16: u32 = 0x4D54_5348;
const TENSOR_MAGIC_I8: u32 = 0x4D54_5351;

/// The number of bytes this payload would occupy under the exact f32
/// tensor encoding — the *logical* payload size.
///
/// Compressed tensor payloads (f16 / int8 magic) are mapped back to
/// their f32-equivalent length from the header alone; f32 tensors,
/// control payloads, relay batches and anything unrecognised report
/// their actual length. The ratio `wire / logical` per message kind is
/// therefore exactly the codec's compression ratio on tensor traffic.
pub fn logical_payload_len(payload: &[u8]) -> usize {
    if payload.len() < 8 {
        return payload.len();
    }
    let magic = u32::from_le_bytes(payload[0..4].try_into().expect("4-byte slice"));
    let rank = u32::from_le_bytes(payload[4..8].try_into().expect("4-byte slice")) as usize;
    if rank > 16 {
        return payload.len();
    }
    match magic {
        TENSOR_MAGIC_F32 => payload.len(),
        TENSOR_MAGIC_F16 => {
            // header 8 + 8·rank, then numel × u16 → numel × f32.
            let header = 8 + 8 * rank;
            match payload.len().checked_sub(header) {
                Some(data) => header + data / 2 * 4,
                None => payload.len(),
            }
        }
        TENSOR_MAGIC_I8 => {
            // header 8 + 8·rank + 4-byte scale, then numel × i8 → numel
            // × f32 (and the scale disappears from the f32 frame).
            let header = 8 + 8 * rank + 4;
            match payload.len().checked_sub(header) {
                Some(data) => header - 4 + data * 4,
                None => payload.len(),
            }
        }
        _ => payload.len(),
    }
}

/// One message on the wire: routing metadata plus an opaque serialised
/// payload. Payloads are produced by `Tensor::to_bytes` (or are empty for
/// control messages), so the byte accounting below is exact.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Training round this message belongs to.
    pub round: u64,
    /// Per-sender sequence number, stamped by the transport at send time
    /// (0 until sent through a sequencing transport). Lets receivers
    /// distinguish a retransmission from a duplicated delivery.
    pub seq: u64,
    /// Message kind for accounting and dispatch.
    pub kind: MessageKind,
    /// FNV-1a checksum of the payload, computed at construction. A
    /// mismatch against [`payload_checksum`] of the received payload
    /// means the bytes were corrupted in flight.
    pub checksum: u32,
    /// Serialised payload.
    pub payload: Bytes,
}

impl Envelope {
    /// Creates an envelope. The payload checksum is computed here; the
    /// sequence number starts at 0 and is stamped by the transport.
    pub fn new(src: NodeId, dst: NodeId, round: u64, kind: MessageKind, payload: Bytes) -> Self {
        let checksum = payload_checksum(&payload);
        Envelope {
            src,
            dst,
            round,
            seq: 0,
            kind,
            checksum,
            payload,
        }
    }

    /// A payload-less control message.
    pub fn control(src: NodeId, dst: NodeId, round: u64) -> Self {
        Envelope::new(src, dst, round, MessageKind::Control, Bytes::new())
    }

    /// Whether the payload still matches the checksum stamped at
    /// construction. `false` means the message was corrupted in flight
    /// and must be discarded (and, under a retry policy, NACKed).
    pub fn verify_checksum(&self) -> bool {
        payload_checksum(&self.payload) == self.checksum
    }

    /// Bytes this message occupies on the wire (payload + framing).
    pub fn wire_size(&self) -> usize {
        self.payload.len() + HEADER_BYTES
    }

    /// Bytes this message *would* occupy with an uncompressed f32 tensor
    /// payload (payload + framing) — see [`logical_payload_len`]. Equal
    /// to [`wire_size`](Self::wire_size) for everything except compressed
    /// tensor payloads; the gap between the two is exactly what a wire
    /// codec saved.
    pub fn logical_size(&self) -> usize {
        logical_payload_len(&self.payload) + HEADER_BYTES
    }

    /// Serialises the envelope to a canonical byte frame:
    /// `kind u8 · src u64 · dst u64 · round u64 · seq u64 · checksum u32
    /// · len u64 · payload`, all little-endian. The server is encoded as
    /// `u64::MAX`, platform `i` as `i`.
    ///
    /// The frame is what a real socket transport would write; the
    /// *accounted* framing overhead stays the flat [`HEADER_BYTES`]
    /// approximation regardless of the actual frame length.
    pub fn encode(&self) -> Bytes {
        fn node_code(n: NodeId) -> u64 {
            match n {
                NodeId::Server => u64::MAX,
                NodeId::Platform(i) => i as u64,
                NodeId::Replica(i) => REPLICA_CODE_BASE + i as u64,
                NodeId::Relay(i) => RELAY_CODE_BASE + i as u64,
            }
        }
        let mut out = Vec::with_capacity(45 + self.payload.len());
        out.push(self.kind.wire_code());
        out.extend_from_slice(&node_code(self.src).to_le_bytes());
        out.extend_from_slice(&node_code(self.dst).to_le_bytes());
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        Bytes::from(out)
    }

    /// Decodes a frame produced by [`Envelope::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] for truncated frames or unknown kind codes.
    pub fn decode(frame: &[u8]) -> Result<Envelope, FrameError> {
        fn take_u64(frame: &[u8], at: usize) -> Result<u64, FrameError> {
            let bytes = frame
                .get(at..at + 8)
                .ok_or(FrameError::Truncated { len: frame.len() })?;
            Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
        }
        fn node_from(code: u64) -> NodeId {
            if code == u64::MAX {
                NodeId::Server
            } else if code >= REPLICA_CODE_BASE {
                NodeId::Replica((code - REPLICA_CODE_BASE) as usize)
            } else if code >= RELAY_CODE_BASE {
                NodeId::Relay((code - RELAY_CODE_BASE) as usize)
            } else {
                NodeId::Platform(code as usize)
            }
        }
        let kind_code = *frame.first().ok_or(FrameError::Truncated { len: 0 })?;
        let kind = MessageKind::from_wire_code(kind_code).ok_or(FrameError::UnknownKind(kind_code))?;
        let src = node_from(take_u64(frame, 1)?);
        let dst = node_from(take_u64(frame, 9)?);
        let round = take_u64(frame, 17)?;
        let seq = take_u64(frame, 25)?;
        let checksum_bytes = frame
            .get(33..37)
            .ok_or(FrameError::Truncated { len: frame.len() })?;
        let checksum = u32::from_le_bytes(checksum_bytes.try_into().expect("4-byte slice"));
        let len = take_u64(frame, 37)? as usize;
        let payload = frame
            .get(45..45 + len)
            .ok_or(FrameError::Truncated { len: frame.len() })?;
        Ok(Envelope {
            src,
            dst,
            round,
            seq,
            kind,
            checksum,
            payload: Bytes::copy_from_slice(payload),
        })
    }
}

/// Errors from [`Envelope::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The frame ended before the declared payload length.
    Truncated {
        /// Actual frame length in bytes.
        len: usize,
    },
    /// The kind byte does not name a [`MessageKind`].
    UnknownKind(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { len } => write!(f, "truncated envelope frame ({len} bytes)"),
            FrameError::UnknownKind(code) => write!(f, "unknown message kind code {code}"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_header() {
        let env = Envelope::new(
            NodeId::Platform(0),
            NodeId::Server,
            1,
            MessageKind::Activations,
            Bytes::from(vec![0u8; 100]),
        );
        assert_eq!(env.wire_size(), 164);
        assert_eq!(
            Envelope::control(NodeId::Server, NodeId::Platform(0), 0).wire_size(),
            HEADER_BYTES
        );
    }

    /// Hand-builds a tensor payload header (`magic · rank · dims`) plus
    /// `data_len` payload bytes, mirroring the tensor crate's format.
    fn tensor_payload(magic: u32, dims: &[u64], scale: bool, data_len: usize) -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&magic.to_le_bytes());
        p.extend_from_slice(&(dims.len() as u32).to_le_bytes());
        for &d in dims {
            p.extend_from_slice(&d.to_le_bytes());
        }
        if scale {
            p.extend_from_slice(&1.0f32.to_le_bytes());
        }
        p.extend_from_slice(&vec![0u8; data_len]);
        p
    }

    #[test]
    fn logical_len_inverts_compressed_encodings() {
        // A [3, 4] tensor: f32 frame = 8 + 16 + 48 bytes.
        let f32_len = 8 + 16 + 48;
        let f32_payload = tensor_payload(TENSOR_MAGIC_F32, &[3, 4], false, 48);
        assert_eq!(logical_payload_len(&f32_payload), f32_len);
        // f16 stores 2 bytes per element, logical is the f32 frame.
        let f16_payload = tensor_payload(TENSOR_MAGIC_F16, &[3, 4], false, 24);
        assert_eq!(f16_payload.len(), 8 + 16 + 24);
        assert_eq!(logical_payload_len(&f16_payload), f32_len);
        // int8 stores 1 byte per element plus a 4-byte scale.
        let i8_payload = tensor_payload(TENSOR_MAGIC_I8, &[3, 4], true, 12);
        assert_eq!(i8_payload.len(), 8 + 16 + 4 + 12);
        assert_eq!(logical_payload_len(&i8_payload), f32_len);
    }

    #[test]
    fn logical_len_passes_through_non_tensor_payloads() {
        assert_eq!(logical_payload_len(&[]), 0);
        assert_eq!(logical_payload_len(&[1, 2, 3]), 3);
        let opaque = vec![0xABu8; 100];
        assert_eq!(logical_payload_len(&opaque), 100);
        // A truncated f16 header (rank says 16 dims, none present) must
        // not underflow — it falls back to the actual length.
        let mut short = Vec::new();
        short.extend_from_slice(&TENSOR_MAGIC_F16.to_le_bytes());
        short.extend_from_slice(&16u32.to_le_bytes());
        assert_eq!(logical_payload_len(&short), 8);
        // Implausible rank: treated as opaque.
        let mut weird = Vec::new();
        weird.extend_from_slice(&TENSOR_MAGIC_I8.to_le_bytes());
        weird.extend_from_slice(&99u32.to_le_bytes());
        weird.extend_from_slice(&[0u8; 64]);
        assert_eq!(logical_payload_len(&weird), 72);
    }

    #[test]
    fn logical_size_adds_framing() {
        let payload = tensor_payload(TENSOR_MAGIC_F16, &[8], false, 16);
        let env = Envelope::new(
            NodeId::Platform(0),
            NodeId::Server,
            0,
            MessageKind::Activations,
            Bytes::from(payload),
        );
        assert_eq!(env.wire_size(), 8 + 8 + 16 + HEADER_BYTES);
        assert_eq!(env.logical_size(), 8 + 8 + 32 + HEADER_BYTES);
    }

    #[test]
    fn kind_names_unique() {
        let mut names: Vec<&str> = MessageKind::all().iter().map(|k| k.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(MessageKind::Activations.to_string(), "activations");
        assert_eq!(MessageKind::CutGrads.to_string(), "cut_grads");
    }

    #[test]
    fn wire_codes_unique_and_invertible() {
        let mut codes: Vec<u8> = MessageKind::all().iter().map(|k| k.wire_code()).collect();
        let before = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), before);
        for kind in MessageKind::all() {
            assert_eq!(MessageKind::from_wire_code(kind.wire_code()), Some(*kind));
        }
        assert_eq!(MessageKind::from_wire_code(200), None);
    }

    #[test]
    fn every_kind_round_trips_through_encode() {
        for (i, kind) in MessageKind::all().iter().enumerate() {
            let mut env = Envelope::new(
                NodeId::Platform(i),
                NodeId::Server,
                i as u64 * 7,
                *kind,
                Bytes::from(vec![i as u8; i * 13]),
            );
            env.seq = i as u64 * 31 + 1;
            let decoded = Envelope::decode(&env.encode()).unwrap();
            assert_eq!(decoded.src, env.src);
            assert_eq!(decoded.dst, env.dst);
            assert_eq!(decoded.round, env.round);
            assert_eq!(decoded.seq, env.seq);
            assert_eq!(decoded.kind, env.kind);
            assert_eq!(decoded.checksum, env.checksum);
            assert_eq!(decoded.payload, env.payload);
            assert_eq!(decoded.wire_size(), env.wire_size());
            assert!(decoded.verify_checksum());
        }
        // Server as source survives the u64::MAX encoding.
        let env = Envelope::control(NodeId::Server, NodeId::Platform(3), 9);
        let decoded = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(decoded.src, NodeId::Server);
        assert_eq!(decoded.dst, NodeId::Platform(3));
        // Replicas survive the offset encoding in either role.
        let env = Envelope::control(NodeId::Replica(5), NodeId::Replica(0), 1);
        let decoded = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(decoded.src, NodeId::Replica(5));
        assert_eq!(decoded.dst, NodeId::Replica(0));
        // Relays survive too, and decode below the replica band.
        let env = Envelope::control(NodeId::Relay(3), NodeId::Server, 2);
        let decoded = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(decoded.src, NodeId::Relay(3));
        assert_eq!(decoded.dst, NodeId::Server);
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        let env = Envelope::new(
            NodeId::Platform(0),
            NodeId::Server,
            1,
            MessageKind::InferRequest,
            Bytes::from(vec![1, 2, 3]),
        );
        let frame = env.encode();
        assert!(matches!(
            Envelope::decode(&[]),
            Err(FrameError::Truncated { len: 0 })
        ));
        assert!(matches!(
            Envelope::decode(&frame[..frame.len() - 1]),
            Err(FrameError::Truncated { .. })
        ));
        let mut bad_kind = frame.to_vec();
        bad_kind[0] = 250;
        assert!(matches!(
            Envelope::decode(&bad_kind),
            Err(FrameError::UnknownKind(250))
        ));
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let mut env = Envelope::new(
            NodeId::Platform(0),
            NodeId::Server,
            2,
            MessageKind::Activations,
            Bytes::from(vec![9u8; 32]),
        );
        assert!(env.verify_checksum());
        // Flip one payload bit: the stamped checksum no longer matches.
        let mut bytes = env.payload.to_vec();
        bytes[7] ^= 0x10;
        env.payload = Bytes::from(bytes);
        assert!(!env.verify_checksum());
        // The corruption also survives an encode/decode round trip.
        let decoded = Envelope::decode(&env.encode()).unwrap();
        assert!(!decoded.verify_checksum());
        // Empty payloads are valid too.
        assert!(Envelope::control(NodeId::Server, NodeId::Platform(0), 0).verify_checksum());
    }
}
