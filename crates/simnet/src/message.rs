//! Wire messages.

use bytes::Bytes;

use crate::node::NodeId;

/// Fixed per-message framing overhead charged by the accounting, in bytes
/// (an approximation of transport headers: src/dst/round/kind plus
/// TCP/IP framing).
pub const HEADER_BYTES: usize = 64;

/// The semantic type of a message, used for per-kind byte accounting so
/// the evaluation can report *where* each protocol's bandwidth goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MessageKind {
    /// Split learning message 1: `L1` activations, platform → server.
    Activations,
    /// Split learning message 2: output-layer logits, server → platform.
    Logits,
    /// Split learning message 3: loss gradients w.r.t. logits,
    /// platform → server.
    LogitGrads,
    /// Split learning message 4: gradients at the cut, server → platform.
    CutGrads,
    /// U-shaped split: middle-section output features, server → platform
    /// (takes the place of logits when the classifier head also stays on
    /// the platform).
    Features,
    /// U-shaped split: gradients w.r.t. the middle-section output,
    /// platform → server.
    FeatureGrads,
    /// Full model parameters, server → platform (FedAvg / sync-SGD
    /// download).
    ModelDown,
    /// Full model parameters, platform → server (FedAvg upload).
    ModelUp,
    /// Full gradient vector, platform → server (sync-SGD push).
    GradPush,
    /// `L1` parameters exchanged between platforms via the server
    /// (periodic-averaging / cyclic-sharing extensions).
    L1Sync,
    /// Raw patient data, platform → server — only the privacy-violating
    /// centralised baseline ever sends this.
    RawData,
    /// Control traffic (round begin/end, shutdown).
    Control,
}

impl MessageKind {
    /// Stable short name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            MessageKind::Activations => "activations",
            MessageKind::Logits => "logits",
            MessageKind::LogitGrads => "logit_grads",
            MessageKind::CutGrads => "cut_grads",
            MessageKind::Features => "features",
            MessageKind::FeatureGrads => "feature_grads",
            MessageKind::ModelDown => "model_down",
            MessageKind::ModelUp => "model_up",
            MessageKind::GradPush => "grad_push",
            MessageKind::L1Sync => "l1_sync",
            MessageKind::RawData => "raw_data",
            MessageKind::Control => "control",
        }
    }

    /// All kinds, for report iteration.
    pub fn all() -> &'static [MessageKind] {
        &[
            MessageKind::Activations,
            MessageKind::Logits,
            MessageKind::LogitGrads,
            MessageKind::CutGrads,
            MessageKind::Features,
            MessageKind::FeatureGrads,
            MessageKind::ModelDown,
            MessageKind::ModelUp,
            MessageKind::GradPush,
            MessageKind::L1Sync,
            MessageKind::RawData,
            MessageKind::Control,
        ]
    }
}

impl std::fmt::Display for MessageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One message on the wire: routing metadata plus an opaque serialised
/// payload. Payloads are produced by `Tensor::to_bytes` (or are empty for
/// control messages), so the byte accounting below is exact.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Training round this message belongs to.
    pub round: u64,
    /// Message kind for accounting and dispatch.
    pub kind: MessageKind,
    /// Serialised payload.
    pub payload: Bytes,
}

impl Envelope {
    /// Creates an envelope.
    pub fn new(src: NodeId, dst: NodeId, round: u64, kind: MessageKind, payload: Bytes) -> Self {
        Envelope {
            src,
            dst,
            round,
            kind,
            payload,
        }
    }

    /// A payload-less control message.
    pub fn control(src: NodeId, dst: NodeId, round: u64) -> Self {
        Envelope {
            src,
            dst,
            round,
            kind: MessageKind::Control,
            payload: Bytes::new(),
        }
    }

    /// Bytes this message occupies on the wire (payload + framing).
    pub fn wire_size(&self) -> usize {
        self.payload.len() + HEADER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_header() {
        let env = Envelope::new(
            NodeId::Platform(0),
            NodeId::Server,
            1,
            MessageKind::Activations,
            Bytes::from(vec![0u8; 100]),
        );
        assert_eq!(env.wire_size(), 164);
        assert_eq!(
            Envelope::control(NodeId::Server, NodeId::Platform(0), 0).wire_size(),
            HEADER_BYTES
        );
    }

    #[test]
    fn kind_names_unique() {
        let mut names: Vec<&str> = MessageKind::all().iter().map(|k| k.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(MessageKind::Activations.to_string(), "activations");
        assert_eq!(MessageKind::CutGrads.to_string(), "cut_grads");
    }
}
