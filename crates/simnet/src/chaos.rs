//! Deterministic chaos injection: a seeded [`FaultPlan`] of per-link
//! message faults (drop / duplicate / reorder / corruption / extra
//! delay), link flaps, and scheduled node crash/recover events, applied
//! by [`ChaosTransport`] on top of any inner transport.
//!
//! Every probabilistic decision is drawn from a [`ChaosRng`] seeded by
//! the plan's single `u64` seed, in send order — so a single-threaded
//! driver replays a faulty run bit-identically from the seed alone.
//! Corruption is *detectable*: the transport flips payload bytes but
//! leaves the envelope's stamped checksum alone, so
//! [`Envelope::verify_checksum`] fails at the receiver and the message
//! can be discarded and retried instead of silently trained on.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::message::Envelope;
use crate::node::NodeId;
use crate::stats::NetStats;
use crate::transport::{NetError, Transport};

/// A tiny deterministic RNG (SplitMix64). All chaos decisions flow
/// through one instance per transport, so a run is replayable from the
/// seed as long as sends happen in a deterministic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw: `true` with probability `p`. Always consumes one
    /// draw (even for `p = 0`) so enabling a fault never shifts the
    /// stream consumed by the other fault kinds.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Per-link fault probabilities and penalties applied to each message
/// sent over the link. All probabilities are in `[0, 1]`; the default is
/// a perfectly healthy link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Probability a message is lost in flight (bytes are still charged:
    /// the sender transmitted them).
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub dup_p: f64,
    /// Probability a message is held back and delivered after the next
    /// send (adjacent-pair reordering).
    pub reorder_p: f64,
    /// Probability one payload byte is flipped in flight. The stamped
    /// checksum is left alone, so the receiver detects the corruption.
    pub corrupt_p: f64,
    /// Extra sender-side delay per message in simulated seconds
    /// (a straggling uplink).
    pub extra_delay_s: f64,
}

/// A scheduled state change, applied when the driver calls
/// [`ChaosTransport::begin_round`] for the event's round. Events are
/// round-granular on purpose: a node either participates in a whole
/// round or in none of it, which keeps recovery semantics simple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosEvent {
    /// The node crashes at the start of this round: its sends fail fast
    /// with [`NetError::PeerDown`], and messages addressed to it vanish.
    Crash {
        /// Round the crash takes effect.
        round: u64,
        /// The crashing node.
        node: NodeId,
    },
    /// The node comes back at the start of this round.
    Recover {
        /// Round the recovery takes effect.
        round: u64,
        /// The recovering node.
        node: NodeId,
    },
    /// The directed link `src → dst` goes down at the start of this
    /// round: messages on it are dropped (and counted).
    LinkDown {
        /// Round the flap starts.
        round: u64,
        /// Sending side of the link.
        src: NodeId,
        /// Receiving side of the link.
        dst: NodeId,
    },
    /// The directed link comes back at the start of this round.
    LinkUp {
        /// Round the flap ends.
        round: u64,
        /// Sending side of the link.
        src: NodeId,
        /// Receiving side of the link.
        dst: NodeId,
    },
}

/// A complete, seeded description of the faults a run will experience.
/// Two transports built from equal plans inject bit-identical faults
/// when driven by the same deterministic message sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the [`ChaosRng`] that drives every probabilistic fault.
    pub seed: u64,
    /// Faults applied to every link without an explicit override.
    pub default_link: LinkFaults,
    /// Per-link overrides, keyed by `(src, dst)`.
    pub links: Vec<((NodeId, NodeId), LinkFaults)>,
    /// Scheduled crash/recover and link-flap events.
    pub events: Vec<ChaosEvent>,
}

impl FaultPlan {
    /// A healthy plan with the given seed: no faults, no events.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_link: LinkFaults::default(),
            links: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Sets the default per-message drop probability on every link.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.default_link.drop_p = p;
        self
    }

    /// Sets the default per-message duplication probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.default_link.dup_p = p;
        self
    }

    /// Sets the default per-message reordering probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.default_link.reorder_p = p;
        self
    }

    /// Sets the default per-message corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.default_link.corrupt_p = p;
        self
    }

    /// Overrides the faults of one directed link.
    pub fn link(mut self, src: NodeId, dst: NodeId, faults: LinkFaults) -> Self {
        self.links.retain(|((s, d), _)| !(*s == src && *d == dst));
        self.links.push(((src, dst), faults));
        self
    }

    /// Makes `node` a straggler: every message it sends pays an extra
    /// `delay_s` simulated seconds before leaving.
    pub fn straggler(self, node: NodeId, delay_s: f64) -> Self {
        let faults = LinkFaults {
            extra_delay_s: delay_s,
            ..self.link_faults(node, NodeId::Server)
        };
        self.link(node, NodeId::Server, faults)
    }

    /// Schedules a crash of `node` at the start of `round`.
    pub fn crash(mut self, node: NodeId, round: u64) -> Self {
        self.events.push(ChaosEvent::Crash { round, node });
        self
    }

    /// Schedules a recovery of `node` at the start of `round`.
    pub fn recover(mut self, node: NodeId, round: u64) -> Self {
        self.events.push(ChaosEvent::Recover { round, node });
        self
    }

    // ----- replica-level fault plans (serving fleets) -----------------------
    //
    // Fleet drivers are time-based rather than round-based: they map the
    // simulated clock onto fixed-width chaos ticks and call
    // [`ChaosTransport::begin_round`] once per tick, so the same
    // round-granular event machinery doubles as a replica-crash schedule.

    /// Schedules a crash of server replica `replica` at the start of
    /// fleet chaos tick `tick`.
    pub fn crash_replica(self, replica: usize, tick: u64) -> Self {
        self.crash(NodeId::Replica(replica), tick)
    }

    /// Schedules a recovery of server replica `replica` at the start of
    /// fleet chaos tick `tick`.
    pub fn recover_replica(self, replica: usize, tick: u64) -> Self {
        self.recover(NodeId::Replica(replica), tick)
    }

    // ----- relay-level fault plans (hierarchical topologies) -----------------

    /// Schedules a crash of regional relay `relay` at the start of
    /// `round`. A crashed relay forwards nothing; its platforms must
    /// re-home to a backup relay or fall back to the server directly.
    pub fn crash_relay(self, relay: usize, round: u64) -> Self {
        self.crash(NodeId::Relay(relay), round)
    }

    /// Schedules a recovery of regional relay `relay` at the start of
    /// `round`. Re-homed platforms return at the next round boundary.
    pub fn recover_relay(self, relay: usize, round: u64) -> Self {
        self.recover(NodeId::Relay(relay), round)
    }

    /// Partitions region `region` of `topo` from the rest of the world
    /// from the start of `down_round` until the start of `up_round`:
    /// every directed edge crossing the region boundary — its relay ↔
    /// server backbone, its platforms' direct server links, and its
    /// platforms' cross-region relay links — goes down. Intra-region
    /// edges (platform ↔ home relay) stay up, so the region keeps
    /// talking to itself but nobody can reach it.
    pub fn partition_region(
        mut self,
        topo: &crate::topology::HierTopology,
        region: usize,
        down_round: u64,
        up_round: u64,
    ) -> Self {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        let relay = NodeId::Relay(region);
        edges.push((relay, NodeId::Server));
        edges.push((NodeId::Server, relay));
        for pid in topo.region_platforms(region) {
            let p = NodeId::Platform(pid);
            edges.push((p, NodeId::Server));
            edges.push((NodeId::Server, p));
            for r in 0..topo.regions() {
                if r != region {
                    edges.push((p, NodeId::Relay(r)));
                    edges.push((NodeId::Relay(r), p));
                }
            }
        }
        for (src, dst) in edges {
            self = self.flap(src, dst, down_round, up_round);
        }
        self
    }

    /// Schedules a dispatch-link flap for one replica: the router →
    /// replica link is down from the start of `down_tick` until the start
    /// of `up_tick` (the replica itself stays up and can still answer
    /// in-flight work).
    pub fn flap_replica_link(self, replica: usize, down_tick: u64, up_tick: u64) -> Self {
        self.flap(NodeId::Server, NodeId::Replica(replica), down_tick, up_tick)
    }

    /// Schedules a link flap: `src → dst` down from the start of
    /// `down_round` until the start of `up_round`.
    pub fn flap(mut self, src: NodeId, dst: NodeId, down_round: u64, up_round: u64) -> Self {
        self.events.push(ChaosEvent::LinkDown {
            round: down_round,
            src,
            dst,
        });
        self.events.push(ChaosEvent::LinkUp {
            round: up_round,
            src,
            dst,
        });
        self
    }

    /// The faults configured for the directed link `src → dst`.
    pub fn link_faults(&self, src: NodeId, dst: NodeId) -> LinkFaults {
        self.links
            .iter()
            .find(|((s, d), _)| *s == src && *d == dst)
            .map(|(_, f)| *f)
            .unwrap_or(self.default_link)
    }
}

/// Injection counters, one per fault mechanism. All counts are of
/// *injections performed*, observable regardless of what the receiver
/// later does with the message.
#[derive(Debug, Default)]
pub struct ChaosStats {
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    corrupted: AtomicU64,
    link_dropped: AtomicU64,
    peer_down_sends: AtomicU64,
    to_down_dropped: AtomicU64,
}

/// A point-in-time copy of [`ChaosStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSnapshot {
    /// Messages lost to random drop.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held back for adjacent-pair reordering.
    pub reordered: u64,
    /// Messages with a flipped payload byte.
    pub corrupted: u64,
    /// Messages lost to a flapped (down) link.
    pub link_dropped: u64,
    /// Sends rejected with [`NetError::PeerDown`] because the sender is
    /// crashed.
    pub peer_down_sends: u64,
    /// Messages silently dropped because the *destination* is crashed.
    pub to_down_dropped: u64,
}

impl ChaosSnapshot {
    /// Total injections of any kind.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.reordered
            + self.corrupted
            + self.link_dropped
            + self.peer_down_sends
            + self.to_down_dropped
    }
}

struct ChaosState {
    rng: ChaosRng,
    down_nodes: HashSet<NodeId>,
    down_links: HashSet<(NodeId, NodeId)>,
    /// A message held back by a reorder fault, delivered after the next
    /// send (or by [`ChaosTransport::flush`]).
    stash: Option<Envelope>,
    next_seq: u64,
    applied_events: usize,
}

/// A transport decorator that injects the faults of a [`FaultPlan`].
///
/// Sequence numbers are stamped on every message at send time (a single
/// monotonic counter), duplicated deliveries share the original's
/// sequence number — which is how a receiver tells an injected
/// duplicate (same `seq`) from a sender retry (fresh `seq`).
pub struct ChaosTransport<T> {
    inner: T,
    plan: FaultPlan,
    state: Mutex<ChaosState>,
    stats: ChaosStats,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` with the given plan. No events are applied until
    /// [`begin_round`](Self::begin_round) is called.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        let rng = ChaosRng::new(plan.seed);
        ChaosTransport {
            inner,
            plan,
            state: Mutex::new(ChaosState {
                rng,
                down_nodes: HashSet::new(),
                down_links: HashSet::new(),
                stash: None,
                next_seq: 1,
                applied_events: 0,
            }),
            stats: ChaosStats::default(),
        }
    }

    /// Access to the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Applies every scheduled event with `event.round == round` (in
    /// plan order) and returns them, so the driver can react — e.g.
    /// restore a recovering platform from its last checkpoint. Also
    /// flushes any message still held by a reorder fault, so nothing
    /// leaks across round boundaries.
    pub fn begin_round(&self, round: u64) -> Vec<ChaosEvent> {
        self.flush();
        let mut state = self.state.lock();
        let mut applied = Vec::new();
        for event in &self.plan.events {
            match *event {
                ChaosEvent::Crash { round: r, node } if r == round => {
                    state.down_nodes.insert(node);
                    applied.push(*event);
                }
                ChaosEvent::Recover { round: r, node } if r == round => {
                    state.down_nodes.remove(&node);
                    applied.push(*event);
                }
                ChaosEvent::LinkDown { round: r, src, dst } if r == round => {
                    state.down_links.insert((src, dst));
                    applied.push(*event);
                }
                ChaosEvent::LinkUp { round: r, src, dst } if r == round => {
                    state.down_links.remove(&(src, dst));
                    applied.push(*event);
                }
                _ => {}
            }
        }
        state.applied_events += applied.len();
        applied
    }

    /// Whether `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.state.lock().down_nodes.contains(&node)
    }

    /// Whether the directed link `src → dst` is currently flapped down.
    pub fn link_down(&self, src: NodeId, dst: NodeId) -> bool {
        self.state.lock().down_links.contains(&(src, dst))
    }

    /// Delivers any message still held back by a reorder fault. Drivers
    /// call this at phase boundaries so a held message can never be
    /// reordered past the point where anyone still waits for it.
    pub fn flush(&self) {
        let held = self.state.lock().stash.take();
        if let Some(env) = held {
            let _ = self.inner.send(env);
        }
    }

    /// Injection counters.
    pub fn chaos_stats(&self) -> ChaosSnapshot {
        ChaosSnapshot {
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            duplicated: self.stats.duplicated.load(Ordering::Relaxed),
            reordered: self.stats.reordered.load(Ordering::Relaxed),
            corrupted: self.stats.corrupted.load(Ordering::Relaxed),
            link_dropped: self.stats.link_dropped.load(Ordering::Relaxed),
            peer_down_sends: self.stats.peer_down_sends.load(Ordering::Relaxed),
            to_down_dropped: self.stats.to_down_dropped.load(Ordering::Relaxed),
        }
    }

    /// A deterministic backoff jitter factor in `[0.5, 1.0)`, drawn from
    /// the plan's RNG so retrying senders desynchronise without
    /// sacrificing replayability.
    pub fn backoff_jitter(&self) -> f64 {
        0.5 + self.state.lock().rng.next_f64() / 2.0
    }

    fn bump(counter: &AtomicU64, name: &str) {
        counter.fetch_add(1, Ordering::Relaxed);
        if medsplit_telemetry::enabled() {
            medsplit_telemetry::counter_add(name, 1);
        }
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&self, mut env: Envelope) -> Result<(), NetError> {
        let mut state = self.state.lock();
        if state.down_nodes.contains(&env.src) {
            Self::bump(&self.stats.peer_down_sends, "chaos.peer_down_sends");
            return Err(NetError::PeerDown(env.src.to_string()));
        }
        env.seq = state.next_seq;
        state.next_seq += 1;

        let faults = self.plan.link_faults(env.src, env.dst);
        if faults.extra_delay_s > 0.0 {
            self.inner.stats().advance_clock(env.src, faults.extra_delay_s);
        }

        // Messages to a crashed destination or over a flapped link are
        // transmitted (the sender pays the bytes via the accounting in
        // the drop path below would be wrong — a down *link* transmits
        // nothing) — semantics per case:
        if state.down_nodes.contains(&env.dst) {
            // The sender cannot know the peer is gone: bytes are spent.
            Self::bump(&self.stats.to_down_dropped, "chaos.to_down_dropped");
            self.inner.stats().on_send(&env, None);
            return Ok(());
        }
        if state.down_links.contains(&(env.src, env.dst)) {
            Self::bump(&self.stats.link_dropped, "chaos.link_dropped");
            self.inner.stats().on_send(&env, None);
            return Ok(());
        }

        // Draw all four fault decisions up front, in a fixed order, so
        // the consumed RNG stream is independent of which faults fire.
        let dropped = state.rng.chance(faults.drop_p);
        let corrupted = state.rng.chance(faults.corrupt_p);
        let duplicated = state.rng.chance(faults.dup_p);
        let reordered = state.rng.chance(faults.reorder_p);
        let corrupt_at = state.rng.next_u64();

        if dropped {
            Self::bump(&self.stats.dropped, "chaos.dropped");
            // Lost in flight, but the sender still transmitted it: charge
            // the bytes so retry overhead shows up in the wire accounting.
            self.inner.stats().on_send(&env, None);
            let held = state.stash.take();
            drop(state);
            if let Some(prev) = held {
                self.inner.send(prev)?;
            }
            return Ok(());
        }

        if corrupted && !env.payload.is_empty() {
            Self::bump(&self.stats.corrupted, "chaos.corrupted");
            let mut bytes = env.payload.to_vec();
            let at = (corrupt_at as usize) % bytes.len();
            bytes[at] ^= 0x01 << (corrupt_at % 8);
            env.payload = Bytes::from(bytes);
            // env.checksum is deliberately left stale: the receiver's
            // verify_checksum() is how corruption is *detected*.
        }

        let held = state.stash.take();
        if reordered {
            Self::bump(&self.stats.reordered, "chaos.reordered");
            state.stash = Some(env.clone());
            drop(state);
            if duplicated {
                Self::bump(&self.stats.duplicated, "chaos.duplicated");
                self.inner.send(env)?;
            }
        } else {
            drop(state);
            self.inner.send(env.clone())?;
            if duplicated {
                Self::bump(&self.stats.duplicated, "chaos.duplicated");
                self.inner.send(env)?;
            }
        }
        if let Some(prev) = held {
            self.inner.send(prev)?;
        }
        Ok(())
    }

    fn try_recv(&self, node: NodeId) -> Option<Envelope> {
        self.inner.try_recv(node)
    }

    fn recv_timeout(&self, node: NodeId, timeout: Duration) -> Result<Envelope, NetError> {
        self.inner.recv_timeout(node, timeout)
    }

    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }

    fn shutdown(&self) {
        self.inner.shutdown()
    }
}

impl<T> std::fmt::Debug for ChaosTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosTransport")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use crate::topology::StarTopology;
    use crate::transport::MemoryTransport;

    fn env(src: NodeId, round: u64) -> Envelope {
        Envelope::new(
            src,
            NodeId::Server,
            round,
            MessageKind::Control,
            Bytes::from(vec![0xAB; 16]),
        )
    }

    fn chaos(plan: FaultPlan) -> ChaosTransport<MemoryTransport> {
        ChaosTransport::new(MemoryTransport::new(StarTopology::new(3)), plan)
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = ChaosRng::new(7);
        let mut b = ChaosRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaosRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
        let f = ChaosRng::new(3).next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn healthy_plan_delivers_everything_with_sequence_numbers() {
        let t = chaos(FaultPlan::new(1));
        for i in 0..5 {
            t.send(env(NodeId::Platform(0), i)).unwrap();
        }
        for i in 0..5 {
            let got = t.try_recv(NodeId::Server).unwrap();
            assert_eq!(got.round, i);
            assert_eq!(got.seq, i + 1, "monotonic stamped seq");
            assert!(got.verify_checksum());
        }
        assert_eq!(t.chaos_stats().total(), 0);
    }

    #[test]
    fn drop_all_loses_messages_but_charges_bytes() {
        let t = chaos(FaultPlan::new(2).with_drop(1.0));
        t.send(env(NodeId::Platform(0), 0)).unwrap();
        assert!(t.try_recv(NodeId::Server).is_none());
        assert_eq!(t.chaos_stats().dropped, 1);
        // The sender transmitted the bytes even though they were lost.
        assert_eq!(t.stats().snapshot().messages, 1);
    }

    #[test]
    fn corruption_is_detectable_not_silent() {
        let t = chaos(FaultPlan::new(3).with_corrupt(1.0));
        t.send(env(NodeId::Platform(0), 0)).unwrap();
        let got = t.try_recv(NodeId::Server).unwrap();
        assert!(!got.verify_checksum(), "stale checksum must expose the flip");
        assert_eq!(t.chaos_stats().corrupted, 1);
    }

    #[test]
    fn duplicates_share_the_original_sequence_number() {
        let t = chaos(FaultPlan::new(4).with_dup(1.0));
        t.send(env(NodeId::Platform(0), 0)).unwrap();
        let a = t.try_recv(NodeId::Server).unwrap();
        let b = t.try_recv(NodeId::Server).unwrap();
        assert_eq!(a.seq, b.seq);
        assert_eq!(t.chaos_stats().duplicated, 1);
    }

    #[test]
    fn reorder_swaps_adjacent_messages_and_flush_drains() {
        let t = chaos(FaultPlan::new(5).with_reorder(1.0));
        t.send(env(NodeId::Platform(0), 0)).unwrap();
        t.send(env(NodeId::Platform(1), 1)).unwrap();
        t.flush();
        // Every message is eventually delivered exactly once.
        let mut rounds: Vec<u64> = (0..2)
            .map(|_| t.try_recv(NodeId::Server).unwrap().round)
            .collect();
        assert!(t.try_recv(NodeId::Server).is_none());
        rounds.sort_unstable();
        assert_eq!(rounds, vec![0, 1]);
        assert!(t.chaos_stats().reordered >= 1);
    }

    #[test]
    fn crash_and_recover_events_apply_at_round_boundaries() {
        let plan = FaultPlan::new(6)
            .crash(NodeId::Platform(1), 2)
            .recover(NodeId::Platform(1), 4);
        let t = chaos(plan);
        assert!(t.begin_round(0).is_empty());
        assert!(!t.is_down(NodeId::Platform(1)));
        t.send(env(NodeId::Platform(1), 0)).unwrap();

        let applied = t.begin_round(2);
        assert_eq!(applied.len(), 1);
        assert!(t.is_down(NodeId::Platform(1)));
        // Sends from the crashed node fail fast instead of blocking the
        // peer for a full receive timeout.
        assert!(matches!(
            t.send(env(NodeId::Platform(1), 2)),
            Err(NetError::PeerDown(_))
        ));
        // Sends *to* the crashed node vanish (but are charged).
        let to_dead = Envelope::control(NodeId::Server, NodeId::Platform(1), 2);
        t.send(to_dead).unwrap();
        assert_eq!(t.chaos_stats().to_down_dropped, 1);

        t.begin_round(4);
        assert!(!t.is_down(NodeId::Platform(1)));
        t.send(env(NodeId::Platform(1), 4)).unwrap();
    }

    #[test]
    fn replica_fault_plan_crashes_and_recovers_replicas() {
        let plan = FaultPlan::new(11)
            .crash_replica(1, 3)
            .recover_replica(1, 5)
            .flap_replica_link(0, 2, 4);
        let t = ChaosTransport::new(
            MemoryTransport::new(crate::topology::FleetTopology::new(1, 2)),
            plan,
        );
        t.begin_round(2);
        assert!(t.link_down(NodeId::Server, NodeId::Replica(0)));
        assert!(!t.is_down(NodeId::Replica(1)));
        t.begin_round(3);
        assert!(t.is_down(NodeId::Replica(1)));
        // Sends from a crashed replica fail fast.
        assert!(matches!(
            t.send(Envelope::control(NodeId::Replica(1), NodeId::Platform(0), 3)),
            Err(NetError::PeerDown(_))
        ));
        t.begin_round(4);
        assert!(!t.link_down(NodeId::Server, NodeId::Replica(0)));
        t.begin_round(5);
        assert!(!t.is_down(NodeId::Replica(1)));
        // A recovered replica's handoff traffic flows over the LAN edge.
        t.send(Envelope::new(
            NodeId::Replica(0),
            NodeId::Replica(1),
            5,
            MessageKind::SessionHandoff,
            Bytes::from(vec![1u8; 8]),
        ))
        .unwrap();
        let got = t.try_recv(NodeId::Replica(1)).unwrap();
        assert_eq!(got.kind, MessageKind::SessionHandoff);
    }

    #[test]
    fn relay_fault_plan_crashes_and_recovers_relays() {
        let plan = FaultPlan::new(12).crash_relay(1, 2).recover_relay(1, 4);
        let t = ChaosTransport::new(
            MemoryTransport::new(crate::topology::HierTopology::new(2, 2)),
            plan,
        );
        t.begin_round(1);
        assert!(!t.is_down(NodeId::Relay(1)));
        t.begin_round(2);
        assert!(t.is_down(NodeId::Relay(1)));
        assert!(matches!(
            t.send(Envelope::control(NodeId::Relay(1), NodeId::Server, 2)),
            Err(NetError::PeerDown(_))
        ));
        t.begin_round(4);
        assert!(!t.is_down(NodeId::Relay(1)));
        t.send(Envelope::control(NodeId::Relay(1), NodeId::Server, 4))
            .unwrap();
    }

    #[test]
    fn region_partition_downs_exactly_the_boundary_edges() {
        let topo = crate::topology::HierTopology::new(2, 2);
        let plan = FaultPlan::new(13).partition_region(&topo, 1, 2, 3);
        let t = ChaosTransport::new(MemoryTransport::new(topo), plan);
        t.begin_round(2);
        // Region 1 = platforms 2,3 behind relay 1. Boundary edges down:
        assert!(t.link_down(NodeId::Relay(1), NodeId::Server));
        assert!(t.link_down(NodeId::Server, NodeId::Relay(1)));
        assert!(t.link_down(NodeId::Platform(2), NodeId::Server));
        assert!(t.link_down(NodeId::Server, NodeId::Platform(3)));
        assert!(t.link_down(NodeId::Platform(2), NodeId::Relay(0)));
        assert!(t.link_down(NodeId::Relay(0), NodeId::Platform(3)));
        // Intra-region and foreign edges stay up.
        assert!(!t.link_down(NodeId::Platform(2), NodeId::Relay(1)));
        assert!(!t.link_down(NodeId::Relay(1), NodeId::Platform(3)));
        assert!(!t.link_down(NodeId::Platform(0), NodeId::Server));
        assert!(!t.link_down(NodeId::Relay(0), NodeId::Server));
        // Heals at up_round.
        t.begin_round(3);
        assert!(!t.link_down(NodeId::Relay(1), NodeId::Server));
        assert!(!t.link_down(NodeId::Platform(2), NodeId::Server));
    }

    #[test]
    fn link_flap_drops_only_the_flapped_direction() {
        let plan = FaultPlan::new(7).flap(NodeId::Platform(0), NodeId::Server, 1, 2);
        let t = chaos(plan);
        t.begin_round(1);
        assert!(t.link_down(NodeId::Platform(0), NodeId::Server));
        t.send(env(NodeId::Platform(0), 1)).unwrap();
        t.send(env(NodeId::Platform(1), 1)).unwrap();
        let got = t.try_recv(NodeId::Server).unwrap();
        assert_eq!(got.src, NodeId::Platform(1));
        assert!(t.try_recv(NodeId::Server).is_none());
        assert_eq!(t.chaos_stats().link_dropped, 1);
        t.begin_round(2);
        assert!(!t.link_down(NodeId::Platform(0), NodeId::Server));
    }

    #[test]
    fn straggler_pays_extra_clock_delay() {
        let t = chaos(FaultPlan::new(8).straggler(NodeId::Platform(2), 2.5));
        t.send(env(NodeId::Platform(2), 0)).unwrap();
        assert!(t.stats().clock(NodeId::Platform(2)) >= 2.5);
        t.send(env(NodeId::Platform(0), 0)).unwrap();
        assert_eq!(t.stats().clock(NodeId::Platform(0)), 0.0);
    }

    #[test]
    fn equal_plans_replay_bit_identically() {
        let plan = FaultPlan::new(42)
            .with_drop(0.3)
            .with_dup(0.2)
            .with_reorder(0.2)
            .with_corrupt(0.2);
        type Run = (Vec<(u64, u64, bool)>, ChaosSnapshot);
        let runs: Vec<Run> = (0..2)
            .map(|_| {
                let t = chaos(plan.clone());
                for i in 0u64..50 {
                    let _ = t.send(env(NodeId::Platform(i as usize % 3), i));
                }
                t.flush();
                let mut delivered = Vec::new();
                while let Some(e) = t.try_recv(NodeId::Server) {
                    delivered.push((e.round, e.seq, e.verify_checksum()));
                }
                (delivered, t.chaos_stats())
            })
            .collect();
        assert_eq!(runs[0], runs[1], "same seed ⇒ same faults, same deliveries");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = chaos(FaultPlan::new(9));
        let b = chaos(FaultPlan::new(9));
        for _ in 0..20 {
            let x = a.backoff_jitter();
            assert_eq!(x, b.backoff_jitter());
            assert!((0.5..1.0).contains(&x));
        }
    }
}
