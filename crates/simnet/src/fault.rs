//! Fault injection: straggling and dead nodes.
//!
//! Used by the large-scale synchronous SGD baseline (Chen et al. 2016): the
//! whole point of its backup workers is to tolerate exactly the failures
//! injected here.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::message::Envelope;
use crate::node::NodeId;
use crate::stats::NetStats;
use crate::transport::{NetError, Transport};

/// Per-node failure behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Every message from this node is silently dropped (crashed node).
    Dead,
    /// Messages are delivered but the node's clock is penalised by this
    /// many extra seconds per message (straggler).
    Slow(f64),
}

/// A transport decorator that injects faults on messages *sent by*
/// configured nodes.
pub struct FaultyTransport<T> {
    inner: T,
    faults: Mutex<HashMap<NodeId, FaultKind>>,
    fail_fast: AtomicBool,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps a transport with no faults configured.
    pub fn new(inner: T) -> Self {
        FaultyTransport {
            inner,
            faults: Mutex::new(HashMap::new()),
            fail_fast: AtomicBool::new(false),
        }
    }

    /// Sets (or replaces) the fault for a node.
    pub fn set_fault(&self, node: NodeId, kind: FaultKind) {
        self.faults.lock().insert(node, kind);
    }

    /// Clears a node's fault.
    pub fn clear_fault(&self, node: NodeId) {
        self.faults.lock().remove(&node);
    }

    /// Whether `node` currently has a [`FaultKind::Dead`] fault.
    pub fn is_down(&self, node: NodeId) -> bool {
        matches!(self.faults.lock().get(&node), Some(FaultKind::Dead))
    }

    /// Opts into fail-fast semantics for dead nodes: when enabled, a send
    /// *from* a [`FaultKind::Dead`] node returns [`NetError::PeerDown`]
    /// instead of silently succeeding. Off by default — the sync-SGD
    /// baseline deliberately relies on silent drops (its backup workers
    /// are the recovery mechanism), whereas fault-aware runtimes want the
    /// signal so peers do not block a full receive timeout per message.
    pub fn fail_fast(&self, enabled: bool) {
        self.fail_fast.store(enabled, Ordering::Relaxed);
    }

    /// Access to the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&self, env: Envelope) -> Result<(), NetError> {
        let fault = self.faults.lock().get(&env.src).copied();
        match fault {
            Some(FaultKind::Dead) => {
                if self.fail_fast.load(Ordering::Relaxed) {
                    Err(NetError::PeerDown(env.src.to_string()))
                } else {
                    Ok(()) // silently dropped
                }
            }
            Some(FaultKind::Slow(penalty)) => {
                self.inner.stats().advance_clock(env.src, penalty);
                self.inner.send(env)
            }
            None => self.inner.send(env),
        }
    }

    fn try_recv(&self, node: NodeId) -> Option<Envelope> {
        self.inner.try_recv(node)
    }

    fn recv_timeout(&self, node: NodeId, timeout: Duration) -> Result<Envelope, NetError> {
        self.inner.recv_timeout(node, timeout)
    }

    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }

    fn shutdown(&self) {
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use crate::topology::StarTopology;
    use crate::transport::MemoryTransport;
    use bytes::Bytes;

    fn env(src: NodeId) -> Envelope {
        Envelope::new(src, NodeId::Server, 0, MessageKind::Control, Bytes::new())
    }

    #[test]
    fn dead_node_messages_vanish() {
        let t = FaultyTransport::new(MemoryTransport::new(StarTopology::new(2)));
        t.set_fault(NodeId::Platform(0), FaultKind::Dead);
        t.send(env(NodeId::Platform(0))).unwrap();
        t.send(env(NodeId::Platform(1))).unwrap();
        let got = t.try_recv(NodeId::Server).unwrap();
        assert_eq!(got.src, NodeId::Platform(1));
        assert!(t.try_recv(NodeId::Server).is_none());
    }

    #[test]
    fn slow_node_pays_clock_penalty() {
        let t = FaultyTransport::new(MemoryTransport::new(StarTopology::new(1)));
        t.set_fault(NodeId::Platform(0), FaultKind::Slow(2.5));
        t.send(env(NodeId::Platform(0))).unwrap();
        assert!(t.stats().clock(NodeId::Platform(0)) >= 2.5);
        let _ = t.try_recv(NodeId::Server).unwrap();
        // Server clock reflects the straggler's delay.
        assert!(t.stats().clock(NodeId::Server) >= 2.5);
    }

    #[test]
    fn clearing_fault_restores_delivery() {
        let t = FaultyTransport::new(MemoryTransport::new(StarTopology::new(1)));
        t.set_fault(NodeId::Platform(0), FaultKind::Dead);
        t.send(env(NodeId::Platform(0))).unwrap();
        assert!(t.try_recv(NodeId::Server).is_none());
        t.clear_fault(NodeId::Platform(0));
        t.send(env(NodeId::Platform(0))).unwrap();
        assert!(t.try_recv(NodeId::Server).is_some());
    }

    #[test]
    fn fail_fast_surfaces_peer_down_instead_of_silent_drop() {
        let t = FaultyTransport::new(MemoryTransport::new(StarTopology::new(1)));
        t.set_fault(NodeId::Platform(0), FaultKind::Dead);
        assert!(t.is_down(NodeId::Platform(0)));
        assert!(!t.is_down(NodeId::Server));

        t.fail_fast(true);
        let err = t.send(env(NodeId::Platform(0))).unwrap_err();
        assert!(matches!(err, NetError::PeerDown(_)));

        // Back to the default: silent drop, Ok.
        t.fail_fast(false);
        t.send(env(NodeId::Platform(0))).unwrap();
        assert!(t.try_recv(NodeId::Server).is_none());
    }

    #[test]
    fn dead_sends_are_not_counted() {
        // A crashed node produces no traffic: accounting must not charge it.
        let t = FaultyTransport::new(MemoryTransport::new(StarTopology::new(1)));
        t.set_fault(NodeId::Platform(0), FaultKind::Dead);
        t.send(env(NodeId::Platform(0))).unwrap();
        assert_eq!(t.stats().snapshot().messages, 0);
        assert_eq!(t.inner().queued(NodeId::Server), 0);
    }
}
