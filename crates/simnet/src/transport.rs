//! Message transports.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::message::Envelope;
use crate::node::NodeId;
use crate::stats::NetStats;
use crate::topology::{StarTopology, Topology};

/// Errors from transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination node is not part of the topology.
    UnknownNode(String),
    /// A blocking receive gave up (peer shut down or timed out).
    Disconnected(String),
    /// The sending node is known to be crashed, so the send can fail
    /// fast instead of letting the peer block a full receive timeout on
    /// a message that will never arrive.
    PeerDown(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node: {n}"),
            NetError::Disconnected(msg) => write!(f, "disconnected: {msg}"),
            NetError::PeerDown(n) => write!(f, "peer down: {n}"),
        }
    }
}

impl std::error::Error for NetError {}

/// The blocking-receive timeout shared by every threaded runtime
/// (split training and serving), read once from the
/// `MEDSPLIT_RECV_TIMEOUT_S` environment variable (seconds, integer or
/// fractional) with a 60 s default. One shared, overridable constant
/// replaces the hard-codes that used to be duplicated per runtime.
///
/// # Panics
///
/// A set-but-unparsable value is a configuration error, not a request
/// for the default: this panics naming the bad value rather than
/// silently training with a timeout the operator did not ask for.
pub fn recv_timeout_default() -> Duration {
    use std::sync::OnceLock;
    static TIMEOUT: OnceLock<Duration> = OnceLock::new();
    *TIMEOUT.get_or_init(|| match std::env::var("MEDSPLIT_RECV_TIMEOUT_S") {
        Err(std::env::VarError::NotPresent) => Duration::from_secs(60),
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("MEDSPLIT_RECV_TIMEOUT_S={raw:?} is not valid unicode")
        }
        Ok(raw) => match parse_recv_timeout(&raw) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        },
    })
}

/// Parses a `MEDSPLIT_RECV_TIMEOUT_S` value. Split out of
/// [`recv_timeout_default`] so the rejection paths are testable without
/// tripping the process-wide `OnceLock`.
fn parse_recv_timeout(raw: &str) -> Result<Duration, String> {
    let secs: f64 = raw
        .trim()
        .parse()
        .map_err(|_| format!("MEDSPLIT_RECV_TIMEOUT_S={raw:?} is not a number of seconds"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!(
            "MEDSPLIT_RECV_TIMEOUT_S={raw:?} must be a positive finite number of seconds"
        ));
    }
    Ok(Duration::from_secs_f64(secs))
}

/// A message transport between the nodes of a topology.
///
/// All sends are accounted in the shared [`NetStats`]; payload bytes are
/// counted exactly as serialised.
pub trait Transport: Send + Sync {
    /// Sends a message. Never blocks.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] if the destination is not in the
    /// topology, or [`NetError::Disconnected`] after
    /// [`shutdown`](Transport::shutdown).
    fn send(&self, env: Envelope) -> Result<(), NetError>;

    /// Non-blocking receive of the next message queued for `node`.
    fn try_recv(&self, node: NodeId) -> Option<Envelope>;

    /// Blocking receive with a timeout.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] on timeout or shutdown with an
    /// empty queue.
    fn recv_timeout(&self, node: NodeId, timeout: Duration) -> Result<Envelope, NetError>;

    /// The shared statistics.
    fn stats(&self) -> &NetStats;

    /// Wakes all blocked receivers and makes further blocking receives on
    /// empty queues fail fast.
    fn shutdown(&self);
}

struct Inboxes {
    queues: HashMap<NodeId, VecDeque<(Envelope, f64)>>,
    shut_down: bool,
}

/// The in-memory transport: per-node FIFO inboxes guarded by a single
/// lock, with a condition variable for the threaded runtime. Used both by
/// the deterministic single-threaded trainers and (via `Arc`) by the
/// thread-per-node runtime.
///
/// Generic over the [`Topology`] it routes over; the default keeps the
/// paper's star so existing call sites read unchanged.
pub struct MemoryTransport<Topo: Topology = StarTopology> {
    topology: Topo,
    inboxes: Mutex<Inboxes>,
    available: Condvar,
    stats: NetStats,
}

impl<Topo: Topology> MemoryTransport<Topo> {
    /// Creates a transport for the given topology.
    pub fn new(topology: Topo) -> Self {
        let mut queues = HashMap::new();
        for node in topology.nodes() {
            queues.insert(node, VecDeque::new());
        }
        MemoryTransport {
            topology,
            inboxes: Mutex::new(Inboxes {
                queues,
                shut_down: false,
            }),
            available: Condvar::new(),
            stats: NetStats::new(),
        }
    }

    /// Convenience: a shareable transport.
    pub fn shared(topology: Topo) -> Arc<Self> {
        Arc::new(Self::new(topology))
    }

    /// The topology this transport routes over.
    pub fn topology(&self) -> &Topo {
        &self.topology
    }

    /// Number of messages currently queued for `node`.
    pub fn queued(&self, node: NodeId) -> usize {
        self.inboxes.lock().queues.get(&node).map_or(0, VecDeque::len)
    }
}

impl<Topo: Topology> Transport for MemoryTransport<Topo> {
    fn send(&self, env: Envelope) -> Result<(), NetError> {
        let link = self.topology.link(env.src, env.dst);
        // Messages between non-adjacent nodes are a protocol bug; messages
        // to unknown nodes are an error either way.
        let mut inboxes = self.inboxes.lock();
        if inboxes.shut_down {
            return Err(NetError::Disconnected("transport shut down".into()));
        }
        let arrival = self.stats.on_send(&env, link);
        let dst = env.dst;
        match inboxes.queues.get_mut(&dst) {
            Some(q) => {
                q.push_back((env, arrival));
                drop(inboxes);
                self.available.notify_all();
                Ok(())
            }
            None => Err(NetError::UnknownNode(dst.to_string())),
        }
    }

    fn try_recv(&self, node: NodeId) -> Option<Envelope> {
        let mut inboxes = self.inboxes.lock();
        let (env, arrival) = inboxes.queues.get_mut(&node)?.pop_front()?;
        drop(inboxes);
        self.stats.on_receive(node, arrival);
        Some(env)
    }

    fn recv_timeout(&self, node: NodeId, timeout: Duration) -> Result<Envelope, NetError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inboxes = self.inboxes.lock();
        loop {
            if let Some(q) = inboxes.queues.get_mut(&node) {
                if let Some((env, arrival)) = q.pop_front() {
                    drop(inboxes);
                    self.stats.on_receive(node, arrival);
                    return Ok(env);
                }
            } else {
                return Err(NetError::UnknownNode(node.to_string()));
            }
            if inboxes.shut_down {
                return Err(NetError::Disconnected("transport shut down".into()));
            }
            if self.available.wait_until(&mut inboxes, deadline).timed_out() {
                return Err(NetError::Disconnected(format!("recv timeout on {node}")));
            }
        }
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn shutdown(&self) {
        self.inboxes.lock().shut_down = true;
        self.available.notify_all();
    }
}

impl<Topo: Topology + fmt::Debug> fmt::Debug for MemoryTransport<Topo> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryTransport")
            .field("topology", &self.topology)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use bytes::Bytes;

    fn env(src: NodeId, dst: NodeId) -> Envelope {
        Envelope::new(src, dst, 0, MessageKind::Control, Bytes::from_static(b"x"))
    }

    #[test]
    fn send_recv_fifo() {
        let t = MemoryTransport::new(StarTopology::new(2));
        t.send(env(NodeId::Platform(0), NodeId::Server)).unwrap();
        let mut e2 = env(NodeId::Platform(1), NodeId::Server);
        e2.round = 7;
        t.send(e2).unwrap();
        assert_eq!(t.queued(NodeId::Server), 2);
        let first = t.try_recv(NodeId::Server).unwrap();
        assert_eq!(first.src, NodeId::Platform(0));
        let second = t.try_recv(NodeId::Server).unwrap();
        assert_eq!(second.round, 7);
        assert!(t.try_recv(NodeId::Server).is_none());
    }

    #[test]
    fn unknown_destination_rejected() {
        let t = MemoryTransport::new(StarTopology::new(1));
        let err = t.send(env(NodeId::Server, NodeId::Platform(5))).unwrap_err();
        assert!(matches!(err, NetError::UnknownNode(_)));
    }

    #[test]
    fn stats_account_sends() {
        let t = MemoryTransport::new(StarTopology::new(1));
        t.send(env(NodeId::Platform(0), NodeId::Server)).unwrap();
        let snap = t.stats().snapshot();
        assert_eq!(snap.messages, 1);
        assert_eq!(snap.total_bytes, 65);
    }

    #[test]
    fn recv_timeout_times_out() {
        let t = MemoryTransport::new(StarTopology::new(1));
        let err = t
            .recv_timeout(NodeId::Server, Duration::from_millis(10))
            .unwrap_err();
        assert!(matches!(err, NetError::Disconnected(_)));
    }

    #[test]
    fn blocking_recv_across_threads() {
        let t = MemoryTransport::shared(StarTopology::new(1));
        let t2 = Arc::clone(&t);
        let handle =
            std::thread::spawn(move || t2.recv_timeout(NodeId::Server, Duration::from_secs(5)).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        t.send(env(NodeId::Platform(0), NodeId::Server)).unwrap();
        let got = handle.join().unwrap();
        assert_eq!(got.src, NodeId::Platform(0));
    }

    #[test]
    fn shutdown_wakes_receivers_and_blocks_sends() {
        let t = MemoryTransport::shared(StarTopology::new(1));
        let t2 = Arc::clone(&t);
        let handle = std::thread::spawn(move || t2.recv_timeout(NodeId::Server, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        t.shutdown();
        assert!(handle.join().unwrap().is_err());
        assert!(t.send(env(NodeId::Platform(0), NodeId::Server)).is_err());
    }

    #[test]
    fn recv_timeout_default_is_positive_and_cached() {
        let a = recv_timeout_default();
        assert!(a > Duration::ZERO);
        // OnceLock: the value is stable for the life of the process.
        assert_eq!(a, recv_timeout_default());
    }

    #[test]
    fn recv_timeout_parse_accepts_numbers_and_names_bad_values() {
        assert_eq!(parse_recv_timeout("30"), Ok(Duration::from_secs(30)));
        assert_eq!(parse_recv_timeout(" 0.5 "), Ok(Duration::from_secs_f64(0.5)));
        for bad in ["", "abc", "10s", "1e999", "nan", "-1", "0", "inf"] {
            let err = parse_recv_timeout(bad).unwrap_err();
            assert!(
                err.contains(&format!("{bad:?}")),
                "error must name the bad value: {err}"
            );
        }
    }

    #[test]
    fn receive_advances_clock() {
        let t = MemoryTransport::new(StarTopology::new(1));
        let mut e = env(NodeId::Platform(0), NodeId::Server);
        e.payload = Bytes::from(vec![0u8; 1_000_000]);
        t.send(e).unwrap();
        let _ = t.try_recv(NodeId::Server).unwrap();
        // WAN: 30 ms + 1 MB over 100 Mbit/s ≈ 0.08 s ⇒ ~0.11 s total.
        let clock = t.stats().clock(NodeId::Server);
        assert!(clock > 0.1 && clock < 0.12, "clock {clock}");
    }
}
