//! Link models: bandwidth and latency.

/// The characteristics of a directed network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation latency in seconds.
    pub latency_s: f64,
}

impl LinkSpec {
    /// A wide-area link typical of geo-distributed hospitals:
    /// 100 Mbit/s with 30 ms latency.
    pub fn wan() -> Self {
        LinkSpec {
            bandwidth_bps: 100e6,
            latency_s: 0.030,
        }
    }

    /// A local-area link: 10 Gbit/s, 0.2 ms.
    pub fn lan() -> Self {
        LinkSpec {
            bandwidth_bps: 10e9,
            latency_s: 0.0002,
        }
    }

    /// A constrained uplink (e.g. a clinic behind consumer broadband):
    /// 20 Mbit/s, 40 ms.
    pub fn broadband() -> Self {
        LinkSpec {
            bandwidth_bps: 20e6,
            latency_s: 0.040,
        }
    }

    /// A metropolitan link between a hospital and its regional relay:
    /// 1 Gbit/s, 5 ms — much better than the WAN backbone, worse than a
    /// datacenter LAN.
    pub fn metro() -> Self {
        LinkSpec {
            bandwidth_bps: 1e9,
            latency_s: 0.005,
        }
    }

    /// Time in seconds to move `bytes` across the link: latency plus
    /// serialisation delay.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps
    }
}

impl Default for LinkSpec {
    /// Defaults to [`wan`](Self::wan), the paper's setting.
    fn default() -> Self {
        Self::wan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_formula() {
        let link = LinkSpec {
            bandwidth_bps: 8e6,
            latency_s: 0.01,
        };
        // 1 MB = 8 Mbit over 8 Mbit/s = 1 s, plus 10 ms latency.
        let t = link.transfer_time(1_000_000);
        assert!((t - 1.01).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let link = LinkSpec::wan();
        assert!((link.transfer_time(0) - 0.030).abs() < 1e-12);
    }

    #[test]
    fn presets_ordering() {
        // LAN beats WAN beats broadband for any payload.
        for &bytes in &[0usize, 1_000, 10_000_000] {
            assert!(LinkSpec::lan().transfer_time(bytes) < LinkSpec::wan().transfer_time(bytes));
            assert!(LinkSpec::wan().transfer_time(bytes) < LinkSpec::broadband().transfer_time(bytes));
            assert!(LinkSpec::lan().transfer_time(bytes) < LinkSpec::metro().transfer_time(bytes));
            assert!(LinkSpec::metro().transfer_time(bytes) < LinkSpec::wan().transfer_time(bytes));
        }
    }

    #[test]
    fn default_is_wan() {
        assert_eq!(LinkSpec::default(), LinkSpec::wan());
    }
}
