//! Network topologies.

use std::collections::HashMap;

use crate::link::LinkSpec;
use crate::node::NodeId;

/// A routable set of nodes and directed links.
///
/// [`MemoryTransport`](crate::MemoryTransport) is generic over this
/// trait, so the same mailbox/accounting machinery serves both the
/// paper's single-server star and the sharded serving fleet.
pub trait Topology: Send + Sync {
    /// All node ids, in a stable order.
    fn nodes(&self) -> Vec<NodeId>;

    /// The link used for a directed edge, if the edge exists.
    fn link(&self, src: NodeId, dst: NodeId) -> Option<LinkSpec>;
}

/// A star topology: every platform connects to the central server, as in
/// the paper's Fig. 1. Per-direction defaults can be overridden per
/// platform (e.g. one rural hospital on a slow uplink).
#[derive(Debug, Clone, PartialEq)]
pub struct StarTopology {
    platforms: usize,
    uplink: LinkSpec,
    downlink: LinkSpec,
    overrides: HashMap<(NodeId, NodeId), LinkSpec>,
}

impl StarTopology {
    /// A star with `platforms` spokes and symmetric WAN links.
    pub fn new(platforms: usize) -> Self {
        StarTopology {
            platforms,
            uplink: LinkSpec::wan(),
            downlink: LinkSpec::wan(),
            overrides: HashMap::new(),
        }
    }

    /// Overrides the default platform → server link.
    pub fn with_uplink(mut self, link: LinkSpec) -> Self {
        self.uplink = link;
        self
    }

    /// Overrides the default server → platform link.
    pub fn with_downlink(mut self, link: LinkSpec) -> Self {
        self.downlink = link;
        self
    }

    /// Overrides one directed edge.
    pub fn with_override(mut self, src: NodeId, dst: NodeId, link: LinkSpec) -> Self {
        self.overrides.insert((src, dst), link);
        self
    }

    /// Number of platforms.
    pub fn platforms(&self) -> usize {
        self.platforms
    }

    /// All node ids: the server followed by each platform.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v = vec![NodeId::Server];
        v.extend((0..self.platforms).map(NodeId::Platform));
        v
    }

    /// The link used for a directed edge, if the edge exists in the star.
    ///
    /// Platform↔platform edges do not exist (traffic is relayed through
    /// the server, as the protocols do).
    pub fn link(&self, src: NodeId, dst: NodeId) -> Option<LinkSpec> {
        if let Some(l) = self.overrides.get(&(src, dst)) {
            return Some(*l);
        }
        match (src, dst) {
            (NodeId::Platform(i), NodeId::Server) if i < self.platforms => Some(self.uplink),
            (NodeId::Server, NodeId::Platform(i)) if i < self.platforms => Some(self.downlink),
            _ => None,
        }
    }
}

impl Topology for StarTopology {
    fn nodes(&self) -> Vec<NodeId> {
        StarTopology::nodes(self)
    }

    fn link(&self, src: NodeId, dst: NodeId) -> Option<LinkSpec> {
        StarTopology::link(self, src, dst)
    }
}

/// The sharded serving fleet's topology: platforms reach a router (the
/// [`NodeId::Server`] slot) over WAN links, the router fans out to `N`
/// server replicas over a datacenter LAN, replicas answer platforms
/// directly over the WAN downlink, and replicas exchange session-handoff
/// traffic with each other over the LAN.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTopology {
    platforms: usize,
    replicas: usize,
    uplink: LinkSpec,
    downlink: LinkSpec,
    lan: LinkSpec,
}

impl FleetTopology {
    /// A fleet with WAN platform links and LAN replica links.
    pub fn new(platforms: usize, replicas: usize) -> Self {
        FleetTopology {
            platforms,
            replicas,
            uplink: LinkSpec::wan(),
            downlink: LinkSpec::wan(),
            lan: LinkSpec::lan(),
        }
    }

    /// Overrides the platform → router link.
    pub fn with_uplink(mut self, link: LinkSpec) -> Self {
        self.uplink = link;
        self
    }

    /// Overrides the replica → platform link.
    pub fn with_downlink(mut self, link: LinkSpec) -> Self {
        self.downlink = link;
        self
    }

    /// Overrides the intra-datacenter link (router ↔ replica and
    /// replica ↔ replica).
    pub fn with_lan(mut self, link: LinkSpec) -> Self {
        self.lan = link;
        self
    }

    /// Number of platforms.
    pub fn platforms(&self) -> usize {
        self.platforms
    }

    /// Number of server replicas.
    pub fn replicas(&self) -> usize {
        self.replicas
    }
}

impl Topology for FleetTopology {
    fn nodes(&self) -> Vec<NodeId> {
        let mut v = vec![NodeId::Server];
        v.extend((0..self.replicas).map(NodeId::Replica));
        v.extend((0..self.platforms).map(NodeId::Platform));
        v
    }

    fn link(&self, src: NodeId, dst: NodeId) -> Option<LinkSpec> {
        match (src, dst) {
            // Request path: platform → router → replica.
            (NodeId::Platform(i), NodeId::Server) if i < self.platforms => Some(self.uplink),
            (NodeId::Server, NodeId::Replica(r)) if r < self.replicas => Some(self.lan),
            // Response path: replica → platform, skipping the router.
            (NodeId::Replica(r), NodeId::Platform(i)) if r < self.replicas && i < self.platforms => {
                Some(self.downlink)
            }
            // Rebalancing paths: replica ↔ replica and replica → router.
            (NodeId::Replica(a), NodeId::Replica(b)) if a < self.replicas && b < self.replicas && a != b => {
                Some(self.lan)
            }
            (NodeId::Replica(r), NodeId::Server) if r < self.replicas => Some(self.lan),
            // The router also answers platforms directly (rejections).
            (NodeId::Server, NodeId::Platform(i)) if i < self.platforms => Some(self.downlink),
            _ => None,
        }
    }
}

/// A hierarchical topology: platforms are grouped into regions, each
/// region is served by one relay, and relays connect to the central
/// server over a WAN backbone. Platforms normally talk only to their
/// home relay over a fast metro link; every platform also keeps slower
/// escape hatches — a cross-region link to every foreign relay and a
/// direct link to the server — so a trainer can fail over when its home
/// relay crashes or its region partitions.
///
/// Region `g` owns platforms `g·P .. (g+1)·P` where `P = per_region`;
/// relay `g` serves region `g`.
#[derive(Debug, Clone, PartialEq)]
pub struct HierTopology {
    regions: usize,
    per_region: usize,
    regional: LinkSpec,
    cross: LinkSpec,
    backbone: LinkSpec,
    direct: LinkSpec,
}

impl HierTopology {
    /// A hierarchy of `regions × per_region` platforms with metro
    /// regional links, a WAN relay backbone, and broadband fallbacks
    /// (cross-region and direct-to-server).
    pub fn new(regions: usize, per_region: usize) -> Self {
        HierTopology {
            regions,
            per_region,
            regional: LinkSpec::metro(),
            cross: LinkSpec::broadband(),
            backbone: LinkSpec::wan(),
            direct: LinkSpec::broadband(),
        }
    }

    /// Overrides the platform ↔ home-relay link.
    pub fn with_regional(mut self, link: LinkSpec) -> Self {
        self.regional = link;
        self
    }

    /// Overrides the platform ↔ foreign-relay failover link.
    pub fn with_cross(mut self, link: LinkSpec) -> Self {
        self.cross = link;
        self
    }

    /// Overrides the relay ↔ server backbone link.
    pub fn with_backbone(mut self, link: LinkSpec) -> Self {
        self.backbone = link;
        self
    }

    /// Overrides the platform ↔ server direct-fallback link.
    pub fn with_direct(mut self, link: LinkSpec) -> Self {
        self.direct = link;
        self
    }

    /// Number of regions (= number of relays).
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Platforms per region.
    pub fn per_region(&self) -> usize {
        self.per_region
    }

    /// Total number of platforms.
    pub fn platforms(&self) -> usize {
        self.regions * self.per_region
    }

    /// The region (= home relay index) of platform `pid`.
    pub fn home_relay(&self, pid: usize) -> usize {
        debug_assert!(pid < self.platforms());
        pid / self.per_region
    }

    /// The platform ids of region `g`, in ascending order.
    pub fn region_platforms(&self, g: usize) -> std::ops::Range<usize> {
        g * self.per_region..(g + 1) * self.per_region
    }
}

impl Topology for HierTopology {
    fn nodes(&self) -> Vec<NodeId> {
        let mut v = vec![NodeId::Server];
        v.extend((0..self.regions).map(NodeId::Relay));
        v.extend((0..self.platforms()).map(NodeId::Platform));
        v
    }

    fn link(&self, src: NodeId, dst: NodeId) -> Option<LinkSpec> {
        let n = self.platforms();
        match (src, dst) {
            // Platform ↔ relay: metro at home, broadband cross-region.
            (NodeId::Platform(i), NodeId::Relay(r)) | (NodeId::Relay(r), NodeId::Platform(i))
                if i < n && r < self.regions =>
            {
                Some(if self.home_relay(i) == r {
                    self.regional
                } else {
                    self.cross
                })
            }
            // Relay ↔ server backbone.
            (NodeId::Relay(r), NodeId::Server) | (NodeId::Server, NodeId::Relay(r)) if r < self.regions => {
                Some(self.backbone)
            }
            // Direct platform ↔ server fallback.
            (NodeId::Platform(i), NodeId::Server) | (NodeId::Server, NodeId::Platform(i)) if i < n => {
                Some(self.direct)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_edges() {
        let t = StarTopology::new(3);
        assert_eq!(t.platforms(), 3);
        assert_eq!(t.nodes().len(), 4);
        assert!(t.link(NodeId::Platform(0), NodeId::Server).is_some());
        assert!(t.link(NodeId::Server, NodeId::Platform(2)).is_some());
        // No platform-to-platform edges, no out-of-range platforms.
        assert!(t.link(NodeId::Platform(0), NodeId::Platform(1)).is_none());
        assert!(t.link(NodeId::Platform(3), NodeId::Server).is_none());
        assert!(t.link(NodeId::Server, NodeId::Server).is_none());
    }

    #[test]
    fn asymmetric_defaults() {
        let t = StarTopology::new(2)
            .with_uplink(LinkSpec::broadband())
            .with_downlink(LinkSpec::lan());
        assert_eq!(
            t.link(NodeId::Platform(0), NodeId::Server).unwrap(),
            LinkSpec::broadband()
        );
        assert_eq!(
            t.link(NodeId::Server, NodeId::Platform(0)).unwrap(),
            LinkSpec::lan()
        );
    }

    #[test]
    fn fleet_edges() {
        let t = FleetTopology::new(2, 3);
        assert_eq!(t.platforms(), 2);
        assert_eq!(t.replicas(), 3);
        // Server + replicas + platforms, in that order.
        let nodes = Topology::nodes(&t);
        assert_eq!(nodes.len(), 6);
        assert_eq!(nodes[0], NodeId::Server);
        assert_eq!(nodes[1], NodeId::Replica(0));
        assert_eq!(nodes[5], NodeId::Platform(1));
        // Request path.
        assert_eq!(t.link(NodeId::Platform(0), NodeId::Server), Some(LinkSpec::wan()));
        assert_eq!(t.link(NodeId::Server, NodeId::Replica(2)), Some(LinkSpec::lan()));
        // Response path skips the router.
        assert_eq!(
            t.link(NodeId::Replica(1), NodeId::Platform(0)),
            Some(LinkSpec::wan())
        );
        // Handoff path.
        assert_eq!(
            t.link(NodeId::Replica(0), NodeId::Replica(1)),
            Some(LinkSpec::lan())
        );
        assert!(t.link(NodeId::Replica(0), NodeId::Replica(0)).is_none());
        // Out-of-range nodes have no edges.
        assert!(t.link(NodeId::Platform(2), NodeId::Server).is_none());
        assert!(t.link(NodeId::Server, NodeId::Replica(3)).is_none());
        // Platforms never talk to replicas directly on the way in.
        assert!(t.link(NodeId::Platform(0), NodeId::Replica(0)).is_none());
    }

    #[test]
    fn fleet_link_overrides() {
        let fast = LinkSpec {
            bandwidth_bps: 1e10,
            latency_s: 1e-5,
        };
        let t = FleetTopology::new(1, 2)
            .with_lan(fast)
            .with_uplink(LinkSpec::broadband());
        assert_eq!(t.link(NodeId::Server, NodeId::Replica(0)), Some(fast));
        assert_eq!(
            t.link(NodeId::Platform(0), NodeId::Server),
            Some(LinkSpec::broadband())
        );
    }

    #[test]
    fn hier_edges() {
        let t = HierTopology::new(2, 3);
        assert_eq!(t.regions(), 2);
        assert_eq!(t.per_region(), 3);
        assert_eq!(t.platforms(), 6);
        assert_eq!(t.home_relay(0), 0);
        assert_eq!(t.home_relay(2), 0);
        assert_eq!(t.home_relay(3), 1);
        assert_eq!(t.region_platforms(1).collect::<Vec<_>>(), vec![3, 4, 5]);
        // Server, then relays, then platforms.
        let nodes = Topology::nodes(&t);
        assert_eq!(nodes.len(), 9);
        assert_eq!(nodes[0], NodeId::Server);
        assert_eq!(nodes[1], NodeId::Relay(0));
        assert_eq!(nodes[3], NodeId::Platform(0));
        // Home links are metro, cross-region links broadband.
        assert_eq!(
            t.link(NodeId::Platform(0), NodeId::Relay(0)),
            Some(LinkSpec::metro())
        );
        assert_eq!(
            t.link(NodeId::Relay(0), NodeId::Platform(0)),
            Some(LinkSpec::metro())
        );
        assert_eq!(
            t.link(NodeId::Platform(0), NodeId::Relay(1)),
            Some(LinkSpec::broadband())
        );
        // Backbone and direct fallback.
        assert_eq!(t.link(NodeId::Relay(1), NodeId::Server), Some(LinkSpec::wan()));
        assert_eq!(t.link(NodeId::Server, NodeId::Relay(0)), Some(LinkSpec::wan()));
        assert_eq!(
            t.link(NodeId::Platform(5), NodeId::Server),
            Some(LinkSpec::broadband())
        );
        // No platform↔platform or relay↔relay edges; ranges enforced.
        assert!(t.link(NodeId::Platform(0), NodeId::Platform(1)).is_none());
        assert!(t.link(NodeId::Relay(0), NodeId::Relay(1)).is_none());
        assert!(t.link(NodeId::Platform(6), NodeId::Server).is_none());
        assert!(t.link(NodeId::Platform(0), NodeId::Relay(2)).is_none());
    }

    #[test]
    fn per_edge_override() {
        let slow = LinkSpec {
            bandwidth_bps: 1e6,
            latency_s: 0.2,
        };
        let t = StarTopology::new(2).with_override(NodeId::Platform(1), NodeId::Server, slow);
        assert_eq!(t.link(NodeId::Platform(1), NodeId::Server).unwrap(), slow);
        assert_eq!(
            t.link(NodeId::Platform(0), NodeId::Server).unwrap(),
            LinkSpec::wan()
        );
    }
}
