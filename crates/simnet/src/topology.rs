//! Network topologies.

use std::collections::HashMap;

use crate::link::LinkSpec;
use crate::node::NodeId;

/// A star topology: every platform connects to the central server, as in
/// the paper's Fig. 1. Per-direction defaults can be overridden per
/// platform (e.g. one rural hospital on a slow uplink).
#[derive(Debug, Clone, PartialEq)]
pub struct StarTopology {
    platforms: usize,
    uplink: LinkSpec,
    downlink: LinkSpec,
    overrides: HashMap<(NodeId, NodeId), LinkSpec>,
}

impl StarTopology {
    /// A star with `platforms` spokes and symmetric WAN links.
    pub fn new(platforms: usize) -> Self {
        StarTopology {
            platforms,
            uplink: LinkSpec::wan(),
            downlink: LinkSpec::wan(),
            overrides: HashMap::new(),
        }
    }

    /// Overrides the default platform → server link.
    pub fn with_uplink(mut self, link: LinkSpec) -> Self {
        self.uplink = link;
        self
    }

    /// Overrides the default server → platform link.
    pub fn with_downlink(mut self, link: LinkSpec) -> Self {
        self.downlink = link;
        self
    }

    /// Overrides one directed edge.
    pub fn with_override(mut self, src: NodeId, dst: NodeId, link: LinkSpec) -> Self {
        self.overrides.insert((src, dst), link);
        self
    }

    /// Number of platforms.
    pub fn platforms(&self) -> usize {
        self.platforms
    }

    /// All node ids: the server followed by each platform.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v = vec![NodeId::Server];
        v.extend((0..self.platforms).map(NodeId::Platform));
        v
    }

    /// The link used for a directed edge, if the edge exists in the star.
    ///
    /// Platform↔platform edges do not exist (traffic is relayed through
    /// the server, as the protocols do).
    pub fn link(&self, src: NodeId, dst: NodeId) -> Option<LinkSpec> {
        if let Some(l) = self.overrides.get(&(src, dst)) {
            return Some(*l);
        }
        match (src, dst) {
            (NodeId::Platform(i), NodeId::Server) if i < self.platforms => Some(self.uplink),
            (NodeId::Server, NodeId::Platform(i)) if i < self.platforms => Some(self.downlink),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_edges() {
        let t = StarTopology::new(3);
        assert_eq!(t.platforms(), 3);
        assert_eq!(t.nodes().len(), 4);
        assert!(t.link(NodeId::Platform(0), NodeId::Server).is_some());
        assert!(t.link(NodeId::Server, NodeId::Platform(2)).is_some());
        // No platform-to-platform edges, no out-of-range platforms.
        assert!(t.link(NodeId::Platform(0), NodeId::Platform(1)).is_none());
        assert!(t.link(NodeId::Platform(3), NodeId::Server).is_none());
        assert!(t.link(NodeId::Server, NodeId::Server).is_none());
    }

    #[test]
    fn asymmetric_defaults() {
        let t = StarTopology::new(2)
            .with_uplink(LinkSpec::broadband())
            .with_downlink(LinkSpec::lan());
        assert_eq!(
            t.link(NodeId::Platform(0), NodeId::Server).unwrap(),
            LinkSpec::broadband()
        );
        assert_eq!(
            t.link(NodeId::Server, NodeId::Platform(0)).unwrap(),
            LinkSpec::lan()
        );
    }

    #[test]
    fn per_edge_override() {
        let slow = LinkSpec {
            bandwidth_bps: 1e6,
            latency_s: 0.2,
        };
        let t = StarTopology::new(2).with_override(NodeId::Platform(1), NodeId::Server, slow);
        assert_eq!(t.link(NodeId::Platform(1), NodeId::Server).unwrap(), slow);
        assert_eq!(
            t.link(NodeId::Platform(0), NodeId::Server).unwrap(),
            LinkSpec::wan()
        );
    }
}
