//! Thread-per-node execution: run each platform and the server on its own
//! OS thread against a shared transport, as a real deployment would.

use crossbeam::thread;

use crate::node::NodeId;
use crate::transport::Transport;

/// Runs one closure per node, each on its own thread, and returns their
/// results in input order.
///
/// The transport is shared by reference; closures communicate exclusively
/// through it, exactly like distributed processes. On return the transport
/// has been [`shutdown`](Transport::shutdown) so no receiver can block
/// forever.
///
/// # Panics
///
/// Panics if any node's thread panics (the panic is propagated with the
/// node's id in the message).
pub fn run_per_node<T, R, F>(transport: &T, nodes: Vec<(NodeId, F)>) -> Vec<(NodeId, R)>
where
    T: Transport,
    R: Send,
    F: FnOnce(NodeId, &T) -> R + Send,
{
    let results = thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .into_iter()
            .map(|(node, f)| {
                let builder = scope.builder().name(node.to_string());
                let handle = builder
                    .spawn(move |_| (node, f(node, transport)))
                    .expect("spawn node thread");
                (node, handle)
            })
            .collect();
        let mut results = Vec::with_capacity(handles.len());
        for (node, handle) in handles {
            match handle.join() {
                Ok(r) => results.push(r),
                Err(_) => {
                    transport.shutdown();
                    panic!("node thread {node} panicked");
                }
            }
        }
        results
    })
    .expect("thread scope");
    transport.shutdown();
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Envelope, MessageKind};
    use crate::topology::StarTopology;
    use crate::transport::MemoryTransport;
    use bytes::Bytes;
    use std::time::Duration;

    type NodeFn<R> = Box<dyn FnOnce(NodeId, &MemoryTransport) -> R + Send>;

    #[test]
    fn ping_pong_across_threads() {
        let transport = MemoryTransport::new(StarTopology::new(2));
        let nodes: Vec<(NodeId, NodeFn<u64>)> = vec![
            (
                NodeId::Server,
                Box::new(|_, t: &MemoryTransport| {
                    let mut sum = 0;
                    for _ in 0..2 {
                        let env = t.recv_timeout(NodeId::Server, Duration::from_secs(5)).unwrap();
                        sum += env.round;
                        t.send(Envelope::control(NodeId::Server, env.src, env.round))
                            .unwrap();
                    }
                    sum
                }),
            ),
            (
                NodeId::Platform(0),
                Box::new(|me, t: &MemoryTransport| {
                    t.send(Envelope::new(
                        me,
                        NodeId::Server,
                        10,
                        MessageKind::Control,
                        Bytes::new(),
                    ))
                    .unwrap();
                    t.recv_timeout(me, Duration::from_secs(5)).unwrap().round
                }),
            ),
            (
                NodeId::Platform(1),
                Box::new(|me, t: &MemoryTransport| {
                    t.send(Envelope::new(
                        me,
                        NodeId::Server,
                        32,
                        MessageKind::Control,
                        Bytes::new(),
                    ))
                    .unwrap();
                    t.recv_timeout(me, Duration::from_secs(5)).unwrap().round
                }),
            ),
        ];
        let results = run_per_node(&transport, nodes);
        let server_sum = results.iter().find(|(n, _)| *n == NodeId::Server).unwrap().1;
        assert_eq!(server_sum, 42);
        // Each platform got its own round echoed back.
        for (node, r) in &results {
            if let NodeId::Platform(i) = node {
                assert_eq!(*r, if *i == 0 { 10 } else { 32 });
            }
        }
        // Transport is shut down afterwards.
        assert!(transport
            .recv_timeout(NodeId::Server, Duration::from_millis(1))
            .is_err());
    }

    #[test]
    fn results_preserve_input_order() {
        let transport = MemoryTransport::new(StarTopology::new(3));
        let nodes: Vec<(NodeId, _)> = (0..3)
            .map(|i| {
                (NodeId::Platform(i), move |_n: NodeId, _t: &MemoryTransport| {
                    i * 10
                })
            })
            .collect();
        let results = run_per_node(&transport, nodes);
        assert_eq!(
            results,
            vec![
                (NodeId::Platform(0), 0),
                (NodeId::Platform(1), 10),
                (NodeId::Platform(2), 20)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn node_panic_propagates() {
        let transport = MemoryTransport::new(StarTopology::new(1));
        let nodes: Vec<(NodeId, NodeFn<()>)> = vec![(NodeId::Platform(0), Box::new(|_, _| panic!("boom")))];
        run_per_node(&transport, nodes);
    }
}
