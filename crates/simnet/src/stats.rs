//! Exact communication accounting and the simulated clock.
//!
//! Every byte the evaluation reports flows through [`NetStats::on_send`].
//! Simulated time uses a simple causal model: when `src` (whose local
//! clock reads `t_src`) sends `b` bytes over a link with latency `l` and
//! bandwidth `B`, the message *arrives* at `t_src + l + 8b/B`; the
//! receiver's clock advances to at least the arrival time when it consumes
//! the message. Local computation advances a node's clock via
//! [`NetStats::advance_clock`].

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::link::LinkSpec;
use crate::message::{Envelope, MessageKind};
use crate::node::NodeId;

#[derive(Debug, Default)]
struct StatsInner {
    total_bytes: u64,
    logical_bytes: u64,
    messages: u64,
    by_kind: HashMap<MessageKind, u64>,
    msgs_by_kind: HashMap<MessageKind, u64>,
    uplink_bytes: u64,
    downlink_bytes: u64,
    clocks: HashMap<NodeId, f64>,
}

/// Thread-safe communication statistics shared by all nodes of a run.
#[derive(Debug, Default)]
pub struct NetStats {
    inner: Mutex<StatsInner>,
}

/// A point-in-time copy of the accumulated statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Total wire bytes sent (payload + framing).
    pub total_bytes: u64,
    /// Total *logical* bytes sent: what the same messages would have
    /// occupied with uncompressed f32 tensor payloads. Equal to
    /// `total_bytes` under the f32 codec; `total_bytes / logical_bytes`
    /// is the run's overall wire compression ratio.
    pub logical_bytes: u64,
    /// Total messages sent.
    pub messages: u64,
    /// Wire bytes per message kind.
    pub by_kind: Vec<(MessageKind, u64)>,
    /// Message counts per message kind.
    pub msgs_by_kind: Vec<(MessageKind, u64)>,
    /// Bytes sent platform → server.
    pub uplink_bytes: u64,
    /// Bytes sent server → platform.
    pub downlink_bytes: u64,
    /// The largest node clock: the simulated makespan in seconds.
    pub makespan_s: f64,
}

impl StatsSnapshot {
    /// Bytes for one kind (0 if absent).
    pub fn bytes_of(&self, kind: MessageKind) -> u64 {
        self.by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, b)| *b)
            .unwrap_or(0)
    }

    /// Message count for one kind (0 if absent).
    pub fn messages_of(&self, kind: MessageKind) -> u64 {
        self.msgs_by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Total bytes in gigabytes (10⁹).
    pub fn total_gb(&self) -> f64 {
        self.total_bytes as f64 / 1e9
    }
}

impl NetStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a send and returns the message's arrival time at the
    /// destination under `link` (the sender's clock is *not* advanced:
    /// sends are modelled as asynchronous writes).
    pub fn on_send(&self, env: &Envelope, link: Option<LinkSpec>) -> f64 {
        let mut inner = self.inner.lock();
        let bytes = env.wire_size() as u64;
        let logical = env.logical_size() as u64;
        inner.total_bytes += bytes;
        inner.logical_bytes += logical;
        inner.messages += 1;
        *inner.by_kind.entry(env.kind).or_insert(0) += bytes;
        *inner.msgs_by_kind.entry(env.kind).or_insert(0) += 1;
        if medsplit_telemetry::enabled() {
            // Feed protocol-phase byte attribution into the telemetry
            // registry (names match the paper's four-message model plus
            // the auxiliary kinds). `net.bytes` counts logical
            // (f32-equivalent) bytes and `net.wire_bytes` what actually
            // crossed the wire, so a codec's compression ratio is read
            // directly off the pair instead of inferred across runs.
            medsplit_telemetry::counter_add(&format!("net.bytes.{}", env.kind.as_str()), logical);
            medsplit_telemetry::counter_add(&format!("net.wire_bytes.{}", env.kind.as_str()), bytes);
            medsplit_telemetry::counter_add(&format!("net.msgs.{}", env.kind.as_str()), 1);
        }
        match (env.src, env.dst) {
            (NodeId::Platform(_), NodeId::Server) => inner.uplink_bytes += bytes,
            (NodeId::Server, NodeId::Platform(_)) => inner.downlink_bytes += bytes,
            _ => {}
        }
        let t_src = inner.clocks.get(&env.src).copied().unwrap_or(0.0);
        match link {
            Some(l) => t_src + l.transfer_time(env.wire_size()),
            None => t_src,
        }
    }

    /// Advances the receiver's clock to at least `arrival` when a message
    /// is consumed.
    pub fn on_receive(&self, node: NodeId, arrival: f64) {
        let mut inner = self.inner.lock();
        let clock = inner.clocks.entry(node).or_insert(0.0);
        if arrival > *clock {
            *clock = arrival;
        }
    }

    /// Advances a node's clock by `seconds` of local computation.
    pub fn advance_clock(&self, node: NodeId, seconds: f64) {
        let mut inner = self.inner.lock();
        *inner.clocks.entry(node).or_insert(0.0) += seconds;
    }

    /// The node's current simulated clock.
    pub fn clock(&self, node: NodeId) -> f64 {
        self.inner.lock().clocks.get(&node).copied().unwrap_or(0.0)
    }

    /// Takes a consistent snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let inner = self.inner.lock();
        let mut by_kind: Vec<(MessageKind, u64)> = inner.by_kind.iter().map(|(k, v)| (*k, *v)).collect();
        by_kind.sort_by_key(|(k, _)| *k);
        let mut msgs_by_kind: Vec<(MessageKind, u64)> =
            inner.msgs_by_kind.iter().map(|(k, v)| (*k, *v)).collect();
        msgs_by_kind.sort_by_key(|(k, _)| *k);
        StatsSnapshot {
            total_bytes: inner.total_bytes,
            logical_bytes: inner.logical_bytes,
            messages: inner.messages,
            by_kind,
            msgs_by_kind,
            uplink_bytes: inner.uplink_bytes,
            downlink_bytes: inner.downlink_bytes,
            makespan_s: inner.clocks.values().copied().fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn env(src: NodeId, dst: NodeId, kind: MessageKind, payload_len: usize) -> Envelope {
        Envelope::new(src, dst, 0, kind, Bytes::from(vec![0u8; payload_len]))
    }

    #[test]
    fn accounting_is_exact() {
        let stats = NetStats::new();
        let e1 = env(NodeId::Platform(0), NodeId::Server, MessageKind::Activations, 100);
        let e2 = env(NodeId::Server, NodeId::Platform(0), MessageKind::Logits, 36);
        stats.on_send(&e1, None);
        stats.on_send(&e2, None);
        let snap = stats.snapshot();
        assert_eq!(snap.total_bytes, (100 + 64 + 36 + 64) as u64);
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.uplink_bytes, 164);
        assert_eq!(snap.downlink_bytes, 100);
        assert_eq!(snap.bytes_of(MessageKind::Activations), 164);
        assert_eq!(snap.bytes_of(MessageKind::Logits), 100);
        assert_eq!(snap.bytes_of(MessageKind::CutGrads), 0);
        assert_eq!(snap.messages_of(MessageKind::Activations), 1);
        assert_eq!(snap.messages_of(MessageKind::Logits), 1);
        assert_eq!(snap.messages_of(MessageKind::CutGrads), 0);
    }

    #[test]
    fn inference_kinds_accounted_exactly() {
        // Serving traffic must be charged HEADER_BYTES + payload, exactly,
        // and kept separate from training Activations/Logits.
        use crate::message::HEADER_BYTES;
        let stats = NetStats::new();
        let req = env(
            NodeId::Platform(2),
            NodeId::Server,
            MessageKind::InferRequest,
            777,
        );
        let resp = env(
            NodeId::Server,
            NodeId::Platform(2),
            MessageKind::InferResponse,
            40,
        );
        stats.on_send(&req, None);
        stats.on_send(&resp, None);
        let snap = stats.snapshot();
        assert_eq!(
            snap.bytes_of(MessageKind::InferRequest),
            (777 + HEADER_BYTES) as u64
        );
        assert_eq!(
            snap.bytes_of(MessageKind::InferResponse),
            (40 + HEADER_BYTES) as u64
        );
        assert_eq!(snap.bytes_of(MessageKind::Activations), 0);
        assert_eq!(snap.bytes_of(MessageKind::Logits), 0);
        assert_eq!(snap.uplink_bytes, (777 + HEADER_BYTES) as u64);
        assert_eq!(snap.downlink_bytes, (40 + HEADER_BYTES) as u64);
        assert_eq!(snap.total_bytes, (777 + 40 + 2 * HEADER_BYTES) as u64);
        assert_eq!(snap.messages, 2);
    }

    #[test]
    fn logical_bytes_track_f32_equivalent() {
        // Build a compressed f16 tensor payload by hand: [10] tensor,
        // 8-byte magic/rank + 8-byte dim + 10 × u16 data.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0x4D54_5348u32.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&10u64.to_le_bytes());
        payload.extend_from_slice(&[0u8; 20]);
        let stats = NetStats::new();
        let e = Envelope::new(
            NodeId::Platform(0),
            NodeId::Server,
            0,
            MessageKind::Activations,
            Bytes::from(payload),
        );
        stats.on_send(&e, None);
        // An opaque control payload counts 1:1.
        let c = env(NodeId::Server, NodeId::Platform(0), MessageKind::Control, 5);
        stats.on_send(&c, None);
        let snap = stats.snapshot();
        assert_eq!(snap.total_bytes, (16 + 20 + 64 + 5 + 64) as u64);
        assert_eq!(snap.logical_bytes, (16 + 40 + 64 + 5 + 64) as u64);
    }

    #[test]
    fn logical_equals_wire_for_uncompressed_runs() {
        let stats = NetStats::new();
        stats.on_send(
            &env(NodeId::Platform(0), NodeId::Server, MessageKind::Activations, 128),
            None,
        );
        let snap = stats.snapshot();
        assert_eq!(snap.logical_bytes, snap.total_bytes);
    }

    #[test]
    fn clock_model_is_causal() {
        let stats = NetStats::new();
        let link = LinkSpec {
            bandwidth_bps: 8e6,
            latency_s: 0.01,
        };
        // Platform computes for 0.5 s, then sends 1 MB.
        stats.advance_clock(NodeId::Platform(0), 0.5);
        let e = env(
            NodeId::Platform(0),
            NodeId::Server,
            MessageKind::Activations,
            1_000_000 - 64,
        );
        let arrival = stats.on_send(&e, Some(link));
        assert!((arrival - (0.5 + 0.01 + 1.0)).abs() < 1e-9, "arrival {arrival}");
        stats.on_receive(NodeId::Server, arrival);
        assert!((stats.clock(NodeId::Server) - arrival).abs() < 1e-12);
        // A later, earlier-arriving message must not move the clock back.
        stats.on_receive(NodeId::Server, 0.1);
        assert!((stats.clock(NodeId::Server) - arrival).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_max_clock() {
        let stats = NetStats::new();
        stats.advance_clock(NodeId::Platform(0), 1.0);
        stats.advance_clock(NodeId::Platform(1), 3.0);
        stats.advance_clock(NodeId::Server, 2.0);
        assert_eq!(stats.snapshot().makespan_s, 3.0);
    }

    #[test]
    fn gb_conversion() {
        let stats = NetStats::new();
        let e = env(
            NodeId::Platform(0),
            NodeId::Server,
            MessageKind::GradPush,
            1_000_000_000 - 64,
        );
        stats.on_send(&e, None);
        assert!((stats.snapshot().total_gb() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_are_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<NetStats>();
    }
}
