//! Node identities in the geo-distributed topology.

use std::fmt;

/// A participant in the geo-distributed system: the single central server
/// (or fleet router), one of the medical platforms (hospitals), or one of
/// the server replicas of a sharded serving fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// The central server holding layers `L2..Lk` (in fleet topologies:
    /// the router fronting the replicas).
    Server,
    /// Platform `k` (0-based) holding its local data and layer `L1`.
    Platform(usize),
    /// Server replica `k` (0-based) owning a shard of `L2..Lk` sessions
    /// in a serving fleet.
    Replica(usize),
    /// Regional relay `k` (0-based) batching smashed data between the
    /// platforms of its region and the central server in a hierarchical
    /// topology.
    Relay(usize),
}

impl NodeId {
    /// Whether this node is a platform.
    pub fn is_platform(&self) -> bool {
        matches!(self, NodeId::Platform(_))
    }

    /// Whether this node is a fleet replica.
    pub fn is_replica(&self) -> bool {
        matches!(self, NodeId::Replica(_))
    }

    /// The platform index, if any.
    pub fn platform_index(&self) -> Option<usize> {
        match self {
            NodeId::Platform(i) => Some(*i),
            _ => None,
        }
    }

    /// The replica index, if any.
    pub fn replica_index(&self) -> Option<usize> {
        match self {
            NodeId::Replica(i) => Some(*i),
            _ => None,
        }
    }

    /// Whether this node is a regional relay.
    pub fn is_relay(&self) -> bool {
        matches!(self, NodeId::Relay(_))
    }

    /// The relay index, if any.
    pub fn relay_index(&self) -> Option<usize> {
        match self {
            NodeId::Relay(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Server => write!(f, "server"),
            NodeId::Platform(i) => write!(f, "platform-{i}"),
            NodeId::Replica(i) => write!(f, "replica-{i}"),
            NodeId::Relay(i) => write!(f, "relay-{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_helpers() {
        assert_eq!(NodeId::Server.to_string(), "server");
        assert_eq!(NodeId::Platform(3).to_string(), "platform-3");
        assert_eq!(NodeId::Replica(2).to_string(), "replica-2");
        assert!(NodeId::Platform(0).is_platform());
        assert!(!NodeId::Server.is_platform());
        assert!(NodeId::Replica(0).is_replica());
        assert!(!NodeId::Platform(0).is_replica());
        assert_eq!(NodeId::Platform(2).platform_index(), Some(2));
        assert_eq!(NodeId::Server.platform_index(), None);
        assert_eq!(NodeId::Replica(1).platform_index(), None);
        assert_eq!(NodeId::Replica(4).replica_index(), Some(4));
        assert_eq!(NodeId::Server.replica_index(), None);
        assert_eq!(NodeId::Relay(1).to_string(), "relay-1");
        assert!(NodeId::Relay(0).is_relay());
        assert!(!NodeId::Platform(0).is_relay());
        assert_eq!(NodeId::Relay(2).relay_index(), Some(2));
        assert_eq!(NodeId::Platform(2).relay_index(), None);
        assert_eq!(NodeId::Relay(2).platform_index(), None);
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = vec![NodeId::Platform(1), NodeId::Server, NodeId::Platform(0)];
        v.sort();
        assert_eq!(v, vec![NodeId::Server, NodeId::Platform(0), NodeId::Platform(1)]);
    }
}
