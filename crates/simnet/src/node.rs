//! Node identities in the geo-distributed topology.

use std::fmt;

/// A participant in the geo-distributed system: the single central server
/// or one of the medical platforms (hospitals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// The central server holding layers `L2..Lk`.
    Server,
    /// Platform `k` (0-based) holding its local data and layer `L1`.
    Platform(usize),
}

impl NodeId {
    /// Whether this node is a platform.
    pub fn is_platform(&self) -> bool {
        matches!(self, NodeId::Platform(_))
    }

    /// The platform index, if any.
    pub fn platform_index(&self) -> Option<usize> {
        match self {
            NodeId::Platform(i) => Some(*i),
            NodeId::Server => None,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Server => write!(f, "server"),
            NodeId::Platform(i) => write!(f, "platform-{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_helpers() {
        assert_eq!(NodeId::Server.to_string(), "server");
        assert_eq!(NodeId::Platform(3).to_string(), "platform-3");
        assert!(NodeId::Platform(0).is_platform());
        assert!(!NodeId::Server.is_platform());
        assert_eq!(NodeId::Platform(2).platform_index(), Some(2));
        assert_eq!(NodeId::Server.platform_index(), None);
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = vec![NodeId::Platform(1), NodeId::Server, NodeId::Platform(0)];
        v.sort();
        assert_eq!(v, vec![NodeId::Server, NodeId::Platform(0), NodeId::Platform(1)]);
    }
}
