//! # medsplit-simnet
//!
//! The geo-distributed network substrate of the medsplit evaluation: a
//! star topology of medical platforms around one central server
//! ([`StarTopology`]), links with bandwidth/latency ([`LinkSpec`]),
//! message envelopes whose payloads are exactly the serialised tensors the
//! protocols exchange ([`Envelope`]), a FIFO in-memory transport with a
//! blocking mode for the thread-per-node runtime ([`MemoryTransport`],
//! [`threaded::run_per_node`]), fault injection ([`FaultyTransport`]) and
//! — the quantity the paper's Fig. 4 plots — exact wire-byte accounting
//! with a causal simulated clock ([`NetStats`]).
//!
//! ```
//! use bytes::Bytes;
//! use medsplit_simnet::{Envelope, MemoryTransport, MessageKind, NodeId, StarTopology, Transport};
//!
//! let net = MemoryTransport::new(StarTopology::new(2));
//! net.send(Envelope::new(
//!     NodeId::Platform(0),
//!     NodeId::Server,
//!     0,
//!     MessageKind::Activations,
//!     Bytes::from(vec![0u8; 128]),
//! ))?;
//! assert_eq!(net.stats().snapshot().total_bytes, 128 + 64);
//! # Ok::<(), medsplit_simnet::NetError>(())
//! ```

#![warn(missing_docs)]

mod chaos;
mod fault;
mod link;
mod message;
mod node;
mod stats;
pub mod threaded;
mod topology;
mod transport;

pub use chaos::{ChaosEvent, ChaosRng, ChaosSnapshot, ChaosStats, ChaosTransport, FaultPlan, LinkFaults};
pub use fault::{FaultKind, FaultyTransport};
pub use link::LinkSpec;
pub use message::{payload_checksum, Envelope, FrameError, MessageKind, HEADER_BYTES};
pub use node::NodeId;
pub use stats::{NetStats, StatsSnapshot};
pub use topology::{FleetTopology, HierTopology, StarTopology, Topology};
pub use transport::{recv_timeout_default, MemoryTransport, NetError, Transport};
