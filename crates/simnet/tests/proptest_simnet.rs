//! Property-based tests for the network simulator's accounting.

use bytes::Bytes;
use medsplit_simnet::{
    Envelope, LinkSpec, MemoryTransport, MessageKind, NodeId, StarTopology, Transport, HEADER_BYTES,
};
use proptest::prelude::*;

fn kind_of(sel: usize) -> MessageKind {
    let all = MessageKind::all();
    all[sel % all.len()]
}

proptest! {
    /// Total accounted bytes equal the sum of wire sizes of everything
    /// sent, regardless of interleaving.
    #[test]
    fn accounting_is_linear(payload_lens in prop::collection::vec(0usize..2000, 1..20), kind_sels in prop::collection::vec(0usize..9, 1..20)) {
        let t = MemoryTransport::new(StarTopology::new(4));
        let mut expected = 0u64;
        for (i, (&len, &k)) in payload_lens.iter().zip(kind_sels.iter().cycle()).enumerate() {
            let src = NodeId::Platform(i % 4);
            let env = Envelope::new(src, NodeId::Server, i as u64, kind_of(k), Bytes::from(vec![0u8; len]));
            expected += env.wire_size() as u64;
            t.send(env).unwrap();
        }
        let snap = t.stats().snapshot();
        prop_assert_eq!(snap.total_bytes, expected);
        prop_assert_eq!(snap.messages, payload_lens.len() as u64);
        // Per-kind accounting partitions the total.
        let by_kind: u64 = MessageKind::all().iter().map(|k| snap.bytes_of(*k)).sum();
        prop_assert_eq!(by_kind, snap.total_bytes);
        // Everything here was uplink.
        prop_assert_eq!(snap.uplink_bytes, snap.total_bytes);
    }

    /// FIFO delivery per destination, regardless of sources.
    #[test]
    fn fifo_per_destination(order in prop::collection::vec(0usize..3, 1..30)) {
        let t = MemoryTransport::new(StarTopology::new(3));
        for (i, &src) in order.iter().enumerate() {
            t.send(Envelope::new(NodeId::Platform(src), NodeId::Server, i as u64, MessageKind::Control, Bytes::new())).unwrap();
        }
        for (i, &src) in order.iter().enumerate() {
            let env = t.try_recv(NodeId::Server).unwrap();
            prop_assert_eq!(env.round, i as u64);
            prop_assert_eq!(env.src, NodeId::Platform(src));
        }
        prop_assert!(t.try_recv(NodeId::Server).is_none());
    }

    /// Transfer time is monotone in payload size and latency, and
    /// anti-monotone in bandwidth.
    #[test]
    fn transfer_time_monotone(bytes_a in 0usize..1_000_000, extra in 1usize..1_000_000, bw in 1.0e6f64..1.0e10, lat in 0.0f64..0.5) {
        let link = LinkSpec { bandwidth_bps: bw, latency_s: lat };
        prop_assert!(link.transfer_time(bytes_a + extra) > link.transfer_time(bytes_a));
        let faster = LinkSpec { bandwidth_bps: bw * 2.0, latency_s: lat };
        prop_assert!(faster.transfer_time(bytes_a + extra) < link.transfer_time(bytes_a + extra));
        let lagier = LinkSpec { bandwidth_bps: bw, latency_s: lat + 0.1 };
        prop_assert!(lagier.transfer_time(bytes_a) > link.transfer_time(bytes_a));
    }

    /// The simulated clock never goes backwards.
    #[test]
    fn clocks_are_monotone(events in prop::collection::vec((0usize..3, 0usize..5000), 1..40)) {
        let t = MemoryTransport::new(StarTopology::new(3));
        let mut last_server_clock = 0.0f64;
        for (i, &(src, len)) in events.iter().enumerate() {
            t.send(Envelope::new(NodeId::Platform(src), NodeId::Server, i as u64, MessageKind::Control, Bytes::from(vec![0u8; len]))).unwrap();
            let _ = t.try_recv(NodeId::Server).unwrap();
            let clock = t.stats().clock(NodeId::Server);
            prop_assert!(clock >= last_server_clock, "clock went backwards: {clock} < {last_server_clock}");
            last_server_clock = clock;
        }
    }

    /// Envelope wire size is exactly payload + fixed header.
    #[test]
    fn wire_size_formula(len in 0usize..100_000) {
        let env = Envelope::new(NodeId::Server, NodeId::Platform(0), 0, MessageKind::Logits, Bytes::from(vec![0u8; len]));
        prop_assert_eq!(env.wire_size(), len + HEADER_BYTES);
    }
}
