//! Linear reconstruction attack: how well can an honest-but-curious
//! server recover raw inputs from the activations it receives?
//!
//! The attacker fits a ridge regression from smashed activations back to
//! raw inputs on an auxiliary set (the strongest assumption in the
//! attacker's favour: it has input/activation pairs to train on), then is
//! scored on held-out activations. Reported `R²` close to 1 means the raw
//! data effectively leaks; `R²` near 0 means the activations reveal little
//! beyond the mean image.

use medsplit_tensor::linalg::ridge_regression;
use medsplit_tensor::{Result, Tensor, TensorError};

use crate::dcor::flatten_samples;

/// Outcome of a reconstruction attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconstructionReport {
    /// Mean squared error of the attacker's reconstruction on held-out
    /// samples.
    pub mse: f32,
    /// MSE of the trivial attacker that always predicts the training-set
    /// mean input.
    pub baseline_mse: f32,
    /// Variance explained: `1 - mse / baseline_mse`, clamped at 0.
    pub r_squared: f32,
}

/// Runs the ridge-regression reconstruction attack.
///
/// `train_*` are the attacker's auxiliary pairs; `test_*` the held-out
/// pairs to score on. Arbitrary-rank batches are flattened per sample.
///
/// # Errors
///
/// Returns shape errors on inconsistent inputs and numerical errors from
/// the solver.
pub fn reconstruction_attack(
    train_acts: &Tensor,
    train_inputs: &Tensor,
    test_acts: &Tensor,
    test_inputs: &Tensor,
    lambda: f32,
) -> Result<ReconstructionReport> {
    let a_train = flatten_samples(train_acts)?;
    let x_train = flatten_samples(train_inputs)?;
    let a_test = flatten_samples(test_acts)?;
    let x_test = flatten_samples(test_inputs)?;
    if a_train.dims()[0] != x_train.dims()[0] || a_test.dims()[0] != x_test.dims()[0] {
        return Err(TensorError::ShapeMismatch {
            lhs: a_train.shape().clone(),
            rhs: x_train.shape().clone(),
            op: "reconstruction_attack",
        });
    }
    // Attacker's map: activations -> inputs.
    let w = ridge_regression(&a_train, &x_train, lambda)?;
    let prediction = a_test.matmul(&w)?;
    let err = prediction.try_sub(&x_test)?;
    let mse = err.norm_sq() / err.numel().max(1) as f32;

    // Trivial baseline: predict the per-feature mean of the training inputs.
    let mean = x_train.mean_axis(0)?;
    let baseline_err = x_test.try_sub(&mean)?;
    let baseline_mse = baseline_err.norm_sq() / baseline_err.numel().max(1) as f32;

    let r_squared = if baseline_mse > 0.0 {
        (1.0 - mse / baseline_mse).max(0.0)
    } else {
        0.0
    };
    Ok(ReconstructionReport {
        mse,
        baseline_mse,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_tensor::init::rng_from_seed;

    /// When activations are an invertible linear map of the inputs, the
    /// attack recovers them almost perfectly.
    #[test]
    fn invertible_map_leaks_everything() {
        let mut rng = rng_from_seed(0);
        let x_train = Tensor::rand_uniform([80, 6], -1.0, 1.0, &mut rng);
        let x_test = Tensor::rand_uniform([20, 6], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([6, 6], -1.0, 1.0, &mut rng);
        let a_train = x_train.matmul(&w).unwrap();
        let a_test = x_test.matmul(&w).unwrap();
        let report = reconstruction_attack(&a_train, &x_train, &a_test, &x_test, 1e-4).unwrap();
        assert!(report.r_squared > 0.95, "{report:?}");
        assert!(report.mse < 0.05 * report.baseline_mse);
    }

    /// When activations are independent noise, the attack does no better
    /// than predicting the mean.
    #[test]
    fn independent_activations_leak_nothing() {
        let mut rng = rng_from_seed(1);
        let x_train = Tensor::rand_uniform([80, 6], -1.0, 1.0, &mut rng);
        let x_test = Tensor::rand_uniform([20, 6], -1.0, 1.0, &mut rng);
        let a_train = Tensor::rand_uniform([80, 8], -1.0, 1.0, &mut rng);
        let a_test = Tensor::rand_uniform([20, 8], -1.0, 1.0, &mut rng);
        let report = reconstruction_attack(&a_train, &x_train, &a_test, &x_test, 1e-2).unwrap();
        assert!(report.r_squared < 0.2, "{report:?}");
    }

    /// A lossy (rank-reducing) map leaks partially.
    #[test]
    fn lossy_map_leaks_partially() {
        let mut rng = rng_from_seed(2);
        let x_train = Tensor::rand_uniform([100, 8], -1.0, 1.0, &mut rng);
        let x_test = Tensor::rand_uniform([30, 8], -1.0, 1.0, &mut rng);
        // Project to 2 dimensions: most information destroyed.
        let w = Tensor::rand_uniform([8, 2], -1.0, 1.0, &mut rng);
        let a_train = x_train.matmul(&w).unwrap();
        let a_test = x_test.matmul(&w).unwrap();
        let report = reconstruction_attack(&a_train, &x_train, &a_test, &x_test, 1e-4).unwrap();
        assert!(report.r_squared > 0.05 && report.r_squared < 0.7, "{report:?}");
    }

    #[test]
    fn flattens_image_batches() {
        let mut rng = rng_from_seed(3);
        let x_train = Tensor::rand_uniform([30, 2, 3, 3], -1.0, 1.0, &mut rng);
        let a_train = Tensor::rand_uniform([30, 4, 3, 3], -1.0, 1.0, &mut rng);
        let x_test = Tensor::rand_uniform([10, 2, 3, 3], -1.0, 1.0, &mut rng);
        let a_test = Tensor::rand_uniform([10, 4, 3, 3], -1.0, 1.0, &mut rng);
        let report = reconstruction_attack(&a_train, &x_train, &a_test, &x_test, 1e-2).unwrap();
        assert!(report.mse.is_finite());
    }

    #[test]
    fn mismatched_rows_rejected() {
        let a = Tensor::ones([10, 2]);
        let x = Tensor::ones([9, 2]);
        assert!(reconstruction_attack(&a, &x, &a, &x, 1e-2).is_err());
    }
}
