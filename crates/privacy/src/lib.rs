//! # medsplit-privacy
//!
//! Quantifying the paper's privacy claim. The paper argues qualitatively
//! that sharing `L1` activations instead of raw data preserves patient
//! privacy; this crate makes the claim measurable:
//!
//! - [`distance_correlation`] — the statistical dependence between raw
//!   inputs and the transmitted ("smashed") activations,
//! - [`reconstruction_attack`] — an honest-but-curious server fitting a
//!   ridge regression from activations back to inputs,
//! - [`assess_l1_leakage`] / [`LeakageReport`] — both probes packaged
//!   into one assessment of a platform's `L1`,
//! - [`recover_labels_from_gradients`] — the label-leakage attack on the
//!   protocol's logit-gradient message (message 3): for softmax
//!   cross-entropy the negative entry per row *is* the label, so the
//!   standard protocol reveals every training diagnosis to the server;
//!   the U-shaped variant defeats this.
//!
//! Used by the split-point sweep (Fig. 5): deeper cuts cost more platform
//! compute but leak less.

#![warn(missing_docs)]

mod dcor;
mod label_leak;
mod reconstruction;
mod report;

pub use dcor::{distance_correlation, flatten_samples};
pub use label_leak::{label_recovery_rate, recover_labels_from_gradients};
pub use reconstruction::{reconstruction_attack, ReconstructionReport};
pub use report::{assess_l1_leakage, LeakageReport};
