//! Label leakage from the protocol's gradient messages.
//!
//! The paper's message 3 transmits the loss gradient w.r.t. the logits,
//! which for softmax cross-entropy is `(softmax(z) - onehot(y)) / n`:
//! **the single negative entry in each row is exactly the label**. An
//! honest-but-curious server can therefore read every training label —
//! the raw images stay private, but the diagnoses do not.
//!
//! This module implements that attack, so the evaluation can demonstrate
//! it against the standard protocol and show that the U-shaped variant
//! (where only *feature* gradients cross the wire) defeats it.

use medsplit_tensor::{Result, Tensor, TensorError};

/// The label-recovery attack on a logit-gradient batch: returns the
/// column index of the minimum (most negative) entry per row.
///
/// Against softmax cross-entropy gradients this recovers the true label
/// whenever the model's confidence in the true class is below ~1
/// (always, in practice).
///
/// # Errors
///
/// Returns a rank error for non-matrix input.
pub fn recover_labels_from_gradients(grads: &Tensor) -> Result<Vec<usize>> {
    if grads.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: grads.rank(),
            op: "recover_labels",
        });
    }
    let (n, k) = (grads.dims()[0], grads.dims()[1]);
    let data = grads.as_slice();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let row = &data[i * k..(i + 1) * k];
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v < row[best] {
                best = j;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// Fraction of labels the gradient attack recovers.
///
/// # Errors
///
/// Returns shape errors for inconsistent inputs.
pub fn label_recovery_rate(grads: &Tensor, true_labels: &[usize]) -> Result<f32> {
    let recovered = recover_labels_from_gradients(grads)?;
    if recovered.len() != true_labels.len() {
        return Err(TensorError::LengthMismatch {
            expected: recovered.len(),
            actual: true_labels.len(),
        });
    }
    if true_labels.is_empty() {
        return Ok(0.0);
    }
    let hits = recovered.iter().zip(true_labels).filter(|(a, b)| a == b).count();
    Ok(hits as f32 / true_labels.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_nn::softmax_cross_entropy;
    use medsplit_tensor::init::rng_from_seed;

    #[test]
    fn softmax_ce_gradients_leak_every_label() {
        let mut rng = rng_from_seed(0);
        let logits = Tensor::rand_uniform([32, 10], -3.0, 3.0, &mut rng);
        let labels: Vec<usize> = (0..32).map(|i| (i * 7) % 10).collect();
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let rate = label_recovery_rate(&out.grad, &labels).unwrap();
        assert_eq!(rate, 1.0, "the standard protocol's message 3 reveals all labels");
    }

    #[test]
    fn leak_survives_gradient_scaling() {
        // The aggregate-scheduling re-weighting does not hide the sign.
        let mut rng = rng_from_seed(1);
        let logits = Tensor::rand_uniform([16, 5], -2.0, 2.0, &mut rng);
        let labels: Vec<usize> = (0..16).map(|i| i % 5).collect();
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let scaled = out.grad.scale(0.25);
        assert_eq!(label_recovery_rate(&scaled, &labels).unwrap(), 1.0);
    }

    #[test]
    fn random_gradients_recover_at_chance() {
        let mut rng = rng_from_seed(2);
        let grads = Tensor::rand_uniform([200, 10], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..200).map(|i| i % 10).collect();
        let rate = label_recovery_rate(&grads, &labels).unwrap();
        assert!(rate < 0.25, "chance-level expected, got {rate}");
    }

    #[test]
    fn validation() {
        assert!(recover_labels_from_gradients(&Tensor::ones([4])).is_err());
        let g = Tensor::ones([2, 3]);
        assert!(label_recovery_rate(&g, &[0]).is_err());
        assert_eq!(label_recovery_rate(&Tensor::zeros([0, 3]), &[]).unwrap(), 0.0);
    }
}
