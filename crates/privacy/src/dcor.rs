//! Distance correlation (Székely et al.) between raw inputs and smashed
//! activations.
//!
//! Distance correlation is the standard statistic used in the split-
//! learning literature (e.g. Vepakomma et al., the paper's reference [1])
//! to quantify how much information about the raw input survives in the
//! transmitted activations: 0 means statistical independence, 1 means a
//! deterministic linear relationship.

use medsplit_tensor::{Result, Tensor, TensorError};

/// Pairwise Euclidean distance matrix of row-vectors.
fn distance_matrix(x: &Tensor) -> Result<Vec<f64>> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: x.rank(),
            op: "distance_matrix",
        });
    }
    let (n, d) = (x.dims()[0], x.dims()[1]);
    let data = x.as_slice();
    let mut out = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut acc = 0.0f64;
            for k in 0..d {
                let diff = (data[i * d + k] - data[j * d + k]) as f64;
                acc += diff * diff;
            }
            let dist = acc.sqrt();
            out[i * n + j] = dist;
            out[j * n + i] = dist;
        }
    }
    Ok(out)
}

/// Double-centers a distance matrix in place and returns it.
fn double_center(mut a: Vec<f64>, n: usize) -> Vec<f64> {
    let mut row_mean = vec![0.0f64; n];
    let mut grand = 0.0f64;
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n {
            s += a[i * n + j];
        }
        row_mean[i] = s / n as f64;
        grand += s;
    }
    grand /= (n * n) as f64;
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] += grand - row_mean[i] - row_mean[j];
        }
    }
    a
}

/// Distance correlation between the rows of `x` and the rows of `y`
/// (both `[n, *]`, flattened per sample beforehand by the caller if
/// needed). Returns a value in `[0, 1]`.
///
/// # Errors
///
/// Returns shape errors for non-matrix inputs, mismatched row counts, or
/// fewer than 2 samples.
pub fn distance_correlation(x: &Tensor, y: &Tensor) -> Result<f64> {
    if x.rank() != 2 || y.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: x.rank().max(y.rank()),
            op: "distance_correlation",
        });
    }
    let n = x.dims()[0];
    if y.dims()[0] != n {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape().clone(),
            rhs: y.shape().clone(),
            op: "distance_correlation",
        });
    }
    if n < 2 {
        return Err(TensorError::Numerical(
            "distance correlation needs at least 2 samples".into(),
        ));
    }
    let a = double_center(distance_matrix(x)?, n);
    let b = double_center(distance_matrix(y)?, n);
    let m = (n * n) as f64;
    let mut dcov2 = 0.0f64;
    let mut dvar_x = 0.0f64;
    let mut dvar_y = 0.0f64;
    for (av, bv) in a.iter().zip(&b) {
        dcov2 += av * bv;
        dvar_x += av * av;
        dvar_y += bv * bv;
    }
    dcov2 /= m;
    dvar_x /= m;
    dvar_y /= m;
    let denom = (dvar_x * dvar_y).sqrt();
    if denom <= f64::EPSILON {
        return Ok(0.0);
    }
    Ok((dcov2.max(0.0) / denom).sqrt().clamp(0.0, 1.0))
}

/// Flattens each sample of an arbitrary-rank batch to a row, producing the
/// `[n, d]` matrix [`distance_correlation`] expects.
///
/// # Errors
///
/// Returns a rank error for rank-0 input.
pub fn flatten_samples(batch: &Tensor) -> Result<Tensor> {
    if batch.rank() == 0 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: 0,
            op: "flatten_samples",
        });
    }
    let n = batch.dims()[0];
    let inner: usize = batch.dims()[1..].iter().product();
    batch.reshape([n, inner])
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_tensor::init::rng_from_seed;

    #[test]
    fn identical_data_has_dcor_one() {
        let mut rng = rng_from_seed(0);
        let x = Tensor::rand_uniform([30, 4], -1.0, 1.0, &mut rng);
        let d = distance_correlation(&x, &x).unwrap();
        assert!((d - 1.0).abs() < 1e-6, "dcor {d}");
    }

    #[test]
    fn linear_map_has_high_dcor() {
        let mut rng = rng_from_seed(1);
        let x = Tensor::rand_uniform([40, 4], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([4, 6], -1.0, 1.0, &mut rng);
        let y = x.matmul(&w).unwrap();
        let d = distance_correlation(&x, &y).unwrap();
        assert!(d > 0.8, "dcor {d}");
    }

    #[test]
    fn independent_data_has_low_dcor() {
        // The plug-in dcor estimator is positively biased for independent
        // data (≈ n^{-1/2} scale), so the empirical value is well above 0
        // at practical sample sizes and depends on the RNG stream. Use
        // enough samples to separate "independent" (~0.2–0.35 here) from
        // "linearly related" (>0.8 in linear_map_has_high_dcor) with
        // margin on both sides.
        let mut rng = rng_from_seed(2);
        let x = Tensor::rand_uniform([200, 4], -1.0, 1.0, &mut rng);
        let y = Tensor::rand_uniform([200, 4], -1.0, 1.0, &mut rng);
        let d = distance_correlation(&x, &y).unwrap();
        assert!(d < 0.4, "dcor {d}");
    }

    #[test]
    fn dcor_is_symmetric() {
        let mut rng = rng_from_seed(3);
        let x = Tensor::rand_uniform([20, 3], -1.0, 1.0, &mut rng);
        let y = Tensor::rand_uniform([20, 5], -1.0, 1.0, &mut rng);
        let a = distance_correlation(&x, &y).unwrap();
        let b = distance_correlation(&y, &x).unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn constant_data_yields_zero() {
        let x = Tensor::ones([10, 3]);
        let mut rng = rng_from_seed(4);
        let y = Tensor::rand_uniform([10, 3], -1.0, 1.0, &mut rng);
        assert_eq!(distance_correlation(&x, &y).unwrap(), 0.0);
    }

    #[test]
    fn validation() {
        let x = Tensor::ones([4, 2]);
        assert!(distance_correlation(&x, &Tensor::ones([5, 2])).is_err());
        assert!(distance_correlation(&Tensor::ones([1, 2]), &Tensor::ones([1, 2])).is_err());
        assert!(distance_correlation(&Tensor::ones([4]), &x).is_err());
    }

    #[test]
    fn flatten_samples_shapes() {
        let b = Tensor::zeros([5, 3, 2, 2]);
        assert_eq!(flatten_samples(&b).unwrap().dims(), &[5, 12]);
        assert!(flatten_samples(&Tensor::scalar(1.0)).is_err());
    }
}
