//! End-to-end leakage assessment of a platform-side model.

use std::fmt;

use medsplit_nn::{Layer, Mode, Sequential};
use medsplit_tensor::{Result, Tensor};

use crate::dcor::{distance_correlation, flatten_samples};
use crate::reconstruction::{reconstruction_attack, ReconstructionReport};

/// A combined privacy assessment of what a platform transmits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageReport {
    /// Distance correlation between raw inputs and transmitted
    /// activations (1 = fully dependent, 0 = independent).
    pub dcor: f64,
    /// Linear reconstruction attack outcome.
    pub reconstruction: ReconstructionReport,
}

impl LeakageReport {
    /// A coarse verdict for human consumption.
    pub fn verdict(&self) -> &'static str {
        if self.reconstruction.r_squared > 0.8 {
            "HIGH leakage: inputs are linearly recoverable from the transmitted activations"
        } else if self.reconstruction.r_squared > 0.4 || self.dcor > 0.8 {
            "MODERATE leakage: substantial input information survives in the activations"
        } else {
            "LOW leakage: the linear attacker recovers little beyond the mean input"
        }
    }
}

impl fmt::Display for LeakageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "distance correlation  : {:.4}", self.dcor)?;
        writeln!(f, "reconstruction MSE    : {:.6}", self.reconstruction.mse)?;
        writeln!(
            f,
            "baseline (mean) MSE   : {:.6}",
            self.reconstruction.baseline_mse
        )?;
        writeln!(f, "attacker R^2          : {:.4}", self.reconstruction.r_squared)?;
        write!(f, "verdict               : {}", self.verdict())
    }
}

/// Assesses the leakage of a platform-side model (`L1`) on the given
/// inputs: runs it in inference mode, splits the pairs into attacker
/// train/test halves, and applies both probes.
///
/// # Errors
///
/// Returns numerical/shape errors from the probes (e.g. fewer than 4
/// samples).
pub fn assess_l1_leakage(l1: &mut Sequential, inputs: &Tensor, lambda: f32) -> Result<LeakageReport> {
    let acts = l1.forward(inputs, Mode::Eval)?;
    let dcor = distance_correlation(&flatten_samples(inputs)?, &flatten_samples(&acts)?)?;
    let n = inputs.dims()[0];
    let half = n / 2;
    let train_idx: Vec<usize> = (0..half).collect();
    let test_idx: Vec<usize> = (half..n).collect();
    let reconstruction = reconstruction_attack(
        &acts.index_select0(&train_idx)?,
        &inputs.index_select0(&train_idx)?,
        &acts.index_select0(&test_idx)?,
        &inputs.index_select0(&test_idx)?,
        lambda,
    )?;
    Ok(LeakageReport { dcor, reconstruction })
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_nn::{Activation, Dense};
    use medsplit_tensor::init::rng_from_seed;

    #[test]
    fn identity_like_l1_reports_high_leakage() {
        // A wide linear layer is invertible in practice.
        let mut rng = rng_from_seed(0);
        let mut l1 = Sequential::new("l1");
        l1.push(Dense::new(6, 16, &mut rng));
        let inputs = Tensor::rand_uniform([80, 6], -1.0, 1.0, &mut rng);
        let report = assess_l1_leakage(&mut l1, &inputs, 1e-4).unwrap();
        assert!(report.reconstruction.r_squared > 0.8, "{report}");
        assert!(report.verdict().starts_with("HIGH"));
        assert!(report.dcor > 0.8);
    }

    #[test]
    fn narrow_nonlinear_l1_leaks_less() {
        let mut rng = rng_from_seed(1);
        // Bottleneck to 2 units + ReLU destroys most information.
        let mut narrow = Sequential::new("narrow");
        let mut rng2 = rng_from_seed(2);
        narrow.push(Dense::new(12, 2, &mut rng2));
        narrow.push(Activation::relu());
        let mut wide = Sequential::new("wide");
        wide.push(Dense::new(12, 32, &mut rng));
        let inputs = Tensor::rand_uniform([100, 12], -1.0, 1.0, &mut rng);
        let narrow_report = assess_l1_leakage(&mut narrow, &inputs, 1e-4).unwrap();
        let wide_report = assess_l1_leakage(&mut wide, &inputs, 1e-4).unwrap();
        assert!(
            narrow_report.reconstruction.r_squared < wide_report.reconstruction.r_squared,
            "narrow {narrow_report:?} vs wide {wide_report:?}"
        );
    }

    #[test]
    fn display_contains_all_fields() {
        let report = LeakageReport {
            dcor: 0.5,
            reconstruction: ReconstructionReport {
                mse: 0.1,
                baseline_mse: 0.2,
                r_squared: 0.5,
            },
        };
        let s = report.to_string();
        assert!(s.contains("distance correlation"));
        assert!(s.contains("R^2"));
        assert!(s.contains("MODERATE"));
    }

    #[test]
    fn verdict_thresholds() {
        let mk = |r2: f32, dcor: f64| LeakageReport {
            dcor,
            reconstruction: ReconstructionReport {
                mse: 0.0,
                baseline_mse: 1.0,
                r_squared: r2,
            },
        };
        assert!(mk(0.9, 0.1).verdict().starts_with("HIGH"));
        assert!(mk(0.5, 0.1).verdict().starts_with("MODERATE"));
        assert!(mk(0.1, 0.9).verdict().starts_with("MODERATE"));
        assert!(mk(0.1, 0.2).verdict().starts_with("LOW"));
    }
}
