//! Micro-benchmarks of the wire format: every byte the evaluation counts
//! passes through these paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use medsplit_tensor::{init, Tensor};

fn bench_serialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("serialize");
    for &numel in &[1_024usize, 65_536, 1_048_576] {
        let mut rng = init::rng_from_seed(0);
        let t = Tensor::rand_uniform([numel], -1.0, 1.0, &mut rng);
        group.throughput(Throughput::Bytes(4 * numel as u64));
        group.bench_function(format!("to_bytes_{numel}"), |bench| {
            bench.iter(|| black_box(black_box(&t).to_bytes()))
        });
        let bytes = t.to_bytes();
        group.bench_function(format!("from_bytes_{numel}"), |bench| {
            bench.iter(|| black_box(Tensor::from_bytes(black_box(bytes.clone())).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serialize);
criterion_main!(benches);
