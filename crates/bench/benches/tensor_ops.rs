//! Micro-benchmarks of the tensor kernels the training loop spends its
//! time in: matmul, conv2d forward/backward, pooling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use medsplit_tensor::ops::conv::{conv2d_backward, conv2d_forward};
use medsplit_tensor::ops::pool::maxpool2d_forward;
use medsplit_tensor::{init, Conv2dSpec, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = init::rng_from_seed(0);
        let a = Tensor::rand_uniform([n, n], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([n, n], -1.0, 1.0, &mut rng);
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(black_box(&b)).unwrap()))
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    let mut rng = init::rng_from_seed(1);
    // The lite-VGG first layer: the platform-side compute of the protocol.
    let input = Tensor::rand_uniform([8, 3, 16, 16], -1.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform([8, 3, 3, 3], -1.0, 1.0, &mut rng);
    let bias = Tensor::zeros([8]);
    let spec = Conv2dSpec::square(3, 1, 1);
    group.bench_function("forward_8x3x16x16", |bench| {
        bench.iter(|| black_box(conv2d_forward(black_box(&input), &weight, Some(&bias), spec).unwrap()))
    });
    let out = conv2d_forward(&input, &weight, Some(&bias), spec).unwrap();
    let grad = Tensor::rand_uniform(out.shape().clone(), -1.0, 1.0, &mut rng);
    group.bench_function("backward_8x3x16x16", |bench| {
        bench.iter(|| black_box(conv2d_backward(black_box(&input), &weight, &grad, spec).unwrap()))
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut rng = init::rng_from_seed(2);
    let input = Tensor::rand_uniform([8, 16, 16, 16], -1.0, 1.0, &mut rng);
    c.bench_function("maxpool2d_8x16x16x16", |bench| {
        bench.iter(|| black_box(maxpool2d_forward(black_box(&input), Conv2dSpec::square(2, 2, 0)).unwrap()))
    });
}

criterion_group!(benches, bench_matmul, bench_conv, bench_pool);
criterion_main!(benches);
