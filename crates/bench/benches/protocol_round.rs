//! End-to-end cost of one protocol round per method: one split-learning
//! four-message round vs one sync-SGD step vs one FedAvg round, on the
//! same MLP workload — the per-round cost behind every figure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use medsplit_baselines::{train_fedavg, train_sync_sgd, BaselineConfig, FedAvgOptions, SyncSgdOptions};
use medsplit_core::{ComputeModel, SplitConfig, SplitTrainer};
use medsplit_data::{partition, InMemoryDataset, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit_nn::{Architecture, LrSchedule, MlpConfig};
use medsplit_simnet::{MemoryTransport, StarTopology};

const PLATFORMS: usize = 4;

fn workload() -> (Architecture, Vec<InMemoryDataset>, InMemoryDataset) {
    let arch = Architecture::Mlp(MlpConfig {
        input_dim: 16,
        hidden: vec![64, 32],
        num_classes: 4,
    });
    let all = SyntheticTabular::new(4, 16, 0).generate(240).unwrap();
    let train = all.subset(&(0..200).collect::<Vec<_>>()).unwrap();
    let test = all.subset(&(200..240).collect::<Vec<_>>()).unwrap();
    let shards = partition(&train, PLATFORMS, &Partition::Iid, 1).unwrap();
    (arch, shards, test)
}

fn bench_split_round(c: &mut Criterion) {
    let (arch, shards, test) = workload();
    c.bench_function("split_round_4_platforms", |bench| {
        bench.iter(|| {
            let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
            let config = SplitConfig {
                rounds: 1,
                eval_every: 0,
                lr: LrSchedule::Constant(0.05),
                minibatch: MinibatchPolicy::Fixed(8),
                compute: ComputeModel::off(),
                ..SplitConfig::default()
            };
            let mut trainer =
                SplitTrainer::new(&arch, config, shards.clone(), test.clone(), &transport).unwrap();
            black_box(trainer.run().unwrap())
        })
    });
}

fn bench_sync_sgd_step(c: &mut Criterion) {
    let (arch, shards, test) = workload();
    c.bench_function("sync_sgd_step_4_platforms", |bench| {
        bench.iter(|| {
            let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
            let config = BaselineConfig {
                rounds: 1,
                eval_every: 0,
                minibatch: MinibatchPolicy::Fixed(8),
                ..BaselineConfig::default()
            };
            black_box(
                train_sync_sgd(
                    &arch,
                    &config,
                    SyncSgdOptions::default(),
                    shards.clone(),
                    &test,
                    &transport,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_fedavg_round(c: &mut Criterion) {
    let (arch, shards, test) = workload();
    c.bench_function("fedavg_round_4_platforms", |bench| {
        bench.iter(|| {
            let transport = MemoryTransport::new(StarTopology::new(PLATFORMS));
            let config = BaselineConfig {
                rounds: 1,
                eval_every: 0,
                minibatch: MinibatchPolicy::Fixed(8),
                ..BaselineConfig::default()
            };
            black_box(
                train_fedavg(
                    &arch,
                    &config,
                    FedAvgOptions { local_steps: 5 },
                    shards.clone(),
                    &test,
                    &transport,
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_split_round,
    bench_sync_sgd_step,
    bench_fedavg_round
);
criterion_main!(benches);
