//! The bridge between `medsplit-lab` manifests and this crate's
//! workloads: a [`medsplit_lab::BenchRunner`] that executes each matrix
//! point in-process.
//!
//! ## Bench axis values
//!
//! | `bench` | workload |
//! |---------|----------|
//! | `split_train` | a [`ResilientTrainer`] run shaped by the point's model / topology / fault / codec / threads / seed axes |
//! | `kernel_smoke` | [`crate::bins::kernel_bench`] `--smoke` (reports the cross-ISA kernel and plan digests) |
//! | `codec_frontier` | [`crate::bins::codec_bench`] `--smoke` (per-codec accuracy and wire/logical bytes, replay digest) |
//! | `trace_smoke` | [`crate::bins::trace_report`] `--smoke` |
//! | `resilience_smoke` | [`crate::bins::resilience_bench`] `--smoke` |
//! | `fleet_smoke` | [`crate::bins::fleet_bench`] `--smoke` |
//!
//! ## Determinism partitioning
//!
//! Everything this runner reports as a *metric* is bit-reproducible:
//! workload scalars (accuracies, wire bytes, simulated makespan,
//! digests) and the `net.*` telemetry counters, whose values are fixed
//! by the protocol regardless of thread interleaving. Everything racy —
//! wall-clock seconds, pool/serve counters subject to work-stealing,
//! gauges, histogram sums — goes into *timings*, which `lab` records in
//! the digest-excluded `timings.json`. This split is what lets CI assert
//! that two `lab run`s of the same manifest produce byte-identical
//! `metrics.json` files.

use std::path::Path;
use std::time::Instant;

use medsplit_core::{HierPolicy, HierResilientTrainer, ResilientTrainer, SplitConfig, WireCodec};
use medsplit_data::{partition, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit_lab::{BenchRunner, Manifest, MetricValue, PointOutcome, RunPoint};
use medsplit_nn::{Architecture, LrSchedule, MlpConfig};
use medsplit_simnet::{ChaosTransport, FaultPlan, HierTopology, MemoryTransport, NodeId, StarTopology};
use medsplit_telemetry::{MetricSnapshot, Trace};
use medsplit_tensor::{pool, simd};

/// Executes lab matrix points against the medsplit workloads.
#[derive(Debug, Default)]
pub struct MedsplitRunner;

/// Telemetry counters that are deterministic by protocol construction
/// (wire accounting) and therefore belong in the digested metrics.
fn counter_is_deterministic(name: &str) -> bool {
    name.starts_with("net.")
}

/// Splits a telemetry snapshot into deterministic metrics and racy
/// timings per the partitioning contract above.
fn partition_snapshot(
    snapshot: &[MetricSnapshot],
    metrics: &mut Vec<(String, MetricValue)>,
    timings: &mut Vec<(String, f64)>,
) {
    for m in snapshot {
        match m {
            MetricSnapshot::Counter { name, value } => {
                if counter_is_deterministic(name) {
                    metrics.push((name.clone(), MetricValue::Num(*value as f64)));
                } else {
                    timings.push((name.clone(), *value as f64));
                }
            }
            MetricSnapshot::Gauge { name, value } => timings.push((name.clone(), *value)),
            MetricSnapshot::Histogram { name, count, sum, .. } => {
                timings.push((format!("{name}.count"), *count as f64));
                timings.push((format!("{name}.sum"), *sum));
            }
        }
    }
}

fn parse_isa(name: &str) -> Result<simd::Isa, String> {
    match name {
        "auto" => Ok(simd::detect()),
        "scalar" => Ok(simd::Isa::Scalar),
        "avx2" => Ok(simd::Isa::Avx2),
        "neon" => Ok(simd::Isa::Neon),
        other => Err(format!("unknown isa axis value {other:?}")),
    }
}

fn parse_model(name: &str) -> Result<Architecture, String> {
    match name {
        "mlp" => Ok(Architecture::Mlp(MlpConfig {
            input_dim: 8,
            hidden: vec![16],
            num_classes: 3,
        })),
        "mlp_wide" => Ok(Architecture::Mlp(MlpConfig {
            input_dim: 8,
            hidden: vec![32, 16],
            num_classes: 3,
        })),
        other => Err(format!("unknown model axis value {other:?}")),
    }
}

/// The shape named by a `topology` axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopologyAxis {
    /// `starN`: N platforms directly on the server.
    Star(usize),
    /// `hierR_P`: R regions of P platforms each, one relay per region.
    Hier { regions: usize, per_region: usize },
}

impl TopologyAxis {
    fn platforms(self) -> usize {
        match self {
            TopologyAxis::Star(n) => n,
            TopologyAxis::Hier { regions, per_region } => regions * per_region,
        }
    }
}

/// `starN` → N platforms on a star; `hierR_P` → R regions × P platforms
/// behind regional relays.
fn parse_topology(topology: &str) -> Result<TopologyAxis, String> {
    if let Some(n) = topology.strip_prefix("star") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("unknown topology axis value {topology:?} (expected starN or hierR_P)"))?;
        if n < 2 {
            return Err(format!("topology {topology:?} needs at least 2 platforms"));
        }
        return Ok(TopologyAxis::Star(n));
    }
    if let Some(shape) = topology.strip_prefix("hier") {
        let (regions, per_region) = shape
            .split_once('_')
            .ok_or_else(|| format!("topology {topology:?}: expected hierR_P (regions_platforms)"))?;
        let regions: usize = regions
            .parse()
            .map_err(|_| format!("topology {topology:?}: bad region count"))?;
        let per_region: usize = per_region
            .parse()
            .map_err(|_| format!("topology {topology:?}: bad per-region platform count"))?;
        if regions == 0 || per_region == 0 {
            return Err(format!(
                "topology {topology:?} needs at least one region and platform"
            ));
        }
        if regions * per_region < 2 {
            return Err(format!("topology {topology:?} needs at least 2 platforms"));
        }
        return Ok(TopologyAxis::Hier { regions, per_region });
    }
    Err(format!(
        "unknown topology axis value {topology:?} (expected starN or hierR_P)"
    ))
}

/// Fault-plan grammar for the `fault` axis:
/// `clean`, `dropNN` (NN percent per-message loss), `crash_C_R`
/// (platform 1 down for rounds `[C, R)`), `straggler` (platform 1 at
/// half speed), `relaycrash_C_R` (relay 1 down for rounds `[C, R)`,
/// hierarchical topologies with ≥ 2 regions only) and
/// `partition_G_C_R` (region G cut off from everything outside it for
/// rounds `[C, R)`, hierarchical topologies only). Malformed or
/// topology-incompatible tokens are hard errors. The plan is seeded
/// from the point's seed so fault schedules replay with the run.
fn parse_fault(fault: &str, seed: u64, topo: TopologyAxis) -> Result<FaultPlan, String> {
    let plan = FaultPlan::new(seed);
    if fault == "clean" {
        return Ok(plan);
    }
    if let Some(pct) = fault.strip_prefix("drop") {
        let pct: f64 = pct
            .parse()
            .map_err(|_| format!("fault {fault:?}: dropNN takes an integer percent"))?;
        if !(0.0..=90.0).contains(&pct) {
            return Err(format!("fault {fault:?}: drop percent out of range"));
        }
        return Ok(plan.with_drop(pct / 100.0));
    }
    if let Some(window) = fault.strip_prefix("relaycrash_") {
        let TopologyAxis::Hier { regions, .. } = topo else {
            return Err(format!(
                "fault {fault:?} requires a hierarchical (hierR_P) topology"
            ));
        };
        if regions < 2 {
            return Err(format!(
                "fault {fault:?} crashes relay 1 and needs at least 2 regions"
            ));
        }
        let (crash, recover) = parse_round_window(fault, window, "relaycrash_C_R")?;
        return Ok(plan.crash_relay(1, crash).recover_relay(1, recover));
    }
    if let Some(spec) = fault.strip_prefix("partition_") {
        let TopologyAxis::Hier { regions, per_region } = topo else {
            return Err(format!(
                "fault {fault:?} requires a hierarchical (hierR_P) topology"
            ));
        };
        let (region, window) = spec
            .split_once('_')
            .ok_or_else(|| format!("fault {fault:?}: expected partition_G_C_R"))?;
        let region: usize = region
            .parse()
            .map_err(|_| format!("fault {fault:?}: bad region index"))?;
        if region >= regions {
            return Err(format!(
                "fault {fault:?}: region {region} out of range for {regions} regions"
            ));
        }
        let (down, up) = parse_round_window(fault, window, "partition_G_C_R")?;
        let hier = HierTopology::new(regions, per_region);
        return Ok(plan.partition_region(&hier, region, down, up));
    }
    if let Some(window) = fault.strip_prefix("crash_") {
        let (crash, recover) = parse_round_window(fault, window, "crash_C_R")?;
        return Ok(plan
            .crash(NodeId::Platform(1), crash)
            .recover(NodeId::Platform(1), recover));
    }
    if fault == "straggler" {
        return Ok(plan.straggler(NodeId::Platform(1), 0.5));
    }
    Err(format!("unknown fault axis value {fault:?}"))
}

/// Parses the `C_R` tail shared by the windowed fault tokens.
fn parse_round_window(fault: &str, window: &str, shape: &str) -> Result<(u64, u64), String> {
    let (start, end) = window
        .split_once('_')
        .ok_or_else(|| format!("fault {fault:?}: expected {shape}"))?;
    let start: u64 = start
        .parse()
        .map_err(|_| format!("fault {fault:?}: bad start round"))?;
    let end: u64 = end
        .parse()
        .map_err(|_| format!("fault {fault:?}: bad end round"))?;
    if end <= start {
        return Err(format!("fault {fault:?}: the window must end after it starts"));
    }
    Ok((start, end))
}

fn parse_codec(codec: &str) -> Result<WireCodec, String> {
    match codec {
        "f32" => Ok(WireCodec::F32),
        "f16" => Ok(WireCodec::F16),
        "int8" => Ok(WireCodec::Int8),
        other => Err(format!(
            "unknown codec axis value {other:?} (expected \"f32\", \"f16\", or \"int8\")"
        )),
    }
}

/// The `split_train` workload: a resilient split-training run over the
/// chaos transport, shaped entirely by the point's axes and the
/// manifest's `[run]` options.
fn run_split_train(point: &RunPoint, manifest: &Manifest) -> Result<PointOutcome, String> {
    let topo = parse_topology(&point.topology)?;
    let platforms = topo.platforms();
    let arch = parse_model(&point.model)?;
    let plan = parse_fault(&point.fault, point.seed, topo)?;
    let samples = manifest.run.samples;
    let rounds = manifest.run.rounds;

    let train = SyntheticTabular::new(3, 8, point.seed)
        .generate(samples)
        .map_err(|e| format!("train data: {e}"))?;
    let test = SyntheticTabular::new(3, 8, point.seed + 1)
        .generate((samples / 4).max(8))
        .map_err(|e| format!("test data: {e}"))?;
    let shards =
        partition(&train, platforms, &Partition::Iid, point.seed).map_err(|e| format!("shards: {e}"))?;

    let mut config = SplitConfig {
        rounds,
        eval_every: rounds,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(10),
        seed: point.seed,
        codec: parse_codec(&point.codec)?,
        ..SplitConfig::default()
    };
    // Tolerate the injected faults: any quorum completes the round.
    config.round_policy.min_platforms = 1;

    // (retries, checksum_rejections, quorum_failures) plus the
    // hierarchy-only counters, zero on the star path.
    let (history, resilience, hier_extra) = match topo {
        TopologyAxis::Star(n) => {
            let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(n)), plan);
            let mut trainer = ResilientTrainer::new(&arch, config, shards, test, &chaos)
                .map_err(|e| format!("trainer: {e}"))?;
            let history = trainer.run().map_err(|e| format!("training: {e}"))?;
            (history, trainer.report(), None)
        }
        TopologyAxis::Hier { regions, per_region } => {
            let hier_topo = HierTopology::new(regions, per_region);
            let chaos = ChaosTransport::new(MemoryTransport::new(hier_topo.clone()), plan);
            let mut trainer = HierResilientTrainer::new(
                &arch,
                config,
                HierPolicy::default(),
                hier_topo,
                shards,
                test,
                &chaos,
            )
            .map_err(|e| format!("trainer: {e}"))?;
            let history = trainer.run().map_err(|e| format!("training: {e}"))?;
            let report = trainer.report().clone();
            (history, report.base, Some(report))
        }
    };

    let mut metrics: Vec<(String, MetricValue)> = vec![
        // f32 → f64 is exact, so accuracy still compares bit-for-bit.
        (
            "final_accuracy".into(),
            MetricValue::Num(f64::from(history.final_accuracy)),
        ),
        (
            "rounds_completed".into(),
            MetricValue::Num(history.records.len() as f64),
        ),
        (
            "degraded_rounds".into(),
            MetricValue::Num(history.degraded_rounds() as f64),
        ),
        (
            "total_bytes".into(),
            MetricValue::Num(history.stats.total_bytes as f64),
        ),
        ("messages".into(), MetricValue::Num(history.stats.messages as f64)),
        (
            "uplink_bytes".into(),
            MetricValue::Num(history.stats.uplink_bytes as f64),
        ),
        (
            "downlink_bytes".into(),
            MetricValue::Num(history.stats.downlink_bytes as f64),
        ),
        // The simulated clock, not wall time — deterministic.
        ("makespan_s".into(), MetricValue::Num(history.stats.makespan_s)),
        ("retries".into(), MetricValue::Num(resilience.retries as f64)),
        (
            "checksum_rejections".into(),
            MetricValue::Num(resilience.checksum_rejections as f64),
        ),
        (
            "quorum_failures".into(),
            MetricValue::Num(resilience.quorum_failures as f64),
        ),
    ];
    if let Some(hier) = hier_extra {
        // Routing and batching are protocol-determined, so these digest
        // alongside the wire-byte metrics.
        metrics.push(("rehomes".into(), MetricValue::Num(hier.rehomes as f64)));
        metrics.push((
            "direct_fallbacks".into(),
            MetricValue::Num(hier.direct_fallbacks as f64),
        ));
        metrics.push((
            "orphaned_platform_rounds".into(),
            MetricValue::Num(hier.orphaned_platform_rounds as f64),
        ));
        metrics.push((
            "relay_batches".into(),
            MetricValue::Num(hier.relay_batches as f64),
        ));
        metrics.push((
            "region_quorum_drops".into(),
            MetricValue::Num(hier.region_quorum_drops as f64),
        ));
        for (g, &bytes) in hier.region_bytes.iter().enumerate() {
            metrics.push((format!("region{g}_bytes"), MetricValue::Num(bytes as f64)));
        }
    }
    let mut timings = Vec::new();
    partition_snapshot(
        &medsplit_telemetry::snapshot_metrics(),
        &mut metrics,
        &mut timings,
    );
    Ok(PointOutcome {
        metrics,
        timings,
        trace_jsonl: None,
    })
}

impl BenchRunner for MedsplitRunner {
    fn run_point(
        &mut self,
        point: &RunPoint,
        manifest: &Manifest,
        artifacts_dir: &Path,
    ) -> Result<PointOutcome, String> {
        // Route every bench-native artifact (CSVs, digests, JSON) into
        // the point's artifact directory instead of bench_results/.
        std::env::set_var("MEDSPLIT_RESULTS_DIR", artifacts_dir);

        let isa = parse_isa(&point.isa)?;
        if !simd::set_isa(isa) {
            return Err(format!("isa {:?} is not supported on this host", point.isa));
        }
        pool::set_num_threads(point.threads);

        medsplit_telemetry::reset_metrics();
        let _ = medsplit_telemetry::drain_spans();
        if manifest.run.capture_trace {
            medsplit_telemetry::set_enabled(true);
        }

        let wall = Instant::now();
        let mut outcome = match point.bench.as_str() {
            "split_train" => run_split_train(point, manifest),
            "kernel_smoke" => {
                let out = crate::bins::kernel_bench::run(&["--smoke".into()]);
                Ok(PointOutcome {
                    metrics: vec![
                        (
                            "kernel_digest".into(),
                            MetricValue::Str(format!("{:016x}", out.kernel_digest)),
                        ),
                        (
                            "plan_digest".into(),
                            MetricValue::Str(format!("{:016x}", out.plan_digest)),
                        ),
                        ("rows".into(), MetricValue::Num(out.rows as f64)),
                    ],
                    ..PointOutcome::default()
                })
            }
            "codec_frontier" => {
                let out = crate::bins::codec_bench::run(&["--smoke".into()]);
                let mut metrics: Vec<(String, MetricValue)> = vec![
                    ("rows".into(), MetricValue::Num(out.rows as f64)),
                    (
                        "frontier_digest".into(),
                        MetricValue::Str(format!("{:016x}", out.frontier_digest)),
                    ),
                ];
                // Quantity-first keys so the manifest's `[gate.pct]`
                // prefix bands can give every point's accuracy one
                // tolerance while the byte columns stay exact.
                for (label, acc, wire, logical) in &out.points {
                    metrics.push((
                        format!("final_accuracy.{label}"),
                        MetricValue::Num(f64::from(*acc)),
                    ));
                    metrics.push((format!("wire_bytes.{label}"), MetricValue::Num(*wire as f64)));
                    metrics.push((
                        format!("logical_bytes.{label}"),
                        MetricValue::Num(*logical as f64),
                    ));
                }
                Ok(PointOutcome {
                    metrics,
                    ..PointOutcome::default()
                })
            }
            "trace_smoke" => {
                let out = crate::bins::trace_report::run(&["--smoke".into()]);
                Ok(PointOutcome {
                    metrics: vec![("spans".into(), MetricValue::Num(out.spans as f64))],
                    // The snapshot count depends on which metrics a
                    // process has lazily registered so far — racy across
                    // in-process repetitions, so it is not digested.
                    timings: vec![("metric_snapshots".into(), out.metrics as f64)],
                    ..PointOutcome::default()
                })
            }
            "resilience_smoke" => {
                let out = crate::bins::resilience_bench::run(&["--smoke".into()]);
                Ok(PointOutcome {
                    metrics: vec![
                        ("rows".into(), MetricValue::Num(out.rows as f64)),
                        (
                            "clean_accuracy".into(),
                            MetricValue::Num(f64::from(out.clean_accuracy)),
                        ),
                        ("clean_bytes".into(), MetricValue::Num(out.clean_bytes as f64)),
                    ],
                    ..PointOutcome::default()
                })
            }
            "fleet_smoke" => {
                let out = crate::bins::fleet_bench::run(&["--smoke".into()]);
                let digest = out
                    .low_load_digest
                    .map(|d| format!("{d:016x}"))
                    .ok_or("fleet smoke completed no full-load point")?;
                Ok(PointOutcome {
                    metrics: vec![
                        ("rows".into(), MetricValue::Num(out.rows as f64)),
                        ("low_load_digest".into(), MetricValue::Str(digest)),
                    ],
                    ..PointOutcome::default()
                })
            }
            other => Err(format!("unknown bench axis value {other:?}")),
        }?;
        outcome
            .timings
            .push(("wall_s".into(), wall.elapsed().as_secs_f64()));

        if manifest.run.capture_trace {
            medsplit_telemetry::set_enabled(false);
            let trace = Trace::capture();
            if !trace.spans.is_empty() || !trace.metrics.is_empty() {
                outcome.trace_jsonl = Some(medsplit_telemetry::to_jsonl(&trace));
            }
        }

        // Leave the process in its default state for the next point.
        pool::set_num_threads(1);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STAR4: TopologyAxis = TopologyAxis::Star(4);
    const HIER2_2: TopologyAxis = TopologyAxis::Hier {
        regions: 2,
        per_region: 2,
    };

    #[test]
    fn fault_grammar_parses_and_rejects() {
        assert!(parse_fault("clean", 1, STAR4).is_ok());
        assert!(parse_fault("drop10", 1, STAR4).is_ok());
        assert!(parse_fault("crash_3_6", 1, STAR4).is_ok());
        assert!(parse_fault("straggler", 1, STAR4).is_ok());
        assert!(parse_fault("drop200", 1, STAR4).is_err());
        assert!(parse_fault("crash_6_3", 1, STAR4).is_err());
        assert!(parse_fault("gremlins", 1, STAR4).is_err());
    }

    #[test]
    fn relay_fault_tokens_parse_on_hierarchies() {
        assert!(parse_fault("relaycrash_2_5", 1, HIER2_2).is_ok());
        assert!(parse_fault("partition_1_2_5", 1, HIER2_2).is_ok());
        assert!(parse_fault("partition_0_0_1", 1, HIER2_2).is_ok());
        // Star topologies have no relays or regions: hard errors, not
        // silently ignored tokens.
        assert!(parse_fault("relaycrash_2_5", 1, STAR4).is_err());
        assert!(parse_fault("partition_0_2_5", 1, STAR4).is_err());
        // A single-region hierarchy has no backup relay to crash into.
        let hier1_4 = TopologyAxis::Hier {
            regions: 1,
            per_region: 4,
        };
        assert!(parse_fault("relaycrash_2_5", 1, hier1_4).is_err());
    }

    #[test]
    fn malformed_relay_fault_tokens_stay_hard_errors() {
        assert!(parse_fault("relaycrash_3", 1, HIER2_2).is_err());
        assert!(parse_fault("relaycrash_a_b", 1, HIER2_2).is_err());
        assert!(parse_fault("relaycrash_6_3", 1, HIER2_2).is_err());
        assert!(parse_fault("partition_1_2", 1, HIER2_2).is_err());
        assert!(parse_fault("partition_x_2_5", 1, HIER2_2).is_err());
        assert!(parse_fault("partition_1_5_2", 1, HIER2_2).is_err());
        // Region index beyond the topology's regions.
        assert!(parse_fault("partition_2_2_5", 1, HIER2_2).is_err());
    }

    #[test]
    fn topology_and_codec_axes_parse() {
        assert_eq!(parse_topology("star4").unwrap(), STAR4);
        assert!(parse_topology("star1").is_err());
        assert!(parse_topology("ring4").is_err());
        assert_eq!(parse_topology("hier2_2").unwrap(), HIER2_2);
        assert_eq!(HIER2_2.platforms(), 4);
        assert!(parse_topology("hier4_2").is_ok());
        assert!(parse_topology("hier2").is_err());
        assert!(parse_topology("hier0_4").is_err());
        assert!(parse_topology("hier2_0").is_err());
        assert!(parse_topology("hier1_1").is_err());
        assert!(parse_topology("hier2_x").is_err());
        assert_eq!(parse_codec("f16").unwrap(), WireCodec::F16);
        assert_eq!(parse_codec("int8").unwrap(), WireCodec::Int8);
        // The rejection names every valid axis value, so a manifest typo
        // is self-explanatory.
        let err = parse_codec("f64").unwrap_err();
        for valid in ["\"f32\"", "\"f16\"", "\"int8\""] {
            assert!(err.contains(valid), "codec error {err:?} missing {valid}");
        }
        assert!(parse_isa("auto").is_ok());
        assert!(parse_isa("riscv").is_err());
    }

    #[test]
    fn snapshot_partitioning_keeps_only_net_counters() {
        let snapshot = vec![
            MetricSnapshot::Counter {
                name: "net.bytes.logits".into(),
                value: 10,
            },
            MetricSnapshot::Counter {
                name: "pool.jobs".into(),
                value: 3,
            },
            MetricSnapshot::Gauge {
                name: "kernel.isa_level".into(),
                value: 2.0,
            },
            MetricSnapshot::Histogram {
                name: "serve.latency".into(),
                bounds: vec![0.1],
                buckets: vec![1, 0],
                count: 1,
                sum: 0.05,
            },
        ];
        let (mut metrics, mut timings) = (Vec::new(), Vec::new());
        partition_snapshot(&snapshot, &mut metrics, &mut timings);
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].0, "net.bytes.logits");
        let names: Vec<&str> = timings.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "pool.jobs",
                "kernel.isa_level",
                "serve.latency.count",
                "serve.latency.sum"
            ]
        );
    }

    #[test]
    fn split_train_point_is_bit_reproducible() {
        let manifest = Manifest::parse(
            r#"
schema_version = 1
[lab]
name = "labrun-test"
[matrix]
bench = ["split_train"]
fault = ["drop10"]
[run]
rounds = 2
samples = 48
"#,
        )
        .unwrap();
        let _env = crate::testsync::ENV.lock().unwrap_or_else(|e| e.into_inner());
        let point = medsplit_lab::expand(&manifest.axes).remove(0);
        let tmp = std::env::temp_dir().join(format!("medsplit-labrun-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let mut runner = MedsplitRunner;
        let a = runner.run_point(&point, &manifest, &tmp).unwrap();
        let b = runner.run_point(&point, &manifest, &tmp).unwrap();
        assert_eq!(
            a.metrics, b.metrics,
            "split_train metrics must replay bit-identically"
        );
        assert!(a.metrics.iter().any(|(n, _)| n == "final_accuracy"));
        assert!(
            a.timings.iter().any(|(n, _)| n == "wall_s"),
            "wall clock must land in timings, not metrics"
        );
        let _ = std::fs::remove_dir_all(tmp);
    }
}
