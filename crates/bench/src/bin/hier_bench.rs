//! Thin shim over [`medsplit_bench::bins::hier_bench`] — see that module for
//! the experiment's documentation.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _ = medsplit_bench::bins::hier_bench::run(&args);
}
