//! Regenerates Fig. 5: the split-point sweep — per-round communication
//! and privacy leakage (distance correlation, linear-attacker R²) as the
//! cut moves deeper into the network.
//!
//! Usage:
//!   fig5 [--quick]

use medsplit_bench::experiments::{fig5_run, fig5_table, vgg_lite_cuts, Scale};
use medsplit_bench::report::{arg_present, write_result};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = if arg_present(&args, "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    };
    // Leakage probing does not need long training; cap the rounds.
    scale.rounds = scale.rounds.min(100);
    let cuts = vgg_lite_cuts();
    eprintln!("[fig5] sweeping cuts {cuts:?} ({scale:?})...");
    let points = fig5_run(scale, &cuts, 42).expect("fig5 failed");
    let table = fig5_table(&points);
    println!("{table}");
    let path = write_result("fig5.csv", &table.to_csv()).expect("write results");
    eprintln!("[fig5] wrote {}", path.display());
}
