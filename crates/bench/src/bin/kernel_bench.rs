//! Kernel benchmark harness for the parallel packed compute backend.
//!
//! Sweeps GEMM and convolution shapes across worker-pool sizes and
//! reports throughput (GFLOP/s), speedup versus one thread, speedup
//! versus the seed (naive, branchy) kernel, scratch-arena heap
//! allocations per step, and — the headline for the SIMD microkernels —
//! GFLOPS versus the portable scalar reference path
//! (`gflops_vs_scalar`): every shape is measured once more under
//! `MEDSPLIT_ISA=scalar` semantics at one thread, and each row reports
//! its throughput relative to that baseline.
//!
//! Outputs:
//!   - `bench_results/kernel_bench.csv` (or `$MEDSPLIT_RESULTS_DIR`),
//!   - `BENCH_kernels.json` in the current directory (repo root in CI),
//!     with the dispatched ISA recorded,
//!   - `bench_results/kernel_digest.txt`: an FNV-1a digest of a fixed
//!     deterministic kernel workload. CI runs the smoke bench twice —
//!     `MEDSPLIT_ISA=scalar` and auto-detected — and asserts the digests
//!     match, pinning the cross-ISA bit-identity guarantee end to end.
//!
//! Usage:
//!   kernel_bench [--smoke] [--threads 1,2,4] [--reps N]
//!
//! `--smoke` runs tiny shapes with one repetition and asserts the CSV
//! schema, so CI can gate on the harness itself staying healthy.

use std::fmt::Write as _;
use std::time::Instant;

use medsplit_bench::report::{arg_present, arg_value, write_result, TextTable};
use medsplit_tensor::ops::conv::{conv2d_forward, Conv2dSpec};
use medsplit_tensor::{init::rng_from_seed, pool, scratch, simd, Tensor};

const CSV_HEADER: &str = "kernel,shape,threads,reps,best_ms,gflops,speedup_vs_1t,\
                          speedup_vs_seed,gflops_vs_scalar,scratch_allocs_per_step";

/// The seed repository's GEMM kernel, kept verbatim as the baseline: a
/// cache-blocked triple loop with the `aval == 0.0` skip branch the
/// packed backend removed. Single-threaded by construction.
fn seed_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    const BLOCK: usize = 64;
    let mut c = vec![0.0f32; m * n];
    for ib in (0..m).step_by(BLOCK) {
        let imax = (ib + BLOCK).min(m);
        for kb in (0..k).step_by(BLOCK) {
            let kmax = (kb + BLOCK).min(k);
            for i in ib..imax {
                let crow = &mut c[i * n..(i + 1) * n];
                for p in kb..kmax {
                    let aval = a[i * k + p];
                    if aval == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..p * n + n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aval * bv;
                    }
                }
            }
        }
    }
    c
}

struct Row {
    kernel: &'static str,
    shape: String,
    threads: usize,
    reps: usize,
    best_ms: f64,
    gflops: f64,
    speedup_vs_1t: f64,
    speedup_vs_seed: f64,
    gflops_vs_scalar: f64,
    scratch_allocs_per_step: f64,
}

/// Times `body` for `reps` repetitions and returns the best wall time in
/// seconds plus the scratch-arena allocation growth per repetition.
fn time_best(reps: usize, body: impl Fn() + Sync) -> (f64, f64) {
    // Warm up on the caller AND every pool worker so no worker's
    // thread-local scratch arena grows inside the timed region — jobs go
    // to whichever workers win the queue race, so a single plain call
    // cannot cover them all.
    pool::warmup(&body);
    let allocs_before = scratch::stats().allocations;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        body();
        best = best.min(t.elapsed().as_secs_f64());
    }
    let allocs = scratch::stats().allocations - allocs_before;
    (best, allocs as f64 / reps as f64)
}

/// Measures `body` once under the portable scalar ISA at one thread and
/// returns the best wall time; restores the previously active ISA.
fn scalar_baseline(reps: usize, body: impl Fn() + Sync) -> f64 {
    let active = simd::active_isa();
    assert!(simd::set_isa(simd::Isa::Scalar));
    pool::set_num_threads(1);
    let (best_s, _) = time_best(reps, body);
    assert!(simd::set_isa(active));
    best_s
}

fn bench_gemm(m: usize, k: usize, n: usize, threads: &[usize], reps: usize, rows: &mut Vec<Row>) {
    let mut rng = rng_from_seed(7);
    let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;

    let (seed_s, _) = time_best(reps, || {
        std::hint::black_box(seed_gemm(a.as_slice(), b.as_slice(), m, k, n));
    });
    // The scalar reference path is deliberately slow (libm-fused); a
    // couple of repetitions suffice for a stable best-of.
    let scalar_s = scalar_baseline(reps.min(2), || {
        std::hint::black_box(a.matmul(&b).expect("gemm"));
    });
    let scalar_gflops = flops / scalar_s / 1e9;

    let mut one_thread_s = f64::NAN;
    for &t in threads {
        pool::set_num_threads(t);
        let (best_s, allocs) = time_best(reps, || {
            std::hint::black_box(a.matmul(&b).expect("gemm"));
        });
        if t == 1 {
            one_thread_s = best_s;
        }
        rows.push(Row {
            kernel: "gemm",
            shape: format!("{m}x{k}x{n}"),
            threads: t,
            reps,
            best_ms: best_s * 1e3,
            gflops: flops / best_s / 1e9,
            speedup_vs_1t: one_thread_s / best_s,
            speedup_vs_seed: seed_s / best_s,
            gflops_vs_scalar: (flops / best_s / 1e9) / scalar_gflops,
            scratch_allocs_per_step: allocs,
        });
    }
    pool::set_num_threads(1);
}

#[allow(clippy::too_many_arguments)]
fn bench_conv(
    label: &'static str,
    n: usize,
    c: usize,
    hw: usize,
    o: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    threads: &[usize],
    reps: usize,
    rows: &mut Vec<Row>,
) {
    let mut rng = rng_from_seed(11);
    let input = Tensor::rand_uniform([n, c, hw, hw], -1.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform([o, c, kernel, kernel], -0.5, 0.5, &mut rng);
    let bias = Tensor::rand_uniform([o], -0.1, 0.1, &mut rng);
    let spec = Conv2dSpec::square(kernel, stride, padding);
    let (oh, ow) = spec.output_hw(hw, hw).expect("conv shape");
    let flops = 2.0 * (n * o * oh * ow * c * kernel * kernel) as f64;

    let scalar_s = scalar_baseline(reps.min(2), || {
        std::hint::black_box(conv2d_forward(&input, &weight, Some(&bias), spec).expect("conv"));
    });
    let scalar_gflops = flops / scalar_s / 1e9;

    let mut one_thread_s = f64::NAN;
    for &t in threads {
        pool::set_num_threads(t);
        let (best_s, allocs) = time_best(reps, || {
            std::hint::black_box(conv2d_forward(&input, &weight, Some(&bias), spec).expect("conv"));
        });
        if t == 1 {
            one_thread_s = best_s;
        }
        rows.push(Row {
            kernel: label,
            shape: format!("{n}x{c}x{hw}x{hw}->k{kernel}s{stride}p{padding}o{o}"),
            threads: t,
            reps,
            best_ms: best_s * 1e3,
            gflops: flops / best_s / 1e9,
            speedup_vs_1t: one_thread_s / best_s,
            // No seed-kernel counterpart: conv was always im2col+GEMM;
            // the seed comparison is carried by the gemm rows.
            speedup_vs_seed: f64::NAN,
            gflops_vs_scalar: (flops / best_s / 1e9) / scalar_gflops,
            scratch_allocs_per_step: allocs,
        });
    }
    pool::set_num_threads(1);
}

fn to_csv(rows: &[Row]) -> String {
    let mut csv = String::from(CSV_HEADER);
    csv.push('\n');
    for r in rows {
        let seed = if r.speedup_vs_seed.is_nan() {
            String::new()
        } else {
            format!("{:.2}", r.speedup_vs_seed)
        };
        let _ = writeln!(
            csv,
            "{},{},{},{},{:.3},{:.2},{:.2},{},{:.2},{:.2}",
            r.kernel,
            r.shape,
            r.threads,
            r.reps,
            r.best_ms,
            r.gflops,
            r.speedup_vs_1t,
            seed,
            r.gflops_vs_scalar,
            r.scratch_allocs_per_step
        );
    }
    csv
}

fn to_json(rows: &[Row], host_threads: usize, isa: &str) -> String {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernel_bench\",");
    let _ = writeln!(json, "  \"isa\": \"{isa}\",");
    let _ = writeln!(json, "  \"host_available_parallelism\": {host_threads},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let seed = if r.speedup_vs_seed.is_nan() {
            "null".to_string()
        } else {
            format!("{:.3}", r.speedup_vs_seed)
        };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"best_ms\": {:.4}, \
             \"gflops\": {:.3}, \"speedup_vs_1t\": {:.3}, \"speedup_vs_seed\": {}, \
             \"gflops_vs_scalar\": {:.3}, \"scratch_allocs_per_step\": {:.2}}}{}",
            r.kernel,
            r.shape,
            r.threads,
            r.best_ms,
            r.gflops,
            r.speedup_vs_1t,
            seed,
            r.gflops_vs_scalar,
            r.scratch_allocs_per_step,
            comma
        );
    }
    json.push_str("  ]\n}\n");
    json
}

/// FNV-1a over a stream of `f32` bit patterns (little-endian).
fn fnv1a_fold(hash: u64, vals: &[f32]) -> u64 {
    let mut h = hash;
    for v in vals {
        for byte in v.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs a fixed deterministic workload through every dispatched kernel
/// family (all three GEMM variants with edge tiles, conv forward, the
/// ReLU family, the accumulators) at one thread and digests the result
/// bits. Identical across `MEDSPLIT_ISA` settings by construction; CI
/// asserts it.
fn kernel_digest() -> u64 {
    pool::set_num_threads(1);
    let mut rng = rng_from_seed(99);
    let a = Tensor::rand_uniform([70, 93], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([93, 37], -1.0, 1.0, &mut rng);
    let mut h = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    h = fnv1a_fold(h, a.matmul(&b).expect("digest gemm").as_slice());
    let at = a.transpose().expect("digest transpose");
    h = fnv1a_fold(h, at.matmul_tn(&b).expect("digest gemm_tn").as_slice());
    let bt = b.transpose().expect("digest transpose");
    h = fnv1a_fold(h, a.matmul_nt(&bt).expect("digest gemm_nt").as_slice());

    let input = Tensor::rand_uniform([2, 3, 11, 11], -1.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform([4, 3, 3, 3], -0.5, 0.5, &mut rng);
    let conv = conv2d_forward(&input, &weight, None, Conv2dSpec::square(3, 1, 1)).expect("digest conv");
    h = fnv1a_fold(h, conv.as_slice());

    let x = Tensor::rand_uniform([999], -2.0, 2.0, &mut rng);
    let g = Tensor::rand_uniform([999], -1.0, 1.0, &mut rng);
    h = fnv1a_fold(h, x.relu().as_slice());
    h = fnv1a_fold(h, x.relu().relu_backward(&g).expect("digest relu_bwd").as_slice());
    h = fnv1a_fold(h, x.leaky_relu(0.01).as_slice());
    let mut acc = x.clone();
    acc.axpy(0.37, &g).expect("digest axpy");
    acc.add_assign(&g).expect("digest add_assign");
    acc.scale_inplace(-1.25);
    h = fnv1a_fold(h, acc.as_slice());
    h = fnv1a_fold(h, (&x * &g).as_slice());
    h
}

fn parse_threads(spec: &str) -> Vec<usize> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().expect("--threads takes e.g. 1,2,4"))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = arg_present(&args, "--smoke");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let isa = simd::active_isa();
    let threads = match arg_value(&args, "--threads") {
        Some(spec) => parse_threads(&spec),
        None if smoke => vec![1, 2],
        None => vec![1, 2, 4],
    };
    let reps: usize = arg_value(&args, "--reps")
        .map(|v| v.parse().expect("--reps takes an integer"))
        .unwrap_or(if smoke { 1 } else { 5 });

    let mut rows = Vec::new();
    if smoke {
        bench_gemm(48, 33, 17, &threads, reps, &mut rows);
        bench_conv("conv2d", 2, 3, 8, 4, 3, 1, 1, &threads, reps, &mut rows);
    } else {
        // GEMM shapes: the acceptance shape plus split-model layer shapes
        // (tall-skinny activations x weights) and a wide-N case that
        // exercises the shared whole-B pack.
        bench_gemm(512, 512, 512, &threads, reps, &mut rows);
        bench_gemm(256, 256, 256, &threads, reps, &mut rows);
        bench_gemm(128, 784, 256, &threads, reps, &mut rows);
        bench_gemm(64, 256, 1024, &threads, reps, &mut rows);
        // Conv shapes drawn from VGG16 / ResNet18 early stages, scaled to
        // medical-imaging-sized inputs the paper's CNNs use.
        bench_conv("conv2d", 4, 3, 64, 64, 3, 1, 1, &threads, reps, &mut rows);
        bench_conv("conv2d", 4, 64, 32, 64, 3, 1, 1, &threads, reps, &mut rows);
        bench_conv("conv2d", 8, 3, 56, 64, 7, 2, 3, &threads, reps, &mut rows);
    }

    let csv = to_csv(&rows);
    assert!(
        csv.lines().next() == Some(CSV_HEADER),
        "kernel_bench CSV schema drifted"
    );
    assert!(rows.len() >= threads.len(), "kernel_bench produced no rows");
    for line in csv.lines().skip(1) {
        assert_eq!(
            line.split(',').count(),
            CSV_HEADER.split(',').count(),
            "CSV row arity mismatch: {line}"
        );
    }

    let csv_path = write_result("kernel_bench.csv", &csv).expect("write kernel_bench.csv");
    let json = to_json(&rows, host_threads, isa.name());
    // Smoke runs keep the JSON next to the CSV so they never clobber the
    // committed full-sweep numbers at the repo root.
    let json_path = if smoke {
        medsplit_bench::report::results_dir().join("BENCH_kernels.json")
    } else {
        std::path::PathBuf::from("BENCH_kernels.json")
    };
    std::fs::write(&json_path, &json).expect("write BENCH_kernels.json");

    let digest = kernel_digest();
    let digest_path =
        write_result("kernel_digest.txt", &format!("{digest:016x}\n")).expect("write kernel_digest.txt");

    let mut table = TextTable::new(
        "kernel_bench (best-of-reps wall time)",
        &[
            "kernel",
            "shape",
            "threads",
            "best ms",
            "GFLOP/s",
            "vs 1t",
            "vs seed",
            "vs scalar",
            "allocs/step",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.kernel.to_string(),
            r.shape.clone(),
            r.threads.to_string(),
            format!("{:.3}", r.best_ms),
            format!("{:.2}", r.gflops),
            format!("{:.2}x", r.speedup_vs_1t),
            if r.speedup_vs_seed.is_nan() {
                "-".into()
            } else {
                format!("{:.2}x", r.speedup_vs_seed)
            },
            format!("{:.2}x", r.gflops_vs_scalar),
            format!("{:.2}", r.scratch_allocs_per_step),
        ]);
    }
    println!("{table}");
    println!(
        "isa: {} (set MEDSPLIT_ISA=scalar|avx2|neon to override)",
        isa.name()
    );
    println!("host available_parallelism: {host_threads}");
    println!(
        "wrote {}, {} and {}",
        csv_path.display(),
        json_path.display(),
        digest_path.display()
    );
    if smoke {
        println!("smoke OK: {} rows, schema verified", rows.len());
    }
}
