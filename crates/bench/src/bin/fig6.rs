//! Thin shim over [`medsplit_bench::bins::fig6`] — see that module for
//! the experiment's documentation.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    medsplit_bench::bins::fig6::run(&args);
}
