//! Regenerates Fig. 7: the activation-noise privacy defence — accuracy vs
//! leakage as Gaussian noise is added to every transmitted activation.
//!
//! Usage:
//!   fig7 [--quick]

use medsplit_bench::experiments::{fig7_run, fig7_table, Scale};
use medsplit_bench::report::{arg_present, write_result};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = if arg_present(&args, "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    };
    scale.rounds = scale.rounds.min(150);
    let sigmas = [0.0f32, 0.5, 1.0, 2.0, 4.0];
    eprintln!("[fig7] sweeping activation noise {sigmas:?} ({scale:?})...");
    let points = fig7_run(scale, &sigmas, 42).expect("fig7 failed");
    let table = fig7_table(&points);
    println!("{table}");
    let path = write_result("fig7.csv", &table.to_csv()).expect("write results");
    eprintln!("[fig7] wrote {}", path.display());
}
