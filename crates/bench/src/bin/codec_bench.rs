//! Thin shim over [`medsplit_bench::bins::codec_bench`] — see that
//! module for the experiment's documentation.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    medsplit_bench::bins::codec_bench::run(&args);
}
