//! `lab` — manifest-driven experiment orchestration.
//!
//! ```text
//! lab run   <manifest>  [--lab-dir DIR]              execute and materialize a run directory
//! lab list  [--dir experiments]                      list manifests, their matrix sizes and run ids
//! lab diff  <manifest>  [--baseline F] [--lab-dir D] compare the materialized run against its baseline
//! lab gate  <manifest>  [--baseline F] [--lab-dir D] fresh run + invariants + baseline; exit 1 on regression
//! lab bless <manifest>  [--lab-dir DIR]              fresh run, then write its metrics as the baseline
//! lab ci    [--smoke] [--dir experiments] [--lab-dir D]
//!           run every `ci = true` manifest twice (bit-identity check),
//!           apply its gates; exit 1 on any failure
//! ```
//!
//! Run directories land under `--lab-dir` (default `lab_runs/`), named
//! `<name>-<run_id>` where the run id is content-addressed from the
//! resolved manifest — identical manifests always rematerialize the same
//! directory, and CI asserts the `metrics.json` digest is bit-identical
//! across invocations.
//!
//! Exit codes: 0 success, 1 gate regression / invariant violation /
//! determinism failure, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use medsplit_bench::labrun::MedsplitRunner;
use medsplit_bench::report::{arg_present, arg_value};
use medsplit_lab::{
    check_invariants, compare, load_baseline, load_run_metrics, run_dir, run_id, save_baseline, DiffReport,
    Manifest,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: lab <run|list|diff|gate|bless|ci> [args]\n\
         \n\
         lab run   <manifest.lab.toml> [--lab-dir DIR]\n\
         lab list  [--dir experiments]\n\
         lab diff  <manifest.lab.toml> [--baseline FILE] [--lab-dir DIR]\n\
         lab gate  <manifest.lab.toml> [--baseline FILE] [--lab-dir DIR]\n\
         lab bless <manifest.lab.toml> [--lab-dir DIR]\n\
         lab ci    [--smoke] [--dir experiments] [--lab-dir DIR]"
    );
    ExitCode::from(2)
}

fn lab_dir(args: &[String]) -> PathBuf {
    arg_value(args, "--lab-dir").map_or_else(|| PathBuf::from("lab_runs"), PathBuf::from)
}

fn manifest_arg(args: &[String]) -> Result<Manifest, String> {
    let path = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .ok_or("expected a manifest path")?;
    Manifest::load(Path::new(path)).map_err(|e| e.to_string())
}

/// Executes a manifest and materializes its run directory.
fn execute(manifest: &Manifest, dir: &Path) -> Result<medsplit_lab::RunOutcome, String> {
    // Stamp every BENCH_*.json the points emit with this run's id.
    std::env::set_var("MEDSPLIT_LAB_RUN_ID", run_id(manifest));
    let mut runner = MedsplitRunner;
    medsplit_lab::execute(manifest, &mut runner, dir)
}

fn print_outcome(out: &medsplit_lab::RunOutcome) {
    println!(
        "run {} — {} point(s) → {}",
        out.run_id,
        out.points.len(),
        out.dir.display()
    );
    let width = out.metrics.keys().map(String::len).max().unwrap_or(0);
    for (key, value) in &out.metrics {
        println!("  {key:<width$}  {}", value.render());
    }
    println!("metrics digest: {}", out.metrics_digest);
}

/// Resolves the baseline path: `--baseline` override, else the
/// manifest's `[gate] baseline`.
fn baseline_path(manifest: &Manifest, args: &[String]) -> Option<PathBuf> {
    arg_value(args, "--baseline")
        .or_else(|| manifest.gate.baseline.clone())
        .map(PathBuf::from)
}

/// Applies every declared gate to a completed run: the cross-point
/// invariants, then the baseline diff. Returns the report (for
/// rendering) and whether the run regressed.
fn apply_gates(
    manifest: &Manifest,
    out: &medsplit_lab::RunOutcome,
    baseline: Option<&Path>,
) -> Result<(DiffReport, bool), String> {
    let mut report = match baseline {
        Some(path) => {
            let base = load_baseline(path)?;
            compare(&base, &out.metrics, &manifest.gate)
        }
        None => compare(&out.metrics, &out.metrics, &manifest.gate),
    };
    report.invariant_violations = check_invariants(&out.points, &out.metrics, &manifest.gate);
    let regressed = report.regressed();
    Ok((report, regressed))
}

fn cmd_run(args: &[String]) -> Result<bool, String> {
    let manifest = manifest_arg(args)?;
    let out = execute(&manifest, &lab_dir(args))?;
    print_outcome(&out);
    Ok(true)
}

fn cmd_list(args: &[String]) -> Result<bool, String> {
    let dir = arg_value(args, "--dir").unwrap_or_else(|| "experiments".into());
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".lab.toml"))
        })
        .collect();
    entries.sort();
    if entries.is_empty() {
        println!("no *.lab.toml manifests under {dir}/");
        return Ok(true);
    }
    for path in entries {
        match Manifest::load(&path) {
            Ok(m) => {
                let points = medsplit_lab::expand(&m.axes).len();
                println!(
                    "{:<32} {:>3} point(s)  ci={:<5} id={}  {}",
                    path.display(),
                    points,
                    m.ci,
                    run_id(&m),
                    m.description
                );
            }
            Err(e) => println!("{:<32} INVALID: {e}", path.display()),
        }
    }
    Ok(true)
}

fn cmd_diff(args: &[String]) -> Result<bool, String> {
    let manifest = manifest_arg(args)?;
    let dir = run_dir(&lab_dir(args), &manifest);
    let (metrics, _) =
        load_run_metrics(&dir).map_err(|e| format!("{e} — has `lab run` materialized this manifest?"))?;
    let Some(base_path) = baseline_path(&manifest, args) else {
        return Err("no baseline: manifest declares no [gate] baseline and no --baseline given".into());
    };
    let base = load_baseline(&base_path)?;
    let mut report = compare(&base, &metrics, &manifest.gate);
    let points = medsplit_lab::expand(&manifest.axes);
    report.invariant_violations = check_invariants(&points, &metrics, &manifest.gate);
    print!("{}", report.render(arg_present(args, "--verbose")));
    Ok(!report.regressed())
}

fn cmd_gate(args: &[String]) -> Result<bool, String> {
    let manifest = manifest_arg(args)?;
    let out = execute(&manifest, &lab_dir(args))?;
    let base = baseline_path(&manifest, args);
    if let Some(path) = &base {
        if !path.exists() {
            return Err(format!(
                "baseline {} does not exist — run `lab bless` to create it",
                path.display()
            ));
        }
    }
    let (report, regressed) = apply_gates(&manifest, &out, base.as_deref())?;
    print!("{}", report.render(arg_present(args, "--verbose")));
    if regressed {
        eprintln!("GATE FAILED: {}", manifest.name);
    } else {
        println!("gate OK: {} ({} metric(s))", manifest.name, out.metrics.len());
    }
    Ok(!regressed)
}

fn cmd_bless(args: &[String]) -> Result<bool, String> {
    let manifest = manifest_arg(args)?;
    let Some(base_path) = baseline_path(&manifest, args) else {
        return Err("manifest declares no [gate] baseline to bless".into());
    };
    let out = execute(&manifest, &lab_dir(args))?;
    // Invariants must hold before a baseline is blessed — a baseline
    // that froze an invariant violation would gate the wrong way forever.
    let violations = check_invariants(&out.points, &out.metrics, &manifest.gate);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("INVARIANT BROKEN: {v}");
        }
        return Ok(false);
    }
    save_baseline(&base_path, &manifest.name, &out.metrics)?;
    println!(
        "blessed {} metric(s) from run {} into {}",
        out.metrics.len(),
        out.run_id,
        base_path.display()
    );
    Ok(true)
}

fn cmd_ci(args: &[String]) -> Result<bool, String> {
    // `--smoke` is accepted for symmetry with the bench bins; the CI
    // suite is smoke-scale by construction (every `ci = true` manifest
    // commits to smoke-sized matrices).
    let dir = arg_value(args, "--dir").unwrap_or_else(|| "experiments".into());
    let lab = lab_dir(args);
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".lab.toml"))
        })
        .collect();
    entries.sort();

    let mut ran = 0usize;
    let mut ok = true;
    for path in entries {
        let manifest = Manifest::load(&path).map_err(|e| e.to_string())?;
        if !manifest.ci {
            continue;
        }
        ran += 1;
        println!("=== lab ci: {} ({}) ===", manifest.name, path.display());

        // Determinism gate: two executions of the same manifest must
        // materialize byte-identical metrics.
        let first = execute(&manifest, &lab)?;
        let second = execute(&manifest, &lab)?;
        if first.run_id != second.run_id || first.metrics_digest != second.metrics_digest {
            eprintln!(
                "DETERMINISM FAILED: {} — digests {} vs {}",
                manifest.name, first.metrics_digest, second.metrics_digest
            );
            ok = false;
            continue;
        }
        println!(
            "determinism OK: run {} digest {} reproduced",
            first.run_id, first.metrics_digest
        );

        let base = baseline_path(&manifest, args);
        if let Some(path) = &base {
            if !path.exists() {
                return Err(format!(
                    "{}: baseline {} missing — run `lab bless` and commit it",
                    manifest.name,
                    path.display()
                ));
            }
        }
        let (report, regressed) = apply_gates(&manifest, &second, base.as_deref())?;
        print!("{}", report.render(false));
        if regressed {
            eprintln!("GATE FAILED: {}", manifest.name);
            ok = false;
        } else {
            println!("gate OK: {}", manifest.name);
        }
    }
    if ran == 0 {
        return Err(format!("no `ci = true` manifests under {dir}/"));
    }
    println!(
        "lab ci: {ran} manifest(s) {}",
        if ok { "passed" } else { "FAILED" }
    );
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "run" => cmd_run(&args),
        "list" => cmd_list(&args),
        "diff" => cmd_diff(&args),
        "gate" => cmd_gate(&args),
        "bless" => cmd_bless(&args),
        "ci" => cmd_ci(&args),
        _ => return usage(),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("lab: {e}");
            ExitCode::from(2)
        }
    }
}
