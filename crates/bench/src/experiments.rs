//! The experiment implementations behind every table and figure.
//!
//! Each experiment is a library function parameterised by a scale knob, so
//! the binaries run the full configuration while the test suite exercises
//! the identical code path at a tiny scale.

use medsplit_baselines::{
    train_centralized, train_fedavg, train_local_only, train_sync_sgd, BaselineConfig, FedAvgOptions,
    SyncSgdOptions,
};
use medsplit_core::{
    comm, ComputeModel, Result, Scheduling, SplitConfig, SplitError, SplitPoint, SplitTrainer,
    TrainingHistory,
};
use medsplit_data::{InMemoryDataset, MinibatchPolicy, Partition};
use medsplit_nn::{Architecture, Layer, LrSchedule};
use medsplit_privacy::assess_l1_leakage;
use medsplit_simnet::{LinkSpec, MemoryTransport, StarTopology};

use crate::report::{human_bytes, TextTable};
use crate::workload::{tabular_workload, vision_workload, DatasetKind, ModelKind};

/// Scale knob shared by the trained experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Training samples (global, before sharding).
    pub train_n: usize,
    /// Test samples.
    pub test_n: usize,
    /// Rounds for the split protocol.
    pub rounds: usize,
    /// Evaluation period in rounds.
    pub eval_every: usize,
    /// Platforms.
    pub platforms: usize,
    /// Global minibatch per round (shared by all methods).
    pub global_batch: usize,
}

impl Scale {
    /// The full configuration used by the report binaries.
    pub fn full() -> Self {
        Scale {
            train_n: 1600,
            test_n: 400,
            rounds: 400,
            eval_every: 20,
            platforms: 4,
            global_batch: 32,
        }
    }

    /// A fast configuration for smoke tests (`--quick`).
    pub fn quick() -> Self {
        Scale {
            train_n: 160,
            test_n: 40,
            rounds: 12,
            eval_every: 4,
            platforms: 2,
            global_batch: 16,
        }
    }
}

fn default_topology(platforms: usize) -> StarTopology {
    StarTopology::new(platforms)
        .with_uplink(LinkSpec::wan())
        .with_downlink(LinkSpec::wan())
}

fn split_config(scale: Scale, rounds: usize) -> SplitConfig {
    SplitConfig {
        split: SplitPoint::Default,
        minibatch: MinibatchPolicy::Proportional {
            global: scale.global_batch,
        },
        scheduling: Scheduling::Aggregate,
        lr: LrSchedule::Constant(0.05),
        momentum: 0.9,
        rounds,
        eval_every: scale.eval_every,
        seed: 42,
        compute: ComputeModel::hospital_default(),
        ..SplitConfig::default()
    }
}

fn baseline_config(scale: Scale, rounds: usize) -> BaselineConfig {
    BaselineConfig {
        lr: LrSchedule::Constant(0.05),
        momentum: 0.9,
        rounds,
        eval_every: scale.eval_every,
        seed: 42,
        minibatch: MinibatchPolicy::Proportional {
            global: scale.global_batch,
        },
        compute: ComputeModel::hospital_default(),
    }
}

// ===================================================================
// Fig. 4: accuracy vs transmitted data, proposed vs Large-Scale SGD
// ===================================================================

/// Runs one Fig. 4 panel: the split protocol and large-scale synchronous
/// SGD (plus FedAvg as an extra reference series) on the same shards,
/// each over a fresh transport.
///
/// # Errors
///
/// Propagates training errors.
pub fn fig4_run(
    model: ModelKind,
    dataset: DatasetKind,
    scale: Scale,
    seed: u64,
) -> Result<Vec<TrainingHistory>> {
    let w = vision_workload(
        model,
        dataset,
        scale.platforms,
        scale.train_n,
        scale.test_n,
        &Partition::Iid,
        seed,
    )?;
    let mut histories = Vec::new();

    // Proposed split protocol.
    {
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        let mut trainer = SplitTrainer::new(
            &w.arch,
            split_config(scale, scale.rounds),
            w.shards.clone(),
            w.test.clone(),
            &transport,
        )?;
        histories.push(trainer.run()?);
    }
    // Large-scale synchronous SGD (the paper's comparator).
    {
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        histories.push(train_sync_sgd(
            &w.arch,
            &baseline_config(scale, scale.rounds),
            SyncSgdOptions::default(),
            w.shards.clone(),
            &w.test,
            &transport,
        )?);
    }
    // FedAvg reference series.
    {
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        // FedAvg rounds are heavier (local steps); match the *step* count.
        let options = FedAvgOptions { local_steps: 5 };
        let rounds = (scale.rounds / options.local_steps).max(1);
        let mut cfg = baseline_config(scale, rounds);
        cfg.eval_every = (scale.eval_every / options.local_steps).max(1);
        histories.push(train_fedavg(
            &w.arch,
            &cfg,
            options,
            w.shards.clone(),
            &w.test,
            &transport,
        )?);
    }
    Ok(histories)
}

/// Summarises Fig. 4 histories as budget points ("X transmitted @ Y%
/// accuracy"), quoting the same style of numbers the paper's text does.
pub fn fig4_table(model: ModelKind, dataset: DatasetKind, histories: &[TrainingHistory]) -> TextTable {
    let mut table = TextTable::new(
        format!(
            "Fig. 4 — {} on {}: communication vs accuracy",
            model.name(),
            dataset.name()
        ),
        &[
            "method",
            "total transmitted",
            "final accuracy",
            "bytes@50% acc",
            "bytes@80% of best",
        ],
    );
    let best: f32 = histories.iter().map(|h| h.final_accuracy).fold(0.0, f32::max);
    for h in histories {
        let at50 = h.bytes_to_accuracy(0.5).map_or("—".into(), human_bytes);
        let at80 = h.bytes_to_accuracy(0.8 * best).map_or("—".into(), human_bytes);
        table.row(vec![
            h.method.clone(),
            human_bytes(h.stats.total_bytes),
            format!("{:.1}%", h.final_accuracy * 100.0),
            at50,
            at80,
        ]);
    }
    table
}

// ===================================================================
// Table 1: analytic per-round costs at full (paper-size) scale
// ===================================================================

/// Builds Table 1: exact per-round wire bytes for the full-size VGG-16 and
/// ResNet-18, per protocol, at the given per-platform minibatch.
pub fn table1(platforms: usize, batch_per_platform: usize) -> TextTable {
    let mut table = TextTable::new(
        format!("Table 1 — analytic per-round bytes, {platforms} platforms, minibatch {batch_per_platform}/platform (full-size models)"),
        &[
            "model",
            "classes",
            "params",
            "cut act/sample",
            "split/round",
            "fedavg/round",
            "sync-sgd/round",
            "sgd/split ratio",
            "crossover batch",
        ],
    );
    for model in [ModelKind::Vgg, ModelKind::ResNet] {
        for dataset in [DatasetKind::C10, DatasetKind::C100] {
            let classes = dataset.classes();
            let arch = model.full_arch(classes);
            let params = arch.param_count();
            let (act_dims, act_numel) = match &arch {
                Architecture::Vgg(c) => (
                    vec![c.stages[0][0], c.input_hw, c.input_hw],
                    c.cut_activation_numel(),
                ),
                Architecture::ResNet(c) => (
                    vec![c.base_width, c.input_hw, c.input_hw],
                    c.cut_activation_numel(),
                ),
                Architecture::Mlp(c) => (vec![c.hidden[0]], c.hidden[0]),
            };
            let batches = vec![batch_per_platform; platforms];
            let split = comm::split_round_bytes(&batches, &act_dims, classes);
            let fedavg = comm::fedavg_round_bytes(platforms, params);
            let sgd = comm::sync_sgd_round_bytes(platforms, params);
            // The per-platform minibatch at which the split protocol's
            // per-round bytes (≈ 2 × s × (act + classes) floats) equal the
            // model-exchange protocols' (2 × params floats): beyond it,
            // model exchange is cheaper per round.
            let crossover = params / (act_numel + classes);
            table.row(vec![
                model.name().into(),
                classes.to_string(),
                params.to_string(),
                format!("{} f32 ({})", act_numel, human_bytes(4 * act_numel as u64)),
                human_bytes(split),
                human_bytes(fedavg),
                human_bytes(sgd),
                format!("{:.1}x", sgd as f64 / split as f64),
                format!("s = {crossover}"),
            ]);
        }
    }
    table
}

// ===================================================================
// Table 2: data-imbalance ablation (proportional vs fixed minibatch)
// ===================================================================

/// Runs the imbalance ablation: Dirichlet shards (which skews both shard
/// *sizes* and label mixes — the paper's "amount of data in each platform
/// is not equal" bias), split training with equal vs proportional
/// minibatches. Returns `(policy name, history)` pairs.
///
/// # Errors
///
/// Propagates training errors.
pub fn table2_run(scale: Scale, alpha: f32, seed: u64) -> Result<Vec<(String, TrainingHistory)>> {
    let (arch, shards, test) = tabular_workload(
        scale.platforms,
        scale.train_n,
        scale.test_n,
        &Partition::Dirichlet { alpha },
        seed,
    )?;
    let per_platform = (scale.global_batch / scale.platforms).max(1);
    let policies = [
        ("fixed".to_string(), MinibatchPolicy::Fixed(per_platform)),
        (
            "proportional".to_string(),
            MinibatchPolicy::Proportional {
                global: scale.global_batch,
            },
        ),
    ];
    let mut out = Vec::new();
    for (name, policy) in policies {
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        let mut cfg = split_config(scale, scale.rounds);
        cfg.minibatch = policy;
        let mut trainer = SplitTrainer::new(&arch, cfg, shards.clone(), test.clone(), &transport)?;
        out.push((name, trainer.run()?));
    }
    Ok(out)
}

/// Formats the Table 2 results.
pub fn table2_table(alpha: f32, results: &[(String, TrainingHistory)]) -> TextTable {
    let mut table = TextTable::new(
        format!("Table 2 — imbalance mitigation (Dirichlet alpha = {alpha})"),
        &["minibatch policy", "final accuracy", "total transmitted"],
    );
    for (name, h) in results {
        table.row(vec![
            name.clone(),
            format!("{:.1}%", h.final_accuracy * 100.0),
            human_bytes(h.stats.total_bytes),
        ]);
    }
    table
}

// ===================================================================
// Fig. 5: split-point sweep — bytes vs privacy leakage
// ===================================================================

/// One row of the split-point sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitSweepPoint {
    /// Layer index of the cut.
    pub split_index: usize,
    /// Per-sample activation floats at the cut.
    pub act_numel: usize,
    /// Exact split-protocol bytes per round at this cut.
    pub round_bytes: u64,
    /// Distance correlation input↔activations after training.
    pub dcor: f64,
    /// Linear-attacker R² after training.
    pub attacker_r2: f32,
    /// Final accuracy at this cut.
    pub accuracy: f32,
}

/// Runs the split-point sweep on the lite VGG: trains briefly at each cut,
/// then probes platform 0's `L1` for leakage.
///
/// # Errors
///
/// Propagates training and probe errors.
pub fn fig5_run(scale: Scale, cuts: &[usize], seed: u64) -> Result<Vec<SplitSweepPoint>> {
    let w = vision_workload(
        ModelKind::Vgg,
        DatasetKind::C10,
        scale.platforms,
        scale.train_n,
        scale.test_n,
        &Partition::Iid,
        seed,
    )?;
    let classes = w.arch.num_classes();
    let mut out = Vec::new();
    for &cut in cuts {
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        let mut cfg = split_config(scale, scale.rounds);
        cfg.split = SplitPoint::At(cut);
        let mut trainer = SplitTrainer::new(&w.arch, cfg, w.shards.clone(), w.test.clone(), &transport)?;
        let history = trainer.run()?;

        // Probe leakage on a fresh batch of inputs through platform 0's L1.
        let probe_n = w.test.len().min(96);
        let idx: Vec<usize> = (0..probe_n).collect();
        let (inputs, _) = w.test.batch(&idx).map_err(SplitError::from)?;
        let platform = &mut trainer.platforms_mut()[0];
        let acts = platform.infer_l1(&inputs)?;
        let act_dims: Vec<usize> = acts.dims()[1..].to_vec();
        let act_numel: usize = act_dims.iter().product();
        let report = assess_l1_leakage(platform.model_mut(), &inputs, 1e-2)?;

        let sizes: Vec<usize> = w.shards.iter().map(InMemoryDataset::len).collect();
        let batches = MinibatchPolicy::Proportional {
            global: scale.global_batch,
        }
        .sizes(&sizes);
        let round_bytes = comm::split_round_bytes(&batches, &act_dims, classes);
        out.push(SplitSweepPoint {
            split_index: cut,
            act_numel,
            round_bytes,
            dcor: report.dcor,
            attacker_r2: report.reconstruction.r_squared,
            accuracy: history.final_accuracy,
        });
    }
    Ok(out)
}

/// Formats the Fig. 5 sweep.
pub fn fig5_table(points: &[SplitSweepPoint]) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 5 — split-point sweep: communication vs privacy leakage",
        &[
            "cut layer",
            "act floats/sample",
            "bytes/round",
            "dcor",
            "attacker R^2",
            "accuracy",
        ],
    );
    for p in points {
        table.row(vec![
            p.split_index.to_string(),
            p.act_numel.to_string(),
            human_bytes(p.round_bytes),
            format!("{:.3}", p.dcor),
            format!("{:.3}", p.attacker_r2),
            format!("{:.1}%", p.accuracy * 100.0),
        ]);
    }
    table
}

// ===================================================================
// Fig. 6: scalability with the number of platforms
// ===================================================================

/// One row of the scalability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Number of platforms.
    pub platforms: usize,
    /// Final accuracy.
    pub accuracy: f32,
    /// Total bytes.
    pub total_bytes: u64,
    /// Simulated makespan in seconds.
    pub makespan_s: f64,
}

/// Runs the scalability sweep: the same global dataset and global batch,
/// sharded over 1..=N platforms.
///
/// # Errors
///
/// Propagates training errors.
pub fn fig6_run(scale: Scale, platform_counts: &[usize], seed: u64) -> Result<Vec<ScalePoint>> {
    let mut out = Vec::new();
    for &k in platform_counts {
        let (arch, shards, test) = tabular_workload(k, scale.train_n, scale.test_n, &Partition::Iid, seed)?;
        let transport = MemoryTransport::new(default_topology(k));
        let mut cfg = split_config(scale, scale.rounds);
        cfg.minibatch = MinibatchPolicy::Proportional {
            global: scale.global_batch,
        };
        let mut trainer = SplitTrainer::new(&arch, cfg, shards, test, &transport)?;
        let history = trainer.run()?;
        out.push(ScalePoint {
            platforms: k,
            accuracy: history.final_accuracy,
            total_bytes: history.stats.total_bytes,
            makespan_s: history.stats.makespan_s,
        });
    }
    Ok(out)
}

/// Formats the Fig. 6 sweep.
pub fn fig6_table(points: &[ScalePoint]) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 6 — scalability with platform count (fixed global batch)",
        &[
            "platforms",
            "final accuracy",
            "total transmitted",
            "simulated time",
        ],
    );
    for p in points {
        table.row(vec![
            p.platforms.to_string(),
            format!("{:.1}%", p.accuracy * 100.0),
            human_bytes(p.total_bytes),
            format!("{:.1} s", p.makespan_s),
        ]);
    }
    table
}

// ===================================================================
// Table 3: the full baseline landscape under non-IID data
// ===================================================================

/// Runs every method on the same non-IID shards.
///
/// # Errors
///
/// Propagates training errors.
pub fn table3_run(scale: Scale, alpha: f32, seed: u64) -> Result<Vec<TrainingHistory>> {
    let (arch, shards, test) = tabular_workload(
        scale.platforms,
        scale.train_n,
        scale.test_n,
        &Partition::Dirichlet { alpha },
        seed,
    )?;
    let mut out = Vec::new();
    {
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        let mut trainer = SplitTrainer::new(
            &arch,
            split_config(scale, scale.rounds),
            shards.clone(),
            test.clone(),
            &transport,
        )?;
        out.push(trainer.run()?);
    }
    {
        // The L1-synchronisation extension: periodically average the
        // platforms' L1 replicas (cf. the authors' cyclic-sharing
        // reference [3]) — closes the non-IID divergence gap of the plain
        // protocol at a small L1-sized bandwidth cost.
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        let mut cfg = split_config(scale, scale.rounds);
        cfg.l1_sync = medsplit_core::L1Sync::PeriodicAverage { every: 10 };
        let mut trainer = SplitTrainer::new(&arch, cfg, shards.clone(), test.clone(), &transport)?;
        let mut h = trainer.run()?;
        h.method = "split+l1avg".into();
        out.push(h);
    }
    {
        // The U-shaped variant (paper ref. [1]): classifier head stays on
        // the platform, so the server never sees logits either.
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        let mut trainer = medsplit_core::UShapeTrainer::new(
            &arch,
            split_config(scale, scale.rounds),
            1,
            shards.clone(),
            test.clone(),
            &transport,
        )?;
        out.push(trainer.run()?);
    }
    {
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        out.push(train_sync_sgd(
            &arch,
            &baseline_config(scale, scale.rounds),
            SyncSgdOptions::default(),
            shards.clone(),
            &test,
            &transport,
        )?);
    }
    {
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        let options = FedAvgOptions { local_steps: 5 };
        let rounds = (scale.rounds / options.local_steps).max(1);
        let mut cfg = baseline_config(scale, rounds);
        cfg.eval_every = (scale.eval_every / options.local_steps).max(1);
        out.push(train_fedavg(
            &arch,
            &cfg,
            options,
            shards.clone(),
            &test,
            &transport,
        )?);
    }
    {
        let (history, _) = train_local_only(&arch, &baseline_config(scale, scale.rounds), &shards, &test)?;
        out.push(history);
    }
    {
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        out.push(train_centralized(
            &arch,
            &baseline_config(scale, scale.rounds),
            &shards,
            &test,
            &transport,
        )?);
    }
    Ok(out)
}

/// Formats Table 3.
pub fn table3_table(alpha: f32, histories: &[TrainingHistory]) -> TextTable {
    let mut table = TextTable::new(
        format!("Table 3 — baseline landscape under non-IID shards (Dirichlet alpha = {alpha})"),
        &[
            "method",
            "final accuracy",
            "total transmitted",
            "raw data sent",
            "simulated time",
        ],
    );
    for h in histories {
        table.row(vec![
            h.method.clone(),
            format!("{:.1}%", h.final_accuracy * 100.0),
            human_bytes(h.stats.total_bytes),
            human_bytes(h.stats.bytes_of(medsplit_simnet::MessageKind::RawData)),
            format!("{:.1} s", h.stats.makespan_s),
        ]);
    }
    table
}

// ===================================================================
// Table 4: wire-codec ablation (f32 vs f16 payloads)
// ===================================================================

/// Runs the codec ablation: the split protocol with exact (f32) and
/// half-precision (f16) payloads on the same VGG workload.
///
/// # Errors
///
/// Propagates training errors.
pub fn table4_run(scale: Scale, seed: u64) -> Result<Vec<TrainingHistory>> {
    let w = vision_workload(
        ModelKind::Vgg,
        DatasetKind::C10,
        scale.platforms,
        scale.train_n,
        scale.test_n,
        &Partition::Iid,
        seed,
    )?;
    let mut out = Vec::new();
    for (name, codec) in [
        ("split_f32", medsplit_core::WireCodec::F32),
        ("split_f16", medsplit_core::WireCodec::F16),
    ] {
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        let mut cfg = split_config(scale, scale.rounds);
        cfg.codec = codec;
        let mut trainer = SplitTrainer::new(&w.arch, cfg, w.shards.clone(), w.test.clone(), &transport)?;
        let mut h = trainer.run()?;
        h.method = name.into();
        out.push(h);
    }
    Ok(out)
}

/// Formats Table 4.
pub fn table4_table(histories: &[TrainingHistory]) -> TextTable {
    let mut table = TextTable::new(
        "Table 4 — wire-codec ablation: exact f32 vs half-precision f16 payloads",
        &["codec", "total transmitted", "final accuracy", "simulated time"],
    );
    for h in histories {
        table.row(vec![
            h.method.clone(),
            human_bytes(h.stats.total_bytes),
            format!("{:.1}%", h.final_accuracy * 100.0),
            format!("{:.1} s", h.stats.makespan_s),
        ]);
    }
    table
}

// ===================================================================
// Fig. 7: activation-noise privacy defence sweep
// ===================================================================

/// One row of the noise sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisePoint {
    /// Noise standard deviation added to transmitted activations.
    pub sigma: f32,
    /// Final accuracy.
    pub accuracy: f32,
    /// Distance correlation between raw inputs and (noised) activations.
    pub dcor: f64,
    /// Linear-attacker R² against the noised activations.
    pub attacker_r2: f32,
}

/// Runs the noise-privacy sweep: trains the split VGG at each noise level
/// and probes the leakage of the representation the server actually sees.
///
/// # Errors
///
/// Propagates training and probe errors.
pub fn fig7_run(scale: Scale, sigmas: &[f32], seed: u64) -> Result<Vec<NoisePoint>> {
    use medsplit_privacy::{distance_correlation, flatten_samples, reconstruction_attack};
    let w = vision_workload(
        ModelKind::Vgg,
        DatasetKind::C10,
        scale.platforms,
        scale.train_n,
        scale.test_n,
        &Partition::Iid,
        seed,
    )?;
    let mut out = Vec::new();
    for &sigma in sigmas {
        let transport = MemoryTransport::new(default_topology(scale.platforms));
        let mut cfg = split_config(scale, scale.rounds);
        cfg.activation_noise = sigma;
        let mut trainer = SplitTrainer::new(&w.arch, cfg, w.shards.clone(), w.test.clone(), &transport)?;
        let history = trainer.run()?;

        // Probe what the server sees: the platform's *noised* outbound
        // representation.
        let probe_n = w.test.len().min(96);
        let idx: Vec<usize> = (0..probe_n).collect();
        let (inputs, _) = w.test.batch(&idx).map_err(SplitError::from)?;
        let platform = &mut trainer.platforms_mut()[0];
        let acts = platform.infer_l1(&inputs)?;
        let xs = flatten_samples(&inputs).map_err(SplitError::from)?;
        let zs = flatten_samples(&acts).map_err(SplitError::from)?;
        let dcor = distance_correlation(&xs, &zs).map_err(SplitError::from)?;
        let half = probe_n / 2;
        let attack = reconstruction_attack(
            &zs.slice0(0, half).map_err(SplitError::from)?,
            &xs.slice0(0, half).map_err(SplitError::from)?,
            &zs.slice0(half, probe_n - half).map_err(SplitError::from)?,
            &xs.slice0(half, probe_n - half).map_err(SplitError::from)?,
            1e-2,
        )
        .map_err(SplitError::from)?;
        out.push(NoisePoint {
            sigma,
            accuracy: history.final_accuracy,
            dcor,
            attacker_r2: attack.r_squared,
        });
    }
    Ok(out)
}

/// Formats the Fig. 7 sweep.
pub fn fig7_table(points: &[NoisePoint]) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 7 — activation-noise defence: accuracy vs leakage",
        &["noise sigma", "final accuracy", "dcor", "attacker R^2"],
    );
    for p in points {
        table.row(vec![
            format!("{:.2}", p.sigma),
            format!("{:.1}%", p.accuracy * 100.0),
            format!("{:.3}", p.dcor),
            format!("{:.3}", p.attacker_r2),
        ]);
    }
    table
}

// ===================================================================
// Fig. 8: analytic round time vs WAN bandwidth
// ===================================================================

/// One row of the bandwidth sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthPoint {
    /// Link bandwidth in Mbit/s (symmetric up/down).
    pub mbps: f64,
    /// Seconds per split round (communication only, parallel uplinks).
    pub split_round_s: f64,
    /// Seconds per sync-SGD step.
    pub sync_sgd_round_s: f64,
    /// Seconds per FedAvg round.
    pub fedavg_round_s: f64,
}

/// Analytic per-round wall-clock across WAN bandwidths, for the full-size
/// model: each protocol's per-platform up/down payloads over a link of the
/// given bandwidth (platforms transfer in parallel; latency per message).
pub fn fig8_sweep(
    model: ModelKind,
    classes: usize,
    batch_per_platform: usize,
    mbps_list: &[f64],
) -> Vec<BandwidthPoint> {
    let arch = model.full_arch(classes);
    let params = arch.param_count();
    let (act_dims, _) = match &arch {
        Architecture::Vgg(c) => (
            vec![c.stages[0][0], c.input_hw, c.input_hw],
            c.cut_activation_numel(),
        ),
        Architecture::ResNet(c) => (
            vec![c.base_width, c.input_hw, c.input_hw],
            c.cut_activation_numel(),
        ),
        Architecture::Mlp(c) => (vec![c.hidden[0]], c.hidden[0]),
    };
    // Per-platform payloads (bytes) per round and direction.
    let split_per_platform = comm::split_round_bytes(&[batch_per_platform], &act_dims, classes);
    let model_bytes = comm::flat_message_bytes(params);
    mbps_list
        .iter()
        .map(|&mbps| {
            let link = LinkSpec {
                bandwidth_bps: mbps * 1e6,
                latency_s: 0.030,
            };
            // Split: 4 messages, roughly half the bytes each way; platforms
            // in parallel ⇒ slowest platform bounds the round. Batches are
            // equal here, so one platform's cost is the round cost.
            let split_round_s =
                4.0 * link.latency_s + link.transfer_time(split_per_platform as usize) - link.latency_s;
            // Sync-SGD / FedAvg: model down + model/grad up, sequential per
            // round from the platform's perspective.
            let exchange = 2.0 * link.transfer_time(model_bytes as usize);
            BandwidthPoint {
                mbps,
                split_round_s,
                sync_sgd_round_s: exchange,
                fedavg_round_s: exchange,
            }
        })
        .collect()
}

/// Formats the Fig. 8 sweep.
pub fn fig8_table(model: ModelKind, points: &[BandwidthPoint]) -> TextTable {
    let mut table = TextTable::new(
        format!(
            "Fig. 8 — per-round wall-clock vs WAN bandwidth (full-size {}, comm only)",
            model.name()
        ),
        &[
            "bandwidth",
            "split round",
            "sync-sgd step",
            "fedavg round",
            "speedup",
        ],
    );
    for p in points {
        table.row(vec![
            format!("{} Mbit/s", p.mbps),
            format!("{:.2} s", p.split_round_s),
            format!("{:.2} s", p.sync_sgd_round_s),
            format!("{:.2} s", p.fedavg_round_s),
            format!("{:.1}x", p.sync_sgd_round_s / p.split_round_s),
        ]);
    }
    table
}

/// The valid interior cut points of the lite VGG, used by the Fig. 5
/// binary and tests (layer indices into the built `Sequential`).
pub fn vgg_lite_cuts() -> Vec<usize> {
    // conv,bn,relu,pool | conv,bn,relu,pool | conv,bn,relu,pool | flatten,…
    // Cut after each ReLU and after each pooling stage.
    vec![3, 4, 7, 8, 11]
}

/// Checks that the cut indices are interior layers of the model.
pub fn validate_cuts(arch: &Architecture, cuts: &[usize]) -> Result<()> {
    let mut model = arch.build(0);
    let n = model.len();
    let _ = model.param_count();
    for &c in cuts {
        if c == 0 || c >= n {
            return Err(SplitError::Config(format!(
                "cut {c} out of range (model has {n} layers)"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_rows_and_paper_shape() {
        let t = table1(4, 128);
        assert_eq!(t.len(), 4);
        let csv = t.to_csv();
        // Full-size sync-SGD must be costlier than split per round for
        // every model/dataset pair: every ratio cell ends with 'x' and is
        // > 1 (the ratio is the second-to-last column, before the
        // crossover batch).
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let ratio: f64 = cells[cells.len() - 2].trim_end_matches('x').parse().unwrap();
            assert!(ratio > 1.0, "ratio not > 1 in: {line}");
            assert!(cells.last().unwrap().starts_with("s = "));
        }
    }

    #[test]
    fn fig4_quick_runs_and_split_wins_on_bytes() {
        let scale = Scale {
            rounds: 6,
            eval_every: 3,
            train_n: 80,
            test_n: 20,
            platforms: 2,
            global_batch: 8,
        };
        let histories = fig4_run(ModelKind::Vgg, DatasetKind::C10, scale, 0).unwrap();
        assert_eq!(histories.len(), 3);
        let split = &histories[0];
        let sgd = &histories[1];
        assert_eq!(split.method, "split");
        assert_eq!(sgd.method, "sync_sgd");
        // Same number of update steps, far fewer bytes for split.
        assert!(
            sgd.stats.total_bytes > 2 * split.stats.total_bytes,
            "sync-SGD {} vs split {}",
            sgd.stats.total_bytes,
            split.stats.total_bytes
        );
        let table = fig4_table(ModelKind::Vgg, DatasetKind::C10, &histories);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn table2_quick_runs() {
        let scale = Scale {
            rounds: 10,
            eval_every: 0,
            train_n: 120,
            test_n: 30,
            platforms: 3,
            global_batch: 12,
        };
        let results = table2_run(scale, 2.0, 0).unwrap();
        assert_eq!(results.len(), 2);
        let t = table2_table(2.0, &results);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fig5_quick_monotone_activation_sizes() {
        let scale = Scale {
            rounds: 4,
            eval_every: 0,
            train_n: 60,
            test_n: 30,
            platforms: 2,
            global_batch: 8,
        };
        let points = fig5_run(scale, &[3, 4, 8], 0).unwrap();
        assert_eq!(points.len(), 3);
        // Pooling shrinks activations: cut 4 (after pool) < cut 3.
        assert!(points[1].act_numel < points[0].act_numel);
        assert!(points[2].act_numel < points[1].act_numel);
        assert!(points[1].round_bytes < points[0].round_bytes);
        let t = fig5_table(&points);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn fig6_quick_runs() {
        let scale = Scale {
            rounds: 8,
            eval_every: 0,
            train_n: 120,
            test_n: 30,
            platforms: 0,
            global_batch: 16,
        };
        let points = fig6_run(scale, &[1, 2, 4], 0).unwrap();
        assert_eq!(points.len(), 3);
        // More platforms → more per-round messages → more bytes.
        assert!(points[2].total_bytes > points[0].total_bytes);
        assert!(!fig6_table(&points).is_empty());
    }

    #[test]
    fn table3_quick_runs_all_methods() {
        let scale = Scale {
            rounds: 10,
            eval_every: 0,
            train_n: 120,
            test_n: 30,
            platforms: 3,
            global_batch: 12,
        };
        let histories = table3_run(scale, 0.5, 0).unwrap();
        let methods: Vec<&str> = histories.iter().map(|h| h.method.as_str()).collect();
        assert_eq!(
            methods,
            vec![
                "split",
                "split+l1avg",
                "split_ushape",
                "sync_sgd",
                "fedavg",
                "local_only",
                "centralized"
            ]
        );
        // Only centralized ships raw data.
        for h in &histories {
            let raw = h.stats.bytes_of(medsplit_simnet::MessageKind::RawData);
            if h.method == "centralized" {
                assert!(raw > 0);
            } else {
                assert_eq!(raw, 0, "{} leaked raw data", h.method);
            }
        }
        assert_eq!(table3_table(0.5, &histories).len(), 7);
    }

    #[test]
    fn table4_quick_shows_byte_halving() {
        let scale = Scale {
            rounds: 6,
            eval_every: 0,
            train_n: 80,
            test_n: 20,
            platforms: 2,
            global_batch: 8,
        };
        let histories = table4_run(scale, 0).unwrap();
        assert_eq!(histories.len(), 2);
        let f32b = histories[0].stats.total_bytes;
        let f16b = histories[1].stats.total_bytes;
        assert!(f16b < f32b * 3 / 5, "f16 {f16b} vs f32 {f32b}");
        assert_eq!(table4_table(&histories).len(), 2);
    }

    #[test]
    fn fig7_quick_noise_reduces_leakage() {
        let scale = Scale {
            rounds: 4,
            eval_every: 0,
            train_n: 60,
            test_n: 40,
            platforms: 2,
            global_batch: 8,
        };
        let points = fig7_run(scale, &[0.0, 4.0], 0).unwrap();
        assert_eq!(points.len(), 2);
        assert!(
            points[1].dcor < points[0].dcor,
            "noise must reduce dcor: {points:?}"
        );
        assert!(points[1].attacker_r2 <= points[0].attacker_r2 + 0.02);
        assert_eq!(fig7_table(&points).len(), 2);
    }

    #[test]
    fn fig8_analytic_shapes() {
        let points = fig8_sweep(ModelKind::Vgg, 10, 32, &[10.0, 100.0, 1000.0]);
        assert_eq!(points.len(), 3);
        for p in &points {
            // Full-size VGG: split must be faster per round at every bandwidth.
            assert!(p.split_round_s < p.sync_sgd_round_s, "{p:?}");
        }
        // More bandwidth → faster rounds.
        assert!(points[2].split_round_s < points[0].split_round_s);
        assert!(points[2].sync_sgd_round_s < points[0].sync_sgd_round_s);
        assert_eq!(fig8_table(ModelKind::Vgg, &points).len(), 3);
    }

    #[test]
    fn cut_validation() {
        let arch = ModelKind::Vgg.lite_arch(10);
        assert!(validate_cuts(&arch, &vgg_lite_cuts()).is_ok());
        assert!(validate_cuts(&arch, &[0]).is_err());
        assert!(validate_cuts(&arch, &[999]).is_err());
    }

    #[test]
    fn scales_are_distinct() {
        assert!(Scale::full().rounds > Scale::quick().rounds);
        assert!(Scale::full().train_n > Scale::quick().train_n);
    }
}
