//! Fleet goodput hockey-stick: sweeps offered load against replica count
//! and reports p50/p99 end-to-end latency and goodput per point — the
//! capacity curve bends later as replicas are added, while logits stay
//! bit-identical across fleet sizes (asserted whenever a point completes
//! its full offered load).
//!
//! Usage:
//!   fleet_bench [--quick | --smoke]
//!
//! Outputs:
//!   - `fleet_goodput.csv` under the results dir (`MEDSPLIT_RESULTS_DIR`,
//!     default `bench_results/`),
//!   - `BENCH_fleet.json` (results dir with `--smoke`, else the current
//!     directory), wrapped in the shared schema-v2 envelope (host
//!     fingerprint, lab run id) and recording the dispatched kernel ISA.

use std::fmt::Write as _;

use crate::report::{arg_present, bench_json, bench_json_path, write_result, TextTable};
use medsplit_fleet::{run_fleet, FleetConfig, FleetOutcome};
use medsplit_simnet::FaultPlan;
use medsplit_tensor::{pool, simd};

const SEED: u64 = 42;
const TENANTS: usize = 3;

/// What a `fleet_bench` invocation measured, for the lab runner.
#[derive(Debug, Clone, Copy)]
pub struct FleetBenchOutcome {
    /// Sweep points measured.
    pub rows: usize,
    /// Logits digest of the first point that completed its full offered
    /// stream — bit-identical across replica counts by construction.
    pub low_load_digest: Option<u64>,
}

struct Row {
    threads: usize,
    replicas: usize,
    offered_rps: f64,
    completed: usize,
    throttled: usize,
    rejected: usize,
    timed_out: usize,
    p50_ms: Option<f64>,
    p99_ms: Option<f64>,
    goodput_rps: f64,
    digest: u64,
}

fn run_point(replicas: usize, offered_rps: f64, per_tenant: usize) -> FleetOutcome {
    let cfg = FleetConfig {
        replicas,
        tenants: TENANTS,
        sessions_per_tenant: 4,
        tenant_quota: 64,
        weight_versions: 2,
        serve: medsplit_serve::ServeConfig {
            offered_rps,
            ..medsplit_serve::ServeConfig::default()
        },
        ..FleetConfig::default()
    };
    run_fleet(&cfg, per_tenant, SEED, FaultPlan::new(SEED), &[]).expect("fleet run")
}

fn to_json(rows: &[Row], isa: &str) -> String {
    let mut results = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let ms = |v: Option<f64>| v.map_or("null".to_string(), |s| format!("{:.4}", s * 1e3));
        let _ = writeln!(
            results,
            "    {{\"threads\": {}, \"replicas\": {}, \"offered_rps\": {:.0}, \
             \"completed\": {}, \"throttled\": {}, \"rejected\": {}, \"timed_out\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}, \"goodput_rps\": {:.2}, \"digest\": \"{:#018x}\"}}{}",
            r.threads,
            r.replicas,
            r.offered_rps,
            r.completed,
            r.throttled,
            r.rejected,
            r.timed_out,
            ms(r.p50_ms),
            ms(r.p99_ms),
            r.goodput_rps,
            r.digest,
            comma
        );
    }
    results.push_str("  ]");
    bench_json(
        "fleet_bench",
        &[
            ("isa", format!("\"{isa}\"")),
            ("tenants", TENANTS.to_string()),
            ("results", results),
        ],
    )
}

/// Runs the fleet goodput sweep and returns its digest invariants.
pub fn run(args: &[String]) -> FleetBenchOutcome {
    let smoke = arg_present(args, "--smoke");
    let quick = smoke || arg_present(args, "--quick");
    let per_tenant = if quick { 60 } else { 240 };
    let replica_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let loads: &[f64] = if quick {
        &[100.0, 400.0]
    } else {
        &[50.0, 100.0, 200.0, 400.0, 800.0]
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_counts = if quick { vec![1] } else { vec![1, host_threads] };
    thread_counts.dedup();
    let isa = simd::active_isa().name();

    let mut table = TextTable::new(
        format!("Fleet goodput vs replicas ({TENANTS} tenants, isa {isa})"),
        &[
            "isa",
            "threads",
            "replicas",
            "offered_rps",
            "completed",
            "throttled",
            "rejected",
            "timed_out",
            "p50_ms",
            "p99_ms",
            "goodput_rps",
            "digest",
        ],
    );
    let mut rows = Vec::new();
    let mut first_full_digest: Option<u64> = None;
    for &threads in &thread_counts {
        pool::set_num_threads(threads);
        for &load in loads {
            // Digest invariance across replica counts, checked per load
            // among points that completed their whole offered stream
            // (overloaded points complete different subsets, so their
            // digests legitimately differ).
            let mut full_digest: Option<(usize, u64)> = None;
            for &replicas in replica_counts {
                eprintln!(
                    "[fleet_bench] threads {threads}, {replicas} replica(s), \
                     offered {load} req/s per tenant..."
                );
                let out = run_point(replicas, load, per_tenant);
                let r = &out.report;
                if r.completed == r.offered {
                    match full_digest {
                        None => full_digest = Some((replicas, out.logits_digest)),
                        Some((first, digest)) => assert_eq!(
                            digest, out.logits_digest,
                            "logits diverged between {first} and {replicas} replicas at \
                             {load} req/s"
                        ),
                    }
                    first_full_digest.get_or_insert(out.logits_digest);
                }
                let lat = r.latency.as_ref();
                let ms = |s: Option<f64>| s.map_or_else(|| "-".into(), |v| format!("{:.2}", v * 1e3));
                table.row(vec![
                    isa.to_string(),
                    threads.to_string(),
                    replicas.to_string(),
                    format!("{load:.0}"),
                    r.completed.to_string(),
                    r.throttled.to_string(),
                    r.rejected.to_string(),
                    r.timed_out.to_string(),
                    ms(lat.map(|l| l.p50_s)),
                    ms(lat.map(|l| l.p99_s)),
                    format!("{:.1}", r.goodput_rps()),
                    format!("{:#018x}", out.logits_digest),
                ]);
                rows.push(Row {
                    threads,
                    replicas,
                    offered_rps: load,
                    completed: r.completed,
                    throttled: r.throttled,
                    rejected: r.rejected,
                    timed_out: r.timed_out,
                    p50_ms: lat.map(|l| l.p50_s),
                    p99_ms: lat.map(|l| l.p99_s),
                    goodput_rps: r.goodput_rps(),
                    digest: out.logits_digest,
                });
            }
            if smoke && load <= 100.0 {
                assert!(
                    full_digest.is_some(),
                    "smoke: the low-load point must complete its full offered stream"
                );
            }
        }
    }
    pool::set_num_threads(1);

    println!("{table}");
    let csv_path = write_result("fleet_goodput.csv", &table.to_csv()).expect("write results");
    let json = to_json(&rows, isa);
    let json_path = bench_json_path("BENCH_fleet.json", smoke);
    std::fs::write(&json_path, &json).expect("write BENCH_fleet.json");
    eprintln!(
        "[fleet_bench] wrote {} and {}",
        csv_path.display(),
        json_path.display()
    );
    FleetBenchOutcome {
        rows: rows.len(),
        low_load_digest: first_full_digest,
    }
}
