//! Fig. 7: the activation-noise privacy defence — accuracy vs leakage as
//! Gaussian noise is added to every transmitted activation.
//!
//! Usage:
//!   fig7 [--quick]

use crate::experiments::{fig7_run, fig7_table, Scale};
use crate::report::{arg_present, write_result};

/// Runs the fig7 activation-noise sweep.
pub fn run(args: &[String]) {
    let mut scale = if arg_present(args, "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    };
    scale.rounds = scale.rounds.min(150);
    let sigmas = [0.0f32, 0.5, 1.0, 2.0, 4.0];
    eprintln!("[fig7] sweeping activation noise {sigmas:?} ({scale:?})...");
    let points = fig7_run(scale, &sigmas, 42).expect("fig7 failed");
    let table = fig7_table(&points);
    println!("{table}");
    let path = write_result("fig7.csv", &table.to_csv()).expect("write results");
    eprintln!("[fig7] wrote {}", path.display());
}
