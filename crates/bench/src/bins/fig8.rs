//! Fig. 8: analytic per-round wall-clock vs WAN bandwidth for the
//! full-size models — the geo-distribution story in time units.
//!
//! Usage:
//!   fig8 [--model vgg|resnet] [--batch S]

use crate::experiments::{fig8_sweep, fig8_table};
use crate::report::{arg_value, write_result};
use crate::workload::ModelKind;

/// Runs the fig8 WAN-bandwidth sweep.
pub fn run(args: &[String]) {
    let model = arg_value(args, "--model")
        .map(|s| ModelKind::parse(&s).unwrap_or_else(|| panic!("unknown model `{s}`")))
        .unwrap_or(ModelKind::Vgg);
    let batch: usize = arg_value(args, "--batch").map_or(32, |v| v.parse().expect("--batch"));
    let mbps = [10.0, 50.0, 100.0, 500.0, 1000.0, 10_000.0];
    let points = fig8_sweep(model, 10, batch, &mbps);
    let table = fig8_table(model, &points);
    println!("{table}");
    let path = write_result("fig8.csv", &table.to_csv()).expect("write results");
    eprintln!("[fig8] wrote {}", path.display());
}
