//! Table 3: the full baseline landscape — split learning vs sync-SGD vs
//! FedAvg vs local-only vs centralised — on the same non-IID shards,
//! reporting accuracy, bytes and raw-data exposure.
//!
//! Usage:
//!   table3 [--alpha A] [--quick]

use crate::experiments::{table3_run, table3_table, Scale};
use crate::report::{arg_present, arg_value, write_result};

/// Runs the table3 baseline landscape.
pub fn run(args: &[String]) {
    let scale = if arg_present(args, "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    };
    let alpha: f32 = arg_value(args, "--alpha").map_or(0.5, |v| v.parse().expect("--alpha"));
    eprintln!("[table3] running baseline landscape (alpha = {alpha}, {scale:?})...");
    let histories = table3_run(scale, alpha, 42).expect("table3 failed");
    let table = table3_table(alpha, &histories);
    println!("{table}");
    for h in &histories {
        let path = write_result(&format!("table3_{}.csv", h.method), &h.to_csv()).expect("write results");
        eprintln!("[table3] wrote {}", path.display());
    }
    let path = write_result("table3.csv", &table.to_csv()).expect("write results");
    eprintln!("[table3] wrote {}", path.display());
}
