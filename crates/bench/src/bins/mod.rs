//! Library bodies of every experiment binary.
//!
//! Each binary under `src/bin/` is a thin shim over a `run(args)` in its
//! module here, so the `lab` orchestrator can execute any bench
//! in-process — same telemetry registry, same thread pool, same ISA
//! dispatch — and capture its outcome struct instead of scraping stdout.
//! `args` is the raw argument list *without* the program name.

pub mod all;
pub mod codec_bench;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fleet_bench;
pub mod hier_bench;
pub mod kernel_bench;
pub mod resilience_bench;
pub mod serve_bench;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod trace_report;
