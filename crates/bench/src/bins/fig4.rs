//! Fig. 4: communication bandwidth vs accuracy for the proposed split
//! protocol against Large-Scale Synchronous SGD (and a FedAvg
//! reference), for VGG/ResNet × CIFAR-10/100-like data.
//!
//! Usage:
//!   fig4 [--model vgg|resnet] [--dataset c10|c100] [--quick]
//!
//! Without `--model`/`--dataset`, all four panels run. CSV curves land in
//! `bench_results/fig4_<model>_<dataset>_<method>.csv`.

use crate::experiments::{fig4_run, fig4_table, Scale};
use crate::report::{arg_present, arg_value, write_result};
use crate::workload::{DatasetKind, ModelKind};

/// Runs the fig4 panels selected by `args` (the CLI arguments without
/// the program name).
pub fn run(args: &[String]) {
    let scale = if arg_present(args, "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    };
    let models: Vec<ModelKind> = match arg_value(args, "--model").as_deref() {
        Some(s) => vec![ModelKind::parse(s).unwrap_or_else(|| panic!("unknown model `{s}`"))],
        None => vec![ModelKind::Vgg, ModelKind::ResNet],
    };
    let datasets: Vec<DatasetKind> = match arg_value(args, "--dataset").as_deref() {
        Some(s) => vec![DatasetKind::parse(s).unwrap_or_else(|| panic!("unknown dataset `{s}`"))],
        None => vec![DatasetKind::C10, DatasetKind::C100],
    };

    for model in &models {
        for dataset in &datasets {
            eprintln!(
                "[fig4] running {} on {} ({:?})...",
                model.name(),
                dataset.name(),
                scale
            );
            let histories = fig4_run(*model, *dataset, scale, 42).expect("fig4 panel failed");
            let table = fig4_table(*model, *dataset, &histories);
            println!("{table}");
            for h in &histories {
                let file = format!("fig4_{}_{}_{}.csv", model.name(), dataset.name(), h.method);
                let path = write_result(&file, &h.to_csv()).expect("write results");
                eprintln!("[fig4] wrote {}", path.display());
            }
            let path = write_result(
                &format!("fig4_{}_{}_summary.csv", model.name(), dataset.name()),
                &table.to_csv(),
            )
            .expect("write results");
            eprintln!("[fig4] wrote {}", path.display());
        }
    }
}
