//! Table 1: analytic per-round communication costs of the full-size
//! (paper-scale) VGG-16 and ResNet-18 under split learning, FedAvg and
//! large-scale synchronous SGD.
//!
//! Usage:
//!   table1 [--platforms N] [--batch S]

use crate::experiments::table1;
use crate::report::{arg_value, write_result};

/// Runs the table1 analytic cost model.
pub fn run(args: &[String]) {
    let platforms: usize = arg_value(args, "--platforms").map_or(4, |v| v.parse().expect("--platforms"));
    let batch: usize = arg_value(args, "--batch").map_or(32, |v| v.parse().expect("--batch"));
    let table = table1(platforms, batch);
    println!("{table}");
    let path = write_result("table1.csv", &table.to_csv()).expect("write results");
    eprintln!("[table1] wrote {}", path.display());
}
