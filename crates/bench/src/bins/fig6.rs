//! Fig. 6: scalability of the split protocol with the number of
//! geo-distributed platforms (fixed global batch and dataset).
//!
//! Usage:
//!   fig6 [--quick]

use crate::experiments::{fig6_run, fig6_table, Scale};
use crate::report::{arg_present, write_result};

/// Runs the fig6 platform-count sweep.
pub fn run(args: &[String]) {
    let scale = if arg_present(args, "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    };
    let counts: Vec<usize> = if arg_present(args, "--quick") {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    eprintln!("[fig6] sweeping platform counts {counts:?} ({scale:?})...");
    let points = fig6_run(scale, &counts, 42).expect("fig6 failed");
    let table = fig6_table(&points);
    println!("{table}");
    let path = write_result("fig6.csv", &table.to_csv()).expect("write results");
    eprintln!("[fig6] wrote {}", path.display());
}
