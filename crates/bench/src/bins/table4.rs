//! Table 4: the wire-codec ablation — how much bandwidth (and simulated
//! time) half-precision payloads save, and what they cost in accuracy.
//!
//! Usage:
//!   table4 [--quick]

use crate::experiments::{table4_run, table4_table, Scale};
use crate::report::{arg_present, write_result};

/// Runs the table4 codec ablation.
pub fn run(args: &[String]) {
    let scale = if arg_present(args, "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    };
    eprintln!("[table4] running codec ablation ({scale:?})...");
    let histories = table4_run(scale, 42).expect("table4 failed");
    let table = table4_table(&histories);
    println!("{table}");
    let path = write_result("table4.csv", &table.to_csv()).expect("write results");
    eprintln!("[table4] wrote {}", path.display());
}
