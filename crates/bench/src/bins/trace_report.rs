//! Trace-driven round/kernel profiling: loads a `medsplit-telemetry`
//! JSONL trace and prints where each round's wall time went.
//!
//! Outputs:
//!   - an aggregate span table (calls, total, self time per span name),
//!   - a per-round protocol-phase breakdown whose shares sum to ~100% of
//!     each round's wall time (the unattributed remainder is `other`),
//!   - a per-kernel attribution (gemm/conv time, resolved to rounds via
//!     span parent links),
//!   - the metric counters (per-`MessageKind` logical `net.bytes.*` and
//!     on-wire `net.wire_bytes.*` traffic — the pair shows each codec's
//!     compression directly — plus pool, serve, and the `plan.*`
//!     plan-cache hit/miss/invalidation traffic),
//!   - `trace_phases.csv` in `bench_results/` (or `$MEDSPLIT_RESULTS_DIR`).
//!
//! Usage:
//!   trace_report <trace.jsonl>     report an existing trace
//!   trace_report --smoke           run a tiny traced 4-platform split
//!                                  training in-process, dump its trace,
//!                                  re-load it, and assert the expected
//!                                  span names and non-zero counters
//!
//! A trace is produced by any run with `MEDSPLIT_TRACE=1`; see the README
//! Observability section.

use std::collections::{BTreeMap, HashMap};

use crate::report::{arg_present, write_result, ReportWriter, TextTable};
use medsplit_telemetry::{aggregate_spans, aggregate_table, MetricSnapshot, SpanRecord, Trace};

/// Protocol phases of the paper's four-message round, in wire order.
const PHASES: &[&str] = &[
    "l1_forward",
    "server_fwd_bwd",
    "loss_grad",
    "l1_backward",
    "evaluate",
];

/// Kernel span names attributed in the per-kernel table.
const KERNELS: &[&str] = &["gemm", "conv_fwd", "conv_bwd"];

/// What a `trace_report` invocation observed, for the lab runner.
#[derive(Debug, Clone, Copy)]
pub struct TraceReportOutcome {
    /// Span records in the loaded trace.
    pub spans: usize,
    /// Metric snapshots in the loaded trace.
    pub metrics: usize,
}

/// Resolves each span to the protocol round it ran under: its own
/// `round` annotation, or the nearest annotated ancestor's.
fn resolve_rounds(spans: &[SpanRecord]) -> HashMap<u64, u64> {
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut out = HashMap::new();
    for s in spans {
        let mut cur = Some(s);
        while let Some(c) = cur {
            if let Some(r) = c.round {
                out.insert(s.id, r);
                break;
            }
            cur = c.parent.and_then(|p| by_id.get(&p).copied());
        }
    }
    out
}

/// One round's phase timings in seconds.
#[derive(Debug, Default, Clone)]
struct RoundBreakdown {
    wall_s: f64,
    phase_s: BTreeMap<String, f64>,
}

/// Per-round wall time split by protocol phase. Only spans named `round`
/// define a round's wall time; phase spans accumulate into it by their
/// resolved round.
fn round_breakdowns(spans: &[SpanRecord]) -> BTreeMap<u64, RoundBreakdown> {
    let rounds_of = resolve_rounds(spans);
    let mut out: BTreeMap<u64, RoundBreakdown> = BTreeMap::new();
    for s in spans {
        let Some(&round) = rounds_of.get(&s.id) else {
            continue;
        };
        let entry = out.entry(round).or_default();
        if s.name == "round" {
            entry.wall_s += s.dur_ns as f64 / 1e9;
        } else if PHASES.contains(&s.name.as_str()) {
            *entry.phase_s.entry(s.name.clone()).or_default() += s.dur_ns as f64 / 1e9;
        }
    }
    out
}

/// Renders the per-round phase CSV (`round,phase,seconds,share_pct`);
/// shares of one round sum to ~100 via the `other` residual.
fn phases_csv(rounds: &BTreeMap<u64, RoundBreakdown>) -> String {
    let mut report = ReportWriter::csv("round,phase,seconds,share_pct");
    for (round, b) in rounds {
        if b.wall_s <= 0.0 {
            continue;
        }
        let mut attributed = 0.0;
        for phase in PHASES {
            let s = b.phase_s.get(*phase).copied().unwrap_or(0.0);
            attributed += s;
            report.line(&format!("{round},{phase},{:.9},{:.3}", s, 100.0 * s / b.wall_s));
        }
        let other = (b.wall_s - attributed).max(0.0);
        report.line(&format!(
            "{round},other,{:.9},{:.3}",
            other,
            100.0 * other / b.wall_s
        ));
    }
    report.to_csv()
}

fn kernel_table(spans: &[SpanRecord], total_round_s: f64) -> TextTable {
    let mut table = TextTable::new(
        "kernel attribution",
        &["kernel", "calls", "total ms", "share of round time"],
    );
    let aggs = aggregate_spans(spans);
    for kernel in KERNELS {
        let Some(a) = aggs.iter().find(|a| a.name == *kernel) else {
            continue;
        };
        let total_s = a.total_ns as f64 / 1e9;
        let share = if total_round_s > 0.0 {
            format!("{:.1}%", 100.0 * total_s / total_round_s)
        } else {
            "-".into()
        };
        table.row(vec![
            kernel.to_string(),
            a.count.to_string(),
            format!("{:.3}", total_s * 1e3),
            share,
        ]);
    }
    table
}

fn print_report(trace: &Trace) -> String {
    println!("{}", aggregate_table(&trace.spans));

    let rounds = round_breakdowns(&trace.spans);
    let total_round_s: f64 = rounds.values().map(|b| b.wall_s).sum();
    let mut phase_table = TextTable::new(
        "per-round protocol phases (seconds)",
        &[
            "round",
            "wall_s",
            "l1_fwd",
            "server",
            "loss_grad",
            "l1_bwd",
            "eval",
            "other%",
        ],
    );
    for (round, b) in &rounds {
        let get = |p: &str| b.phase_s.get(p).copied().unwrap_or(0.0);
        let attributed: f64 = PHASES.iter().map(|p| get(p)).sum();
        let other_pct = if b.wall_s > 0.0 {
            100.0 * (b.wall_s - attributed).max(0.0) / b.wall_s
        } else {
            0.0
        };
        phase_table.row(vec![
            round.to_string(),
            format!("{:.6}", b.wall_s),
            format!("{:.6}", get("l1_forward")),
            format!("{:.6}", get("server_fwd_bwd")),
            format!("{:.6}", get("loss_grad")),
            format!("{:.6}", get("l1_backward")),
            format!("{:.6}", get("evaluate")),
            format!("{:.1}", other_pct),
        ]);
    }
    println!("{phase_table}");
    println!("{}", kernel_table(&trace.spans, total_round_s));

    let mut counters = TextTable::new("counters", &["name", "value"]);
    for m in &trace.metrics {
        if let MetricSnapshot::Counter { name, value } = m {
            counters.row(vec![name.clone(), value.to_string()]);
        }
    }
    if !counters.is_empty() {
        println!("{counters}");
    }

    phases_csv(&rounds)
}

/// Runs a tiny traced 4-platform split training in-process and returns
/// the JSONL text of its trace.
fn smoke_run() -> String {
    use medsplit_core::{SplitConfig, SplitTrainer};
    use medsplit_data::{partition, Partition, SyntheticTabular};
    use medsplit_nn::{Architecture, LrSchedule, MlpConfig};
    use medsplit_simnet::{MemoryTransport, StarTopology};

    medsplit_telemetry::set_enabled(true);
    let arch = Architecture::Mlp(MlpConfig {
        input_dim: 8,
        hidden: vec![16],
        num_classes: 3,
    });
    let all = SyntheticTabular::new(3, 8, 0).generate(160).expect("data");
    let train = all.subset(&(0..128).collect::<Vec<_>>()).expect("train");
    let test = all.subset(&(128..160).collect::<Vec<_>>()).expect("test");
    let shards = partition(&train, 4, &Partition::Iid, 1).expect("shards");
    let transport = MemoryTransport::new(StarTopology::new(4));
    let config = SplitConfig {
        rounds: 3,
        eval_every: 3,
        lr: LrSchedule::Constant(0.1),
        ..SplitConfig::default()
    };
    let mut trainer = SplitTrainer::new(&arch, config, shards, test, &transport).expect("trainer");
    let history = trainer.run().expect("training");
    assert!(history.stats.total_bytes > 0, "smoke run sent no bytes");
    medsplit_telemetry::set_enabled(false);
    medsplit_telemetry::to_jsonl(&Trace::capture())
}

fn assert_smoke(trace: &Trace, csv: &str) {
    for name in [
        "round",
        "l1_forward",
        "server_fwd_bwd",
        "loss_grad",
        "l1_backward",
        "evaluate",
        "gemm",
    ] {
        assert!(
            trace.spans.iter().any(|s| s.name == name),
            "expected span {name:?} missing from trace"
        );
    }
    for prefix in [
        "net.bytes.activations",
        "net.bytes.logits",
        "net.bytes.logit_grads",
        "net.bytes.cut_grads",
        // On-wire bytes are tracked per kind next to the logical
        // (f32-equivalent) bytes; under the default f32 codec the two
        // families agree, but both must always be present.
        "net.wire_bytes.activations",
        "net.wire_bytes.cut_grads",
        "net.msgs.activations",
        // Plan-cache traffic: round 1 builds every layer's plan (misses),
        // each optimizer step afterwards invalidates exactly the touched
        // parameters' plans.
        "plan.cache_misses",
        "plan.invalidations",
    ] {
        assert!(
            trace.counter_total(prefix) > 0,
            "expected non-zero counter {prefix:?}"
        );
    }
    // Each round's phase shares (including the residual) sum to ~100%.
    let mut by_round: BTreeMap<&str, f64> = BTreeMap::new();
    for line in csv.lines().skip(1) {
        let mut cols = line.split(',');
        let round = cols.next().expect("round col");
        let _phase = cols.next();
        let _secs = cols.next();
        let share: f64 = cols.next().expect("share col").parse().expect("share parses");
        *by_round.entry(round).or_default() += share;
    }
    assert!(!by_round.is_empty(), "phase CSV has no rounds");
    for (round, sum) in by_round {
        assert!(
            (sum - 100.0).abs() < 1.0,
            "round {round} phase shares sum to {sum:.2}%, expected ~100%"
        );
    }
}

/// Runs the trace report (or the traced smoke run) and returns what it
/// loaded.
pub fn run(args: &[String]) -> TraceReportOutcome {
    let smoke = arg_present(args, "--smoke");

    let (trace, jsonl_name) = if smoke {
        let jsonl = smoke_run();
        let path = write_result("trace_smoke.jsonl", &jsonl).expect("write trace_smoke.jsonl");
        // Re-read from disk so the smoke run exercises the full JSONL
        // round trip, not just the in-process structures.
        let text = std::fs::read_to_string(&path).expect("read trace back");
        (medsplit_telemetry::from_jsonl(&text), path.display().to_string())
    } else {
        let path = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .expect("usage: trace_report <trace.jsonl> | trace_report --smoke");
        let text = std::fs::read_to_string(path).expect("read trace file");
        (medsplit_telemetry::from_jsonl(&text), path.clone())
    };

    assert!(!trace.spans.is_empty(), "trace {jsonl_name} contains no spans");
    let csv = print_report(&trace);
    let csv_path = write_result("trace_phases.csv", &csv).expect("write trace_phases.csv");
    println!("trace: {jsonl_name}");
    println!("wrote {}", csv_path.display());

    if smoke {
        assert_smoke(&trace, &csv);
        println!(
            "smoke OK: {} spans, {} metrics, phase shares verified",
            trace.spans.len(),
            trace.metrics.len()
        );
    }
    TraceReportOutcome {
        spans: trace.spans.len(),
        metrics: trace.metrics.len(),
    }
}
