//! Kernel benchmark harness for the parallel packed compute backend.
//!
//! Sweeps GEMM and convolution shapes across worker-pool sizes and
//! reports throughput (GFLOP/s), speedup versus one thread, speedup
//! versus the seed (naive, branchy) kernel, scratch-arena heap
//! allocations per step, and — the headline for the SIMD microkernels —
//! GFLOPS versus the portable scalar reference path
//! (`gflops_vs_scalar`): every shape is measured once more under
//! `MEDSPLIT_ISA=scalar` semantics at one thread, and each row reports
//! its throughput relative to that baseline.
//!
//! A small-batch *serving sweep* (`dense_serve` / `conv_serve` rows at
//! batch 1/2/4/8) drives the plan-cache path — layers in `Mode::Eval`
//! with prepacked weight panels — against the unplanned per-call packing
//! path. Its `repacks_per_step` column counts plan panel packs inside
//! the timed region; the harness asserts it is exactly 0.0 after warmup
//! (eval/serve never repacks), that planned logits are bit-identical to
//! the unplanned baseline, and that the training path repacks at most
//! once per orientation per optimizer step.
//!
//! A *half-width storage sweep* (`gemm_f16` rows) drives the same
//! planned GEMM with binary16 weight panels (`MEDSPLIT_WEIGHT_PREC=f16`
//! semantics) against the f32-storage plan; `speedup_vs_seed` there is
//! the f32-storage/f16-storage time ratio, and the f16 logits fold into
//! the plan digest so the cross-ISA gate covers both storage precisions.
//!
//! Outputs:
//!   - `bench_results/kernel_bench.csv` (or `$MEDSPLIT_RESULTS_DIR`),
//!   - `BENCH_kernels.json` in the current directory (repo root in CI),
//!     wrapped in the shared schema-v2 envelope (host fingerprint, lab
//!     run id), with the dispatched ISA and the autotuner's recorded
//!     blocking picks,
//!   - `bench_results/kernel_digest.txt`: an FNV-1a digest of a fixed
//!     deterministic kernel workload. The lab's `kernels-ab` manifest
//!     runs the smoke bench under `isa = ["scalar", "auto"]` and gates
//!     on the digests matching, pinning the cross-ISA bit-identity
//!     guarantee end to end,
//!   - `bench_results/plan_digest.txt`: the same guarantee for the
//!     planned (cached-panel) path — an FNV-1a digest of every serving
//!     sweep logit, also compared across ISAs.
//!
//! Usage:
//!   kernel_bench [--smoke] [--threads 1,2,4] [--reps N]
//!
//! `--smoke` runs tiny shapes with one repetition and asserts the CSV
//! schema, so CI can gate on the harness itself staying healthy.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use crate::report::{
    arg_present, arg_value, bench_json, bench_json_path, write_result, ReportWriter, TextTable,
};
use medsplit_nn::{Conv2d, Dense, Layer, Mode, Optimizer, Sgd};
use medsplit_tensor::ops::conv::{conv2d_forward, conv2d_forward_planned, Conv2dSpec};
use medsplit_tensor::ops::plan;
use medsplit_tensor::{
    init::rng_from_seed, pool, scratch, simd, ConvPlan, GemmPlan, Tensor, WeightPrecision,
};

const CSV_HEADER: &str = "kernel,shape,threads,reps,best_ms,gflops,speedup_vs_1t,\
                          speedup_vs_seed,gflops_vs_scalar,scratch_allocs_per_step,\
                          repacks_per_step";

/// What a `kernel_bench` invocation measured, for the lab runner.
#[derive(Debug, Clone, Copy)]
pub struct KernelBenchOutcome {
    /// CSV rows produced.
    pub rows: usize,
    /// FNV-1a digest of the fixed deterministic kernel workload —
    /// identical across `MEDSPLIT_ISA` settings by construction.
    pub kernel_digest: u64,
    /// FNV-1a digest of every planned serving-sweep logit — the same
    /// cross-ISA guarantee for the plan-cache path.
    pub plan_digest: u64,
}

/// The seed repository's GEMM kernel, kept verbatim as the baseline: a
/// cache-blocked triple loop with the `aval == 0.0` skip branch the
/// packed backend removed. Single-threaded by construction.
fn seed_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    const BLOCK: usize = 64;
    let mut c = vec![0.0f32; m * n];
    for ib in (0..m).step_by(BLOCK) {
        let imax = (ib + BLOCK).min(m);
        for kb in (0..k).step_by(BLOCK) {
            let kmax = (kb + BLOCK).min(k);
            for i in ib..imax {
                let crow = &mut c[i * n..(i + 1) * n];
                for p in kb..kmax {
                    let aval = a[i * k + p];
                    if aval == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..p * n + n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aval * bv;
                    }
                }
            }
        }
    }
    c
}

struct Row {
    kernel: &'static str,
    shape: String,
    threads: usize,
    reps: usize,
    best_ms: f64,
    gflops: f64,
    speedup_vs_1t: f64,
    speedup_vs_seed: f64,
    gflops_vs_scalar: f64,
    scratch_allocs_per_step: f64,
    repacks_per_step: f64,
}

/// Times `body` for `reps` repetitions and returns the best wall time in
/// seconds, the scratch-arena allocation growth per repetition, and the
/// plan panel packs per repetition (warm-path repacks).
fn time_best(reps: usize, body: impl Fn() + Sync) -> (f64, f64, f64) {
    // Warm up on the caller AND every pool worker so no worker's
    // thread-local scratch arena grows inside the timed region — jobs go
    // to whichever workers win the queue race, so a single plain call
    // cannot cover them all. The warmup also builds any plan-cache
    // panels, so the timed region observes steady-state packing.
    pool::warmup(&body);
    let allocs_before = scratch::stats().allocations;
    let packs_before = plan::stats().packs;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        body();
        best = best.min(t.elapsed().as_secs_f64());
    }
    let allocs = scratch::stats().allocations - allocs_before;
    let packs = plan::stats().packs - packs_before;
    (best, allocs as f64 / reps as f64, packs as f64 / reps as f64)
}

/// Measures `body` once under the portable scalar ISA at one thread and
/// returns the best wall time; restores the previously active ISA.
fn scalar_baseline(reps: usize, body: impl Fn() + Sync) -> f64 {
    let active = simd::active_isa();
    assert!(simd::set_isa(simd::Isa::Scalar));
    pool::set_num_threads(1);
    let (best_s, _, _) = time_best(reps, body);
    assert!(simd::set_isa(active));
    best_s
}

fn bench_gemm(m: usize, k: usize, n: usize, threads: &[usize], reps: usize, rows: &mut Vec<Row>) {
    let mut rng = rng_from_seed(7);
    let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;

    let (seed_s, _, _) = time_best(reps, || {
        std::hint::black_box(seed_gemm(a.as_slice(), b.as_slice(), m, k, n));
    });
    // The scalar reference path is deliberately slow (libm-fused); a
    // couple of repetitions suffice for a stable best-of.
    let scalar_s = scalar_baseline(reps.min(2), || {
        std::hint::black_box(a.matmul(&b).expect("gemm"));
    });
    let scalar_gflops = flops / scalar_s / 1e9;

    let mut one_thread_s = f64::NAN;
    for &t in threads {
        pool::set_num_threads(t);
        let (best_s, allocs, repacks) = time_best(reps, || {
            std::hint::black_box(a.matmul(&b).expect("gemm"));
        });
        if t == 1 {
            one_thread_s = best_s;
        }
        rows.push(Row {
            kernel: "gemm",
            shape: format!("{m}x{k}x{n}"),
            threads: t,
            reps,
            best_ms: best_s * 1e3,
            gflops: flops / best_s / 1e9,
            speedup_vs_1t: one_thread_s / best_s,
            speedup_vs_seed: seed_s / best_s,
            gflops_vs_scalar: (flops / best_s / 1e9) / scalar_gflops,
            scratch_allocs_per_step: allocs,
            repacks_per_step: repacks,
        });
    }
    pool::set_num_threads(1);
}

/// f16-storage vs f32-storage planned GEMM: the same weight driven
/// through two `GemmPlan`s that differ only in panel storage precision.
/// For `gemm_f16` rows the `speedup_vs_seed` column reports f32-storage
/// plan time over f16-storage plan time (the full-precision plan is the
/// "seed" the half-width panels replace). Asserts the f16 plan never
/// repacks after warmup, that its logits are bit-identical to the
/// unplanned GEMM against the f16-narrowed weight (the single narrowing
/// happens at pack time; every kernel widens exactly), and folds the
/// f16 logits into the cross-ISA plan digest.
fn bench_gemm_f16(m: usize, k: usize, n: usize, reps: usize, rows: &mut Vec<Row>, digest: &mut u64) {
    pool::set_num_threads(1);
    let mut rng = rng_from_seed(41);
    let w = Tensor::rand_uniform([n, k], -0.5, 0.5, &mut rng);
    let x = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
    let flops = 2.0 * (m * k * n) as f64;

    let p32 = GemmPlan::pack_nt_at(&w, 0, WeightPrecision::F32).expect("f32 plan");
    let p16 = GemmPlan::pack_nt_at(&w, 0, WeightPrecision::F16).expect("f16 plan");

    let w16: Vec<f32> = w
        .as_slice()
        .iter()
        .map(|&v| medsplit_tensor::half::f16_bits_to_f32(medsplit_tensor::half::f32_to_f16_bits(v)))
        .collect();
    let w16 = Tensor::from_vec(w16, [n, k]).expect("narrowed weight");
    let reference = x.matmul_nt(&w16).expect("narrowed gemm");
    let planned = p16.matmul_nt(&x).expect("f16 planned gemm");
    assert_eq!(
        planned.as_slice(),
        reference.as_slice(),
        "f16-storage plan diverged from the unplanned GEMM on narrowed weights at {m}x{k}x{n}"
    );
    *digest = fnv1a_fold(*digest, planned.as_slice());

    let (f32_s, _, _) = time_best(reps, || {
        std::hint::black_box(p32.matmul_nt(&x).expect("f32 planned gemm"));
    });
    let (best_s, allocs, repacks) = time_best(reps, || {
        std::hint::black_box(p16.matmul_nt(&x).expect("f16 planned gemm"));
    });
    assert_eq!(
        repacks, 0.0,
        "f16-storage plan repacked panels after warmup at {m}x{k}x{n}"
    );
    rows.push(Row {
        kernel: "gemm_f16",
        shape: format!("{m}x{k}x{n}"),
        threads: 1,
        reps,
        best_ms: best_s * 1e3,
        gflops: flops / best_s / 1e9,
        speedup_vs_1t: 1.0,
        speedup_vs_seed: f32_s / best_s,
        gflops_vs_scalar: f64::NAN,
        scratch_allocs_per_step: allocs,
        repacks_per_step: repacks,
    });
}

#[allow(clippy::too_many_arguments)]
fn bench_conv(
    label: &'static str,
    n: usize,
    c: usize,
    hw: usize,
    o: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    threads: &[usize],
    reps: usize,
    rows: &mut Vec<Row>,
) {
    let mut rng = rng_from_seed(11);
    let input = Tensor::rand_uniform([n, c, hw, hw], -1.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform([o, c, kernel, kernel], -0.5, 0.5, &mut rng);
    let bias = Tensor::rand_uniform([o], -0.1, 0.1, &mut rng);
    let spec = Conv2dSpec::square(kernel, stride, padding);
    let (oh, ow) = spec.output_hw(hw, hw).expect("conv shape");
    let flops = 2.0 * (n * o * oh * ow * c * kernel * kernel) as f64;

    let scalar_s = scalar_baseline(reps.min(2), || {
        std::hint::black_box(conv2d_forward(&input, &weight, Some(&bias), spec).expect("conv"));
    });
    let scalar_gflops = flops / scalar_s / 1e9;

    let mut one_thread_s = f64::NAN;
    for &t in threads {
        pool::set_num_threads(t);
        let (best_s, allocs, repacks) = time_best(reps, || {
            std::hint::black_box(conv2d_forward(&input, &weight, Some(&bias), spec).expect("conv"));
        });
        if t == 1 {
            one_thread_s = best_s;
        }
        rows.push(Row {
            kernel: label,
            shape: format!("{n}x{c}x{hw}x{hw}->k{kernel}s{stride}p{padding}o{o}"),
            threads: t,
            reps,
            best_ms: best_s * 1e3,
            gflops: flops / best_s / 1e9,
            speedup_vs_1t: one_thread_s / best_s,
            // No seed-kernel counterpart: conv was always im2col+GEMM;
            // the seed comparison is carried by the gemm rows.
            speedup_vs_seed: f64::NAN,
            gflops_vs_scalar: (flops / best_s / 1e9) / scalar_gflops,
            scratch_allocs_per_step: allocs,
            repacks_per_step: repacks,
        });
    }
    pool::set_num_threads(1);
}

/// Small-batch serving sweep: `Dense` and `Conv2d` layers in `Mode::Eval`
/// at batch 1/2/4/8, driven through their cached plans, against the
/// unplanned per-call packing path.
///
/// For serving rows the `speedup_vs_seed` column reports planned vs
/// *unplanned* (the per-call path is the "seed" the plan cache
/// replaces). Asserts, per shape: planned logits are bit-identical to
/// the unplanned baseline, and the warm path packs zero panels
/// (`repacks_per_step == 0.0` — eval never repacks after warmup).
///
/// Returns an FNV-1a digest over every planned logit, written to
/// `plan_digest.txt` for the cross-ISA comparison.
fn bench_serving(reps: usize, rows: &mut Vec<Row>) -> u64 {
    const BATCHES: [usize; 4] = [1, 2, 4, 8];
    pool::set_num_threads(1);
    let mut digest = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis

    // Dense serving shapes: split-model classifier heads (in -> out).
    for &(inf, outf) in &[(256usize, 256usize), (784usize, 128usize)] {
        let mut rng = rng_from_seed(23);
        let w = Tensor::rand_uniform([outf, inf], -0.5, 0.5, &mut rng);
        let b = Tensor::rand_uniform([outf], -0.1, 0.1, &mut rng);
        // `Layer::forward` needs `&mut self` (it may build the plan);
        // `time_best` bodies are `Fn + Sync`, so serialize via a mutex.
        let layer = Mutex::new(Dense::from_parts(w.clone(), b.clone()).expect("dense layer"));
        for &batch in &BATCHES {
            let x = Tensor::rand_uniform([batch, inf], -1.0, 1.0, &mut rng);
            let flops = 2.0 * (batch * inf * outf) as f64;
            let direct = x.matmul_nt(&w).expect("direct gemm").try_add(&b).expect("bias");
            let (direct_s, _, _) = time_best(reps, || {
                std::hint::black_box(x.matmul_nt(&w).expect("direct gemm").try_add(&b).expect("bias"));
            });
            let planned = layer
                .lock()
                .expect("dense lock")
                .forward(&x, Mode::Eval)
                .expect("planned dense");
            assert_eq!(
                planned.as_slice(),
                direct.as_slice(),
                "planned dense logits diverged from the unplanned path at b{batch}x{inf}->{outf}"
            );
            digest = fnv1a_fold(digest, planned.as_slice());
            let (best_s, allocs, repacks) = time_best(reps, || {
                let mut l = layer.lock().expect("dense lock");
                std::hint::black_box(l.forward(&x, Mode::Eval).expect("planned dense"));
            });
            assert_eq!(
                repacks, 0.0,
                "dense serve repacked panels after warmup at b{batch}x{inf}->{outf}"
            );
            rows.push(Row {
                kernel: "dense_serve",
                shape: format!("b{batch}x{inf}->{outf}"),
                threads: 1,
                reps,
                best_ms: best_s * 1e3,
                gflops: flops / best_s / 1e9,
                speedup_vs_1t: 1.0,
                speedup_vs_seed: direct_s / best_s,
                gflops_vs_scalar: f64::NAN,
                scratch_allocs_per_step: allocs,
                repacks_per_step: repacks,
            });
        }
    }

    // Conv serving shape: an early-stage feature extractor block.
    let spec = Conv2dSpec::square(3, 1, 1);
    let (c, hw, o) = (8usize, 16usize, 16usize);
    let mut rng = rng_from_seed(29);
    let w = Tensor::rand_uniform([o, c, 3, 3], -0.5, 0.5, &mut rng);
    let b = Tensor::rand_uniform([o], -0.1, 0.1, &mut rng);
    let layer = Mutex::new(Conv2d::from_parts(w.clone(), b.clone(), spec).expect("conv layer"));
    for &batch in &BATCHES {
        let x = Tensor::rand_uniform([batch, c, hw, hw], -1.0, 1.0, &mut rng);
        let (oh, ow) = spec.output_hw(hw, hw).expect("conv shape");
        let flops = 2.0 * (batch * o * oh * ow * c * 9) as f64;
        let direct = conv2d_forward(&x, &w, Some(&b), spec).expect("direct conv");
        let (direct_s, _, _) = time_best(reps, || {
            std::hint::black_box(conv2d_forward(&x, &w, Some(&b), spec).expect("direct conv"));
        });
        let planned = layer
            .lock()
            .expect("conv lock")
            .forward(&x, Mode::Eval)
            .expect("planned conv");
        assert_eq!(
            planned.as_slice(),
            direct.as_slice(),
            "planned conv logits diverged from the unplanned path at b{batch}x{c}x{hw}x{hw}"
        );
        digest = fnv1a_fold(digest, planned.as_slice());
        let (best_s, allocs, repacks) = time_best(reps, || {
            let mut l = layer.lock().expect("conv lock");
            std::hint::black_box(l.forward(&x, Mode::Eval).expect("planned conv"));
        });
        assert_eq!(
            repacks, 0.0,
            "conv serve repacked panels after warmup at b{batch}x{c}x{hw}x{hw}"
        );
        rows.push(Row {
            kernel: "conv_serve",
            shape: format!("b{batch}x{c}x{hw}x{hw}->k3s1p1o{o}"),
            threads: 1,
            reps,
            best_ms: best_s * 1e3,
            gflops: flops / best_s / 1e9,
            speedup_vs_1t: 1.0,
            speedup_vs_seed: direct_s / best_s,
            gflops_vs_scalar: f64::NAN,
            scratch_allocs_per_step: allocs,
            repacks_per_step: repacks,
        });
    }
    digest
}

/// Asserts the training-path packing bound: each optimizer step
/// invalidates a layer's plan exactly once, and the following
/// forward+backward rebuilds at most the two panel orientations —
/// never one pack per call.
fn assert_training_repack_bound() {
    pool::set_num_threads(1);
    let mut rng = rng_from_seed(31);
    let mut layer = Dense::new(24, 12, &mut rng);
    let mut opt = Sgd::new(0.01);
    let x = Tensor::rand_uniform([4, 24], -1.0, 1.0, &mut rng);
    // Warmup: the first forward misses and packs, the first backward
    // lazily packs the backward orientation.
    let y = layer.forward(&x, Mode::Train).expect("train fwd");
    layer
        .backward(&Tensor::ones(y.shape().clone()))
        .expect("train bwd");

    let steps = 5u64;
    let before = plan::stats();
    for _ in 0..steps {
        opt.step_and_zero(&mut layer);
        let y = layer.forward(&x, Mode::Train).expect("train fwd");
        layer
            .backward(&Tensor::ones(y.shape().clone()))
            .expect("train bwd");
    }
    let after = plan::stats();
    assert_eq!(
        after.invalidations - before.invalidations,
        steps,
        "expected exactly one plan invalidation per optimizer step"
    );
    assert!(
        after.packs - before.packs <= 2 * steps,
        "training repacked more than both orientations per step: {} packs over {steps} steps",
        after.packs - before.packs
    );
}

/// `NaN` metrics (no baseline for this row kind) render as an empty CSV
/// field / JSON `null`.
fn opt_metric(v: f64, csv: bool) -> String {
    if v.is_nan() {
        if csv {
            String::new()
        } else {
            "null".into()
        }
    } else if csv {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

fn to_report(rows: &[Row]) -> ReportWriter {
    let mut report = ReportWriter::csv(CSV_HEADER);
    for r in rows {
        report.line(&format!(
            "{},{},{},{},{:.3},{:.2},{:.2},{},{},{:.2},{:.2}",
            r.kernel,
            r.shape,
            r.threads,
            r.reps,
            r.best_ms,
            r.gflops,
            r.speedup_vs_1t,
            opt_metric(r.speedup_vs_seed, true),
            opt_metric(r.gflops_vs_scalar, true),
            r.scratch_allocs_per_step,
            r.repacks_per_step
        ));
    }
    report
}

fn to_json(rows: &[Row], isa: &str) -> String {
    let mut results = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            results,
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"best_ms\": {:.4}, \
             \"gflops\": {:.3}, \"speedup_vs_1t\": {:.3}, \"speedup_vs_seed\": {}, \
             \"gflops_vs_scalar\": {}, \"scratch_allocs_per_step\": {:.2}, \
             \"repacks_per_step\": {:.2}}}{}",
            r.kernel,
            r.shape,
            r.threads,
            r.best_ms,
            r.gflops,
            r.speedup_vs_1t,
            opt_metric(r.speedup_vs_seed, false),
            opt_metric(r.gflops_vs_scalar, false),
            r.scratch_allocs_per_step,
            r.repacks_per_step,
            comma
        );
    }
    results.push_str("  ]");

    // The autotuner's per-shape blocking picks, so the committed bench
    // numbers are self-describing about how each shape was executed.
    let mut autotuner = String::from("[\n");
    let picks = plan::recorded_picks();
    for (i, (key, b)) in picks.iter().enumerate() {
        let comma = if i + 1 == picks.len() { "" } else { "," };
        let _ = writeln!(
            autotuner,
            "    {{\"pick\": \"{key}\", \"mr\": {}, \"nr\": {}, \"kc\": {}, \"nc\": {}, \
             \"row_block\": {}}}{comma}",
            b.mr, b.nr, b.kc, b.nc, b.row_block
        );
    }
    autotuner.push_str("  ]");

    bench_json(
        "kernel_bench",
        &[
            ("isa", format!("\"{isa}\"")),
            ("results", results),
            ("autotuner_picks", autotuner),
        ],
    )
}

/// FNV-1a over a stream of `f32` bit patterns (little-endian).
fn fnv1a_fold(hash: u64, vals: &[f32]) -> u64 {
    let mut h = hash;
    for v in vals {
        for byte in v.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs a fixed deterministic workload through every dispatched kernel
/// family (all three GEMM variants with edge tiles, conv forward, the
/// ReLU family, the accumulators) at one thread and digests the result
/// bits. Identical across `MEDSPLIT_ISA` settings by construction; the
/// lab's invariant gate asserts it.
fn kernel_digest() -> u64 {
    pool::set_num_threads(1);
    let mut rng = rng_from_seed(99);
    let a = Tensor::rand_uniform([70, 93], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([93, 37], -1.0, 1.0, &mut rng);
    let mut h = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    h = fnv1a_fold(h, a.matmul(&b).expect("digest gemm").as_slice());
    let at = a.transpose().expect("digest transpose");
    h = fnv1a_fold(h, at.matmul_tn(&b).expect("digest gemm_tn").as_slice());
    let bt = b.transpose().expect("digest transpose");
    h = fnv1a_fold(h, a.matmul_nt(&bt).expect("digest gemm_nt").as_slice());

    let input = Tensor::rand_uniform([2, 3, 11, 11], -1.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform([4, 3, 3, 3], -0.5, 0.5, &mut rng);
    let conv = conv2d_forward(&input, &weight, None, Conv2dSpec::square(3, 1, 1)).expect("digest conv");
    h = fnv1a_fold(h, conv.as_slice());

    // The f16-storage kernel family: GEMM and conv through plans packed
    // at half precision. Narrowing happens once at pack time and every
    // kernel widens exactly, so these bits are also ISA-invariant — the
    // same lab gate that pins the f32 family pins these.
    let p16 = GemmPlan::pack_nt_at(&bt, 0, WeightPrecision::F16).expect("digest f16 plan");
    h = fnv1a_fold(h, p16.matmul_nt(&a).expect("digest f16 gemm").as_slice());
    let mut c16 = ConvPlan::pack_at(&weight, Conv2dSpec::square(3, 1, 1), 0, WeightPrecision::F16)
        .expect("digest f16 conv plan");
    let conv16 = conv2d_forward_planned(&input, &mut c16, None).expect("digest f16 conv");
    h = fnv1a_fold(h, conv16.as_slice());

    let x = Tensor::rand_uniform([999], -2.0, 2.0, &mut rng);
    let g = Tensor::rand_uniform([999], -1.0, 1.0, &mut rng);
    h = fnv1a_fold(h, x.relu().as_slice());
    h = fnv1a_fold(h, x.relu().relu_backward(&g).expect("digest relu_bwd").as_slice());
    h = fnv1a_fold(h, x.leaky_relu(0.01).as_slice());
    let mut acc = x.clone();
    acc.axpy(0.37, &g).expect("digest axpy");
    acc.add_assign(&g).expect("digest add_assign");
    acc.scale_inplace(-1.25);
    h = fnv1a_fold(h, acc.as_slice());
    h = fnv1a_fold(h, (&x * &g).as_slice());
    h
}

fn parse_threads(spec: &str) -> Vec<usize> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().expect("--threads takes e.g. 1,2,4"))
        .collect()
}

/// Runs the kernel benchmark and returns its deterministic digests.
pub fn run(args: &[String]) -> KernelBenchOutcome {
    let smoke = arg_present(args, "--smoke");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let isa = simd::active_isa();
    let threads = match arg_value(args, "--threads") {
        Some(spec) => parse_threads(&spec),
        None if smoke => vec![1, 2],
        None => vec![1, 2, 4],
    };
    let reps: usize = arg_value(args, "--reps")
        .map(|v| v.parse().expect("--reps takes an integer"))
        .unwrap_or(if smoke { 1 } else { 5 });

    let mut rows = Vec::new();
    if smoke {
        bench_gemm(48, 33, 17, &threads, reps, &mut rows);
        bench_conv("conv2d", 2, 3, 8, 4, 3, 1, 1, &threads, reps, &mut rows);
    } else {
        // GEMM shapes: the acceptance shape plus split-model layer shapes
        // (tall-skinny activations x weights) and a wide-N case that
        // exercises the shared whole-B pack.
        bench_gemm(512, 512, 512, &threads, reps, &mut rows);
        bench_gemm(256, 256, 256, &threads, reps, &mut rows);
        bench_gemm(128, 784, 256, &threads, reps, &mut rows);
        bench_gemm(64, 256, 1024, &threads, reps, &mut rows);
        // Conv shapes drawn from VGG16 / ResNet18 early stages, scaled to
        // medical-imaging-sized inputs the paper's CNNs use.
        bench_conv("conv2d", 4, 3, 64, 64, 3, 1, 1, &threads, reps, &mut rows);
        bench_conv("conv2d", 4, 64, 32, 64, 3, 1, 1, &threads, reps, &mut rows);
        bench_conv("conv2d", 8, 3, 56, 64, 7, 2, 3, &threads, reps, &mut rows);
    }
    // Small-batch serving sweep through the plan cache (asserts zero
    // warm-path repacks and bit-identical logits), plus the training
    // repack bound.
    let mut plan_digest = bench_serving(reps, &mut rows);
    // f16-storage vs f32-storage planned GEMM (the `gemm_f16` column);
    // folds the half-width logits into the same cross-ISA plan digest.
    if smoke {
        bench_gemm_f16(48, 33, 17, reps, &mut rows, &mut plan_digest);
    } else {
        bench_gemm_f16(256, 256, 256, reps, &mut rows, &mut plan_digest);
        bench_gemm_f16(128, 784, 256, reps, &mut rows, &mut plan_digest);
        bench_gemm_f16(64, 256, 1024, reps, &mut rows, &mut plan_digest);
    }
    assert_training_repack_bound();

    let report = to_report(&rows);
    assert!(report.rows() >= threads.len(), "kernel_bench produced no rows");
    let csv_path = report.write("kernel_bench.csv").expect("write kernel_bench.csv");

    let json = to_json(&rows, isa.name());
    // Smoke runs keep the JSON next to the CSV so they never clobber the
    // committed full-sweep numbers at the repo root.
    let json_path = bench_json_path("BENCH_kernels.json", smoke);
    std::fs::write(&json_path, &json).expect("write BENCH_kernels.json");

    let digest = kernel_digest();
    let digest_path =
        write_result("kernel_digest.txt", &format!("{digest:016x}\n")).expect("write kernel_digest.txt");
    let plan_digest_path =
        write_result("plan_digest.txt", &format!("{plan_digest:016x}\n")).expect("write plan_digest.txt");

    let mut table = TextTable::new(
        "kernel_bench (best-of-reps wall time)",
        &[
            "kernel",
            "shape",
            "threads",
            "best ms",
            "GFLOP/s",
            "vs 1t",
            "vs seed",
            "vs scalar",
            "allocs/step",
            "repacks/step",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.kernel.to_string(),
            r.shape.clone(),
            r.threads.to_string(),
            format!("{:.3}", r.best_ms),
            format!("{:.2}", r.gflops),
            format!("{:.2}x", r.speedup_vs_1t),
            if r.speedup_vs_seed.is_nan() {
                "-".into()
            } else {
                format!("{:.2}x", r.speedup_vs_seed)
            },
            if r.gflops_vs_scalar.is_nan() {
                "-".into()
            } else {
                format!("{:.2}x", r.gflops_vs_scalar)
            },
            format!("{:.2}", r.scratch_allocs_per_step),
            format!("{:.2}", r.repacks_per_step),
        ]);
    }
    println!("{table}");
    println!(
        "isa: {} (set MEDSPLIT_ISA=scalar|avx2|neon to override)",
        isa.name()
    );
    println!("host available_parallelism: {host_threads}");
    println!(
        "wrote {}, {}, {} and {}",
        csv_path.display(),
        json_path.display(),
        digest_path.display(),
        plan_digest_path.display()
    );
    if smoke {
        println!(
            "smoke OK: {} rows, schema verified, serve repacks 0.0, planned logits match unplanned",
            rows.len()
        );
    }
    KernelBenchOutcome {
        rows: rows.len(),
        kernel_digest: digest,
        plan_digest,
    }
}
