//! Table 2: the data-imbalance ablation — equal vs proportional
//! per-platform minibatches under power-law shard sizes.
//!
//! Usage:
//!   table2 [--alpha A] [--quick]

use crate::experiments::{table2_run, table2_table, Scale};
use crate::report::{arg_present, arg_value, write_result};

/// Runs the table2 imbalance ablation.
pub fn run(args: &[String]) {
    let scale = if arg_present(args, "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    };
    let alpha: f32 = arg_value(args, "--alpha").map_or(0.3, |v| v.parse().expect("--alpha"));
    eprintln!("[table2] running imbalance ablation (alpha = {alpha}, {scale:?})...");
    let results = table2_run(scale, alpha, 42).expect("table2 failed");
    let table = table2_table(alpha, &results);
    println!("{table}");
    for (name, h) in &results {
        let path = write_result(&format!("table2_{name}.csv"), &h.to_csv()).expect("write results");
        eprintln!("[table2] wrote {}", path.display());
    }
    let path = write_result("table2.csv", &table.to_csv()).expect("write results");
    eprintln!("[table2] wrote {}", path.display());
}
