//! Resilience benchmark: accuracy and wire-byte degradation of the
//! fault-tolerant split trainer under injected faults.
//!
//! Sweeps per-message drop rates × quorum sizes on a fixed-seed 4-platform
//! MLP run, plus a crash–rejoin scenario (one platform down for a window
//! of rounds) and a straggler scenario, and reports final accuracy, total
//! wire bytes, retries, and degraded-round counts against the fault-free
//! baseline.
//!
//! Outputs:
//!   - `bench_results/resilience.csv` (or `$MEDSPLIT_RESULTS_DIR`).
//!
//! Usage:
//!   resilience_bench [--smoke] [--rounds N]
//!
//! `--smoke` runs a tiny sweep with fixed seeds and asserts the chaos
//! invariants CI gates on: training completes under 10 % loss, the
//! crash–rejoin scenario produces exactly its window of degraded rounds,
//! and a replay of the faulty run is bit-identical.

use crate::report::{arg_present, arg_value, ReportWriter, TextTable};
use medsplit_core::{ResilienceReport, ResilientTrainer, SplitConfig, TrainingHistory};
use medsplit_data::{partition, InMemoryDataset, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit_nn::{Architecture, LrSchedule, MlpConfig};
use medsplit_simnet::{ChaosTransport, FaultPlan, MemoryTransport, NodeId, StarTopology};

const CSV_HEADER: &str = "scenario,drop_p,quorum,rounds,final_accuracy,acc_vs_clean,total_bytes,\
                          bytes_vs_clean,retries,checksum_rejections,skipped_platforms,\
                          degraded_rounds,quorum_failures";

const PLATFORMS: usize = 4;

/// What a `resilience_bench` invocation measured, for the lab runner.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceBenchOutcome {
    /// CSV rows produced (scenarios swept).
    pub rows: usize,
    /// Final accuracy of the fault-free baseline run.
    pub clean_accuracy: f32,
    /// Total wire bytes of the fault-free baseline run.
    pub clean_bytes: u64,
}

struct Row {
    scenario: String,
    drop_p: f64,
    quorum: usize,
    rounds: usize,
    history: TrainingHistory,
    report: ResilienceReport,
}

fn data(seed: u64) -> (Vec<InMemoryDataset>, InMemoryDataset) {
    let gen = SyntheticTabular::new(3, 8, seed);
    let train = gen.generate(240).expect("train data");
    let test = SyntheticTabular::new(3, 8, seed + 1)
        .generate(60)
        .expect("test data");
    let shards = partition(&train, PLATFORMS, &Partition::Iid, seed).expect("shards");
    (shards, test)
}

fn arch() -> Architecture {
    Architecture::Mlp(MlpConfig {
        input_dim: 8,
        hidden: vec![16],
        num_classes: 3,
    })
}

fn config(rounds: usize, quorum: usize) -> SplitConfig {
    let mut cfg = SplitConfig {
        rounds,
        eval_every: rounds,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(10),
        ..SplitConfig::default()
    };
    cfg.round_policy.min_platforms = quorum;
    cfg
}

fn run_scenario(plan: FaultPlan, rounds: usize, quorum: usize) -> (TrainingHistory, ResilienceReport) {
    let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(PLATFORMS)), plan);
    let (shards, test) = data(11);
    let mut trainer =
        ResilientTrainer::new(&arch(), config(rounds, quorum), shards, test, &chaos).expect("trainer");
    let history = trainer.run().expect("resilient training run");
    (history, trainer.report())
}

/// The crash–rejoin scenario the CI gate asserts on: platform 1 is down
/// for rounds `[crash, recover)` and rejoins from its checkpoint.
fn crash_plan(drop_p: f64, crash: u64, recover: u64) -> FaultPlan {
    FaultPlan::new(77)
        .with_drop(drop_p)
        .crash(NodeId::Platform(1), crash)
        .recover(NodeId::Platform(1), recover)
}

fn to_report(rows: &[Row], clean_acc: f32, clean_bytes: u64) -> ReportWriter {
    let mut report = ReportWriter::csv(CSV_HEADER);
    for r in rows {
        report.line(&format!(
            "{},{:.2},{},{},{:.4},{:+.4},{},{:.3},{},{},{},{},{}",
            r.scenario,
            r.drop_p,
            r.quorum,
            r.rounds,
            r.history.final_accuracy,
            r.history.final_accuracy - clean_acc,
            r.history.stats.total_bytes,
            r.history.stats.total_bytes as f64 / clean_bytes.max(1) as f64,
            r.report.retries,
            r.report.checksum_rejections,
            r.report.skipped_platform_rounds,
            r.history.degraded_rounds(),
            r.report.quorum_failures
        ));
    }
    report
}

fn smoke_asserts(rounds: usize) {
    // Gate 1: a quorum round under 10 % loss completes and stays close to
    // the fault-free accuracy.
    let (clean, _) = run_scenario(FaultPlan::new(77), rounds, 1);
    let (lossy, lossy_report) = run_scenario(FaultPlan::new(77).with_drop(0.10), rounds, 3);
    assert_eq!(lossy.records.len(), rounds, "lossy run must complete all rounds");
    assert!(lossy_report.retries > 0, "10% loss must exercise the retry path");
    assert!(
        lossy.final_accuracy >= clean.final_accuracy - 0.05,
        "lossy accuracy {} must be within 5 points of clean {}",
        lossy.final_accuracy,
        clean.final_accuracy
    );

    // Gate 2: the crash–rejoin scenario (no message loss, so the count is
    // exact) degrades precisely its crash window and nothing else.
    let (crash_hist, crash_report) = run_scenario(crash_plan(0.0, 3, 6), rounds, 1);
    assert_eq!(crash_report.crashes, 1);
    assert_eq!(crash_report.rejoins, 1);
    assert_eq!(
        crash_hist.degraded_rounds(),
        3,
        "rounds 3..6 and only those must be degraded"
    );
    for r in &crash_hist.records {
        let expected = if (3..6).contains(&r.round) {
            PLATFORMS - 1
        } else {
            PLATFORMS
        };
        assert_eq!(r.participants, expected, "round {} participants", r.round);
    }

    // Gate 3: a faulty run replays bit-identically from its seed.
    let plan = crash_plan(0.10, 3, 6).straggler(NodeId::Platform(2), 0.5);
    let (h1, r1) = run_scenario(plan.clone(), rounds, 2);
    let (h2, r2) = run_scenario(plan, rounds, 2);
    assert_eq!(r1, r2, "fault counters must replay identically");
    assert_eq!(h1.stats, h2.stats, "wire accounting must replay identically");
    assert_eq!(
        h1.final_accuracy.to_bits(),
        h2.final_accuracy.to_bits(),
        "weights must replay bit-identically"
    );
    println!("smoke asserts passed");
}

/// Runs the resilience sweep and returns the fault-free baseline figures.
pub fn run(args: &[String]) -> ResilienceBenchOutcome {
    let smoke = arg_present(args, "--smoke");
    let rounds: usize = arg_value(args, "--rounds")
        .map(|v| v.parse().expect("--rounds takes an integer"))
        .unwrap_or(if smoke { 12 } else { 40 });

    let mut rows = Vec::new();

    // Fault-free baseline first: every degradation is measured against it.
    let (clean_hist, clean_report) = run_scenario(FaultPlan::new(77), rounds, 1);
    let clean_acc = clean_hist.final_accuracy;
    let clean_bytes = clean_hist.stats.total_bytes;
    rows.push(Row {
        scenario: "clean".into(),
        drop_p: 0.0,
        quorum: 1,
        rounds,
        history: clean_hist,
        report: clean_report,
    });

    // Drop-rate × quorum sweep.
    let drops: &[f64] = if smoke { &[0.1] } else { &[0.05, 0.1, 0.2] };
    let quorums: &[usize] = if smoke { &[3] } else { &[1, 3] };
    for &drop_p in drops {
        for &quorum in quorums {
            let (history, report) = run_scenario(FaultPlan::new(77).with_drop(drop_p), rounds, quorum);
            rows.push(Row {
                scenario: "loss".into(),
                drop_p,
                quorum,
                rounds,
                history,
                report,
            });
        }
    }

    // Crash–rejoin: one platform down for a quarter of the run.
    let (crash, recover) = (rounds as u64 / 4, rounds as u64 / 2);
    let (history, report) = run_scenario(crash_plan(0.0, crash, recover), rounds, 1);
    rows.push(Row {
        scenario: format!("crash_rejoin_{crash}_{recover}"),
        drop_p: 0.0,
        quorum: 1,
        rounds,
        history,
        report,
    });

    // Kitchen sink: loss + crash + straggler, the acceptance scenario.
    let plan = crash_plan(0.10, crash, recover).straggler(NodeId::Platform(2), 0.5);
    let (history, report) = run_scenario(plan, rounds, 2);
    rows.push(Row {
        scenario: "loss_crash_straggler".into(),
        drop_p: 0.10,
        quorum: 2,
        rounds,
        history,
        report,
    });

    let report = to_report(&rows, clean_acc, clean_bytes);
    let path = report.write("resilience.csv").expect("write resilience.csv");
    println!("wrote {}", path.display());

    let mut table = TextTable::new(
        "resilience",
        &[
            "scenario", "drop", "quorum", "acc", "d_acc", "MB", "retries", "degraded",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.scenario.clone(),
            format!("{:.2}", r.drop_p),
            r.quorum.to_string(),
            format!("{:.3}", r.history.final_accuracy),
            format!("{:+.3}", r.history.final_accuracy - clean_acc),
            format!("{:.2}", r.history.stats.total_bytes as f64 / 1e6),
            r.report.retries.to_string(),
            r.history.degraded_rounds().to_string(),
        ]);
    }
    println!("{table}");

    if smoke {
        smoke_asserts(rounds);
    }
    ResilienceBenchOutcome {
        rows: rows.len(),
        clean_accuracy: clean_acc,
        clean_bytes,
    }
}
