//! Fig-4-style wire-codec frontier: bytes transmitted vs final accuracy
//! for the f32 / f16 / int8 smashed-data codecs, swept over model cut
//! widths and topologies.
//!
//! The paper's central result (Fig. 4) is the GB-transmitted-vs-accuracy
//! frontier for split training across geo-distributed platforms. This
//! bench reproduces that frontier for the codec axis: every point is a
//! fault-free split-training run whose four protocol messages
//! (activations, logits, logit grads, cut grads) are encoded with one
//! [`WireCodec`], and reports
//!
//!   - `wire_bytes`: what actually crossed the simulated WAN,
//!   - `logical_bytes`: what the same messages would have cost as
//!     uncompressed f32 payloads (identical across codecs for the same
//!     axes — asserted, since the protocol's shapes don't depend on the
//!     codec),
//!   - `wire_ratio`: `wire_bytes / logical_bytes`, the run's overall
//!     compression,
//!   - `final_accuracy`, so compression is priced in accuracy terms.
//!
//! Every point runs **twice** and both runs must produce the same
//! digest — fault-free runs under any codec are bit-identical on
//! replay. The harness further asserts, per (model, topology) pair:
//! int8 wire bytes ≤ 0.26× the f32 run's, f16 ≤ 0.55×, and int8 / f16
//! accuracy within [`ACC_TOL`] of the f32 run.
//!
//! Outputs:
//!   - `bench_results/codec_frontier.csv`,
//!   - `BENCH_codec.json` (repo root; `bench_results/` for `--smoke`)
//!     in the shared schema-v2 envelope.
//!
//! Usage:
//!   codec_bench [--smoke] [--rounds N]
//!
//! `--smoke` sweeps the wide-cut model on the star topology only (3
//! codecs, replayed = 6 runs) — small enough for CI, but the wide cut
//! is exactly the shape where the int8 ratio bound is meaningful.

use std::fmt::Write as _;

use crate::report::{arg_present, arg_value, bench_json, bench_json_path, write_result, TextTable};
use medsplit_core::{HierPolicy, HierResilientTrainer, ResilientTrainer, SplitConfig, WireCodec};
use medsplit_data::{partition, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit_nn::{Architecture, LrSchedule, MlpConfig};
use medsplit_simnet::{ChaosTransport, FaultPlan, HierTopology, MemoryTransport, StarTopology};
use medsplit_tensor::pool;

/// Accuracy band the lossy codecs must stay within of the f32 run on
/// the same axes. `experiments/codec_frontier.lab.toml` declares the
/// same tolerance as its `[gate.pct]` band.
pub const ACC_TOL: f32 = 0.10;

/// Acceptance bound: int8 wire bytes as a fraction of the f32 run's.
const INT8_RATIO_BOUND: f64 = 0.26;
/// f16 halves every tensor payload; headers keep it just above 0.5.
const F16_RATIO_BOUND: f64 = 0.55;

const CSV_HEADER: &str =
    "codec,model,topology,rounds,final_accuracy,wire_bytes,logical_bytes,wire_ratio,messages,\
     replay_digest";

/// What a `codec_bench` invocation measured, for the lab runner.
#[derive(Debug, Clone)]
pub struct CodecBenchOutcome {
    /// Frontier points measured (each backed by two replayed runs).
    pub rows: usize,
    /// Per-point results: label (`codec_model_topology`), final
    /// accuracy, wire bytes, logical bytes.
    pub points: Vec<(String, f32, u64, u64)>,
    /// FNV-1a digest over every point's replayed run digest, in sweep
    /// order — one value that pins the whole frontier bit-for-bit.
    pub frontier_digest: u64,
}

/// The models swept: the cut-layer width is the knob that decides how
/// much of each message is tensor payload vs frame header, and the
/// paper's CNNs sit firmly on the wide side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelAxis {
    /// 128-wide cut layer, batch 64: WAN cost dominated by activation
    /// and gradient payloads (the Fig. 4 regime).
    WideCut,
    /// 16-wide cut layer, batch 10: header-heavy small messages, the
    /// unflattering regime for any codec.
    NarrowCut,
}

impl ModelAxis {
    fn name(self) -> &'static str {
        match self {
            ModelAxis::WideCut => "mlp_cut128",
            ModelAxis::NarrowCut => "mlp_cut16",
        }
    }

    fn architecture(self) -> Architecture {
        match self {
            ModelAxis::WideCut => Architecture::Mlp(MlpConfig {
                input_dim: 32,
                hidden: vec![128],
                num_classes: 3,
            }),
            ModelAxis::NarrowCut => Architecture::Mlp(MlpConfig {
                input_dim: 8,
                hidden: vec![16],
                num_classes: 3,
            }),
        }
    }

    fn input_dim(self) -> usize {
        match self {
            ModelAxis::WideCut => 32,
            ModelAxis::NarrowCut => 8,
        }
    }

    fn minibatch(self) -> usize {
        match self {
            ModelAxis::WideCut => 64,
            ModelAxis::NarrowCut => 10,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopoAxis {
    Star4,
    Hier2x2,
}

impl TopoAxis {
    fn name(self) -> &'static str {
        match self {
            TopoAxis::Star4 => "star4",
            TopoAxis::Hier2x2 => "hier2_2",
        }
    }
}

const CODECS: [(WireCodec, &str); 3] = [
    (WireCodec::F32, "f32"),
    (WireCodec::F16, "f16"),
    (WireCodec::Int8, "int8"),
];

/// One measured frontier point (already replay-checked).
struct Point {
    codec: &'static str,
    model: ModelAxis,
    topo: TopoAxis,
    rounds: u64,
    accuracy: f32,
    wire_bytes: u64,
    logical_bytes: u64,
    messages: u64,
    digest: u64,
}

impl Point {
    fn label(&self) -> String {
        format!("{}_{}_{}", self.codec, self.model.name(), self.topo.name())
    }
}

/// FNV-1a over a byte stream.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One fault-free split-training run; returns (accuracy, wire bytes,
/// logical bytes, messages, rounds completed, digest of all of those).
fn run_once(
    codec: WireCodec,
    model: ModelAxis,
    topo: TopoAxis,
    rounds: usize,
    seed: u64,
) -> Result<(f32, u64, u64, u64, u64, u64), String> {
    let platforms = 4usize;
    // Enough samples for one full minibatch per platform per round.
    let samples = platforms * model.minibatch();
    let train = SyntheticTabular::new(3, model.input_dim(), seed)
        .generate(samples)
        .map_err(|e| format!("train data: {e}"))?;
    let test = SyntheticTabular::new(3, model.input_dim(), seed + 1)
        .generate((samples / 4).max(8))
        .map_err(|e| format!("test data: {e}"))?;
    let shards = partition(&train, platforms, &Partition::Iid, seed).map_err(|e| format!("shards: {e}"))?;

    let config = SplitConfig {
        rounds,
        eval_every: rounds,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(model.minibatch()),
        seed,
        codec,
        ..SplitConfig::default()
    };
    let arch = model.architecture();
    let plan = FaultPlan::new(seed);

    let history = match topo {
        TopoAxis::Star4 => {
            let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(platforms)), plan);
            let mut trainer = ResilientTrainer::new(&arch, config, shards, test, &chaos)
                .map_err(|e| format!("trainer: {e}"))?;
            trainer.run().map_err(|e| format!("training: {e}"))?
        }
        TopoAxis::Hier2x2 => {
            let hier = HierTopology::new(2, 2);
            let chaos = ChaosTransport::new(MemoryTransport::new(hier.clone()), plan);
            let mut trainer =
                HierResilientTrainer::new(&arch, config, HierPolicy::default(), hier, shards, test, &chaos)
                    .map_err(|e| format!("trainer: {e}"))?;
            trainer.run().map_err(|e| format!("training: {e}"))?
        }
    };

    let stats = &history.stats;
    let completed = history.records.len() as u64;
    let mut d = 0xcbf2_9ce4_8422_2325u64;
    d = fnv1a(d, &history.final_accuracy.to_bits().to_le_bytes());
    d = fnv1a(d, &stats.total_bytes.to_le_bytes());
    d = fnv1a(d, &stats.logical_bytes.to_le_bytes());
    d = fnv1a(d, &stats.messages.to_le_bytes());
    d = fnv1a(d, &completed.to_le_bytes());
    for r in &history.records {
        // Rounds without an eval point digest as a fixed sentinel.
        let bits = r.accuracy.map_or(u32::MAX, f32::to_bits);
        d = fnv1a(d, &bits.to_le_bytes());
    }
    Ok((
        history.final_accuracy,
        stats.total_bytes,
        stats.logical_bytes,
        stats.messages,
        completed,
        d,
    ))
}

/// Measures one frontier point, running it twice and asserting replay
/// bit-identity (same seed → same digest).
fn measure(
    codec: WireCodec,
    codec_name: &'static str,
    model: ModelAxis,
    topo: TopoAxis,
    rounds: usize,
    seed: u64,
) -> Result<Point, String> {
    let first = run_once(codec, model, topo, rounds, seed)?;
    let second = run_once(codec, model, topo, rounds, seed)?;
    assert_eq!(
        first.5,
        second.5,
        "{codec_name} {} {} is not bit-identical on replay (digest {:016x} vs {:016x})",
        model.name(),
        topo.name(),
        first.5,
        second.5
    );
    Ok(Point {
        codec: codec_name,
        model,
        topo,
        rounds: first.4,
        accuracy: first.0,
        wire_bytes: first.1,
        logical_bytes: first.2,
        messages: first.3,
        digest: first.5,
    })
}

/// Per-(model, topology) frontier checks against the f32 reference run.
fn assert_frontier(points: &[Point]) {
    for p in points {
        let f32_ref = points
            .iter()
            .find(|q| q.codec == "f32" && q.model == p.model && q.topo == p.topo)
            .expect("every axis pair includes an f32 reference");
        // On the star every payload is a bare tensor frame, so the
        // logical (f32-equivalent) accounting sees through the codec and
        // must agree across runs. The hierarchical path wraps tensors in
        // relay envelopes the byte-accounting sniffer deliberately
        // passes through at wire size, so its logical column understates
        // compression — reported for the frontier, not shape-asserted.
        if p.topo == TopoAxis::Star4 {
            assert_eq!(
                p.logical_bytes,
                f32_ref.logical_bytes,
                "{} logical bytes diverged from the f32 run — star protocol shapes must not \
                 depend on codec",
                p.label()
            );
            assert_eq!(
                p.messages,
                f32_ref.messages,
                "{} message count diverged from the f32 run",
                p.label()
            );
        }
        let ratio = p.wire_bytes as f64 / f32_ref.wire_bytes as f64;
        match p.codec {
            // The acceptance bound holds where payloads dominate; the
            // narrow cut is reported for the frontier but not bounded.
            "int8" if p.model == ModelAxis::WideCut && p.topo == TopoAxis::Star4 => assert!(
                ratio <= INT8_RATIO_BOUND,
                "{} wire bytes are {ratio:.4}x the f32 run's, above the {INT8_RATIO_BOUND} bound",
                p.label()
            ),
            "f16" if p.model == ModelAxis::WideCut && p.topo == TopoAxis::Star4 => assert!(
                ratio <= F16_RATIO_BOUND,
                "{} wire bytes are {ratio:.4}x the f32 run's, above the {F16_RATIO_BOUND} bound",
                p.label()
            ),
            _ => {}
        }
        let acc_gap = (p.accuracy - f32_ref.accuracy).abs();
        assert!(
            acc_gap <= ACC_TOL,
            "{} accuracy {:.4} is {acc_gap:.4} away from the f32 run's {:.4} (tolerance {ACC_TOL})",
            p.label(),
            p.accuracy,
            f32_ref.accuracy
        );
    }
}

fn to_json(points: &[Point]) -> String {
    let mut results = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            results,
            "    {{\"codec\": \"{}\", \"model\": \"{}\", \"topology\": \"{}\", \
             \"rounds\": {}, \"final_accuracy\": {:.6}, \"wire_bytes\": {}, \
             \"logical_bytes\": {}, \"wire_ratio\": {:.6}, \"messages\": {}, \
             \"replay_digest\": \"{:016x}\"}}{}",
            p.codec,
            p.model.name(),
            p.topo.name(),
            p.rounds,
            p.accuracy,
            p.wire_bytes,
            p.logical_bytes,
            p.wire_bytes as f64 / p.logical_bytes as f64,
            p.messages,
            p.digest,
            comma
        );
    }
    results.push_str("  ]");
    bench_json(
        "codec_bench",
        &[
            ("acc_tolerance", format!("{ACC_TOL}")),
            ("int8_ratio_bound", format!("{INT8_RATIO_BOUND}")),
            ("results", results),
        ],
    )
}

/// Runs the codec frontier sweep and returns its measurements.
pub fn run(args: &[String]) -> CodecBenchOutcome {
    let smoke = arg_present(args, "--smoke");
    // Smoke keeps CI cheap; the full sweep trains long enough for the
    // frontier's accuracy axis to pull away from chance.
    let rounds: usize = arg_value(args, "--rounds")
        .map(|v| v.parse().expect("--rounds takes an integer"))
        .unwrap_or(if smoke { 6 } else { 24 });
    pool::set_num_threads(1);

    let (models, topos): (&[ModelAxis], &[TopoAxis]) = if smoke {
        (&[ModelAxis::WideCut], &[TopoAxis::Star4])
    } else {
        (
            &[ModelAxis::WideCut, ModelAxis::NarrowCut],
            &[TopoAxis::Star4, TopoAxis::Hier2x2],
        )
    };

    let mut points = Vec::new();
    for &model in models {
        for &topo in topos {
            for (codec, name) in CODECS {
                eprintln!("[codec_bench] {name} {} {} x2 ...", model.name(), topo.name());
                points.push(
                    measure(codec, name, model, topo, rounds, 42)
                        .unwrap_or_else(|e| panic!("{name} {} {}: {e}", model.name(), topo.name())),
                );
            }
        }
    }
    assert_frontier(&points);

    let mut csv = String::from(CSV_HEADER);
    csv.push('\n');
    let mut table = TextTable::new(
        "codec frontier (bytes transmitted vs accuracy)",
        &[
            "codec",
            "model",
            "topology",
            "accuracy",
            "wire B",
            "logical B",
            "ratio",
            "msgs",
        ],
    );
    let mut frontier_digest = 0xcbf2_9ce4_8422_2325u64;
    for p in &points {
        let ratio = p.wire_bytes as f64 / p.logical_bytes as f64;
        let _ = writeln!(
            csv,
            "{},{},{},{},{:.6},{},{},{:.6},{},{:016x}",
            p.codec,
            p.model.name(),
            p.topo.name(),
            p.rounds,
            p.accuracy,
            p.wire_bytes,
            p.logical_bytes,
            ratio,
            p.messages,
            p.digest
        );
        table.row(vec![
            p.codec.to_string(),
            p.model.name().to_string(),
            p.topo.name().to_string(),
            format!("{:.4}", p.accuracy),
            p.wire_bytes.to_string(),
            p.logical_bytes.to_string(),
            format!("{ratio:.3}"),
            p.messages.to_string(),
        ]);
        frontier_digest = fnv1a(frontier_digest, &p.digest.to_le_bytes());
    }

    let csv_path = write_result("codec_frontier.csv", &csv).expect("write codec_frontier.csv");
    let json_path = bench_json_path("BENCH_codec.json", smoke);
    std::fs::write(&json_path, to_json(&points)).expect("write BENCH_codec.json");

    println!("{table}");
    println!("wrote {} and {}", csv_path.display(), json_path.display());
    if smoke {
        println!(
            "smoke OK: {} points replay-stable, int8 <= {INT8_RATIO_BOUND}x f32 wire bytes, \
             accuracy within {ACC_TOL}",
            points.len()
        );
    }
    CodecBenchOutcome {
        rows: points.len(),
        points: points
            .iter()
            .map(|p| (p.label(), p.accuracy, p.wire_bytes, p.logical_bytes))
            .collect(),
        frontier_digest,
    }
}
