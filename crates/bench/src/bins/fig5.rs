//! Fig. 5: the split-point sweep — per-round communication and privacy
//! leakage (distance correlation, linear-attacker R²) as the cut moves
//! deeper into the network.
//!
//! Usage:
//!   fig5 [--quick]

use crate::experiments::{fig5_run, fig5_table, vgg_lite_cuts, Scale};
use crate::report::{arg_present, write_result};

/// Runs the fig5 split-point sweep.
pub fn run(args: &[String]) {
    let mut scale = if arg_present(args, "--quick") {
        Scale::quick()
    } else {
        Scale::full()
    };
    // Leakage probing does not need long training; cap the rounds.
    scale.rounds = scale.rounds.min(100);
    let cuts = vgg_lite_cuts();
    eprintln!("[fig5] sweeping cuts {cuts:?} ({scale:?})...");
    let points = fig5_run(scale, &cuts, 42).expect("fig5 failed");
    let table = fig5_table(&points);
    println!("{table}");
    let path = write_result("fig5.csv", &table.to_csv()).expect("write results");
    eprintln!("[fig5] wrote {}", path.display());
}
