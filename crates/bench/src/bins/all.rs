//! Every experiment in sequence — the one-command reproduction.
//!
//! Usage:
//!   all [--quick] [--full]
//!
//! Defaults to `--quick` (a few minutes); `--full` reproduces the numbers
//! in EXPERIMENTS.md (tens of minutes on one core).

use crate::experiments::{
    fig4_run, fig4_table, fig5_run, fig5_table, fig6_run, fig6_table, fig7_run, fig7_table, fig8_sweep,
    fig8_table, table1, table2_run, table2_table, table3_run, table3_table, table4_run, table4_table,
    vgg_lite_cuts, Scale,
};
use crate::report::{arg_present, write_result};
use crate::workload::{DatasetKind, ModelKind};

/// Runs every experiment at quick or full scale.
pub fn run(args: &[String]) {
    let full = arg_present(args, "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    // Quick runs must not clobber the published full-scale CSVs.
    if !full && std::env::var_os("MEDSPLIT_RESULTS_DIR").is_none() {
        std::env::set_var("MEDSPLIT_RESULTS_DIR", "bench_results/quick");
    }
    eprintln!("[all] running every experiment at {scale:?}\n");

    let t1 = table1(scale.platforms.max(2), 32);
    println!("{t1}");
    write_result("table1.csv", &t1.to_csv()).expect("write");

    for model in [ModelKind::Vgg, ModelKind::ResNet] {
        for dataset in [DatasetKind::C10, DatasetKind::C100] {
            let histories = fig4_run(model, dataset, scale, 42).expect("fig4");
            let table = fig4_table(model, dataset, &histories);
            println!("{table}");
            write_result(
                &format!("fig4_{}_{}_summary.csv", model.name(), dataset.name()),
                &table.to_csv(),
            )
            .expect("write");
        }
    }

    let t2 = table2_run(scale, 0.3, 42).expect("table2");
    let t2t = table2_table(0.3, &t2);
    println!("{t2t}");
    write_result("table2.csv", &t2t.to_csv()).expect("write");

    let f5 = fig5_run(scale, &vgg_lite_cuts(), 42).expect("fig5");
    let f5t = fig5_table(&f5);
    println!("{f5t}");
    write_result("fig5.csv", &f5t.to_csv()).expect("write");

    let counts: Vec<usize> = if full { vec![1, 2, 4, 8, 16] } else { vec![1, 2, 4] };
    let f6 = fig6_run(scale, &counts, 42).expect("fig6");
    let f6t = fig6_table(&f6);
    println!("{f6t}");
    write_result("fig6.csv", &f6t.to_csv()).expect("write");

    let t3 = table3_run(scale, 0.5, 42).expect("table3");
    let t3t = table3_table(0.5, &t3);
    println!("{t3t}");
    write_result("table3.csv", &t3t.to_csv()).expect("write");

    let t4 = table4_run(scale, 42).expect("table4");
    let t4t = table4_table(&t4);
    println!("{t4t}");
    write_result("table4.csv", &t4t.to_csv()).expect("write");

    let f7 = fig7_run(scale, &[0.0, 1.0, 2.0, 4.0], 42).expect("fig7");
    let f7t = fig7_table(&f7);
    println!("{f7t}");
    write_result("fig7.csv", &f7t.to_csv()).expect("write");

    let f8 = fig8_sweep(ModelKind::Vgg, 10, 32, &[10.0, 100.0, 1000.0, 10_000.0]);
    let f8t = fig8_table(ModelKind::Vgg, &f8);
    println!("{f8t}");
    write_result("fig8.csv", &f8t.to_csv()).expect("write");

    eprintln!("[all] done — CSVs in bench_results/");
}
