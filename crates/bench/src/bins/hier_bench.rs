//! Hierarchy benchmark: star vs relay-hierarchy split training under
//! relay crashes and region partitions.
//!
//! Sweeps a fixed 8-platform workload over a flat star and 2-region /
//! 4-region relay hierarchies, each under a fault plan (fault-free,
//! relay crash mid-run, region partition, and both at once), and
//! reports wire bytes, simulated makespan, final accuracy, degraded
//! rounds and the hierarchy's failover counters.
//!
//! Outputs:
//!   - `bench_results/hier.csv` (or `$MEDSPLIT_RESULTS_DIR`).
//!
//! Usage:
//!   hier_bench [--smoke] [--rounds N]
//!
//! `--smoke` runs a reduced sweep and asserts the invariants CI gates
//! on: a relay crash re-homes its platforms without degrading a single
//! round, a region partition degrades exactly its window, faulty
//! hierarchical accuracy stays within tolerance of the fault-free
//! hierarchical run, and a replay from the same seed is bit-identical.

use crate::report::{arg_present, arg_value, ReportWriter, TextTable};
use medsplit_core::{
    HierPolicy, HierReport, HierResilientTrainer, ResilientTrainer, SplitConfig, TrainingHistory,
};
use medsplit_data::{partition, InMemoryDataset, MinibatchPolicy, Partition, SyntheticTabular};
use medsplit_nn::{Architecture, LrSchedule, MlpConfig};
use medsplit_simnet::{ChaosTransport, FaultPlan, HierTopology, MemoryTransport, StarTopology};

const CSV_HEADER: &str = "topology,scenario,rounds,final_accuracy,acc_vs_clean,total_bytes,\
                          bytes_vs_star,makespan_s,degraded_rounds,rehomes,direct_fallbacks,\
                          orphaned_platform_rounds,relay_batches,retries";

const PLATFORMS: usize = 8;
const SEED: u64 = 23;

/// What a `hier_bench` invocation measured, for the lab runner.
#[derive(Debug, Clone, Copy)]
pub struct HierBenchOutcome {
    /// CSV rows produced (topology × scenario points swept).
    pub rows: usize,
    /// Final accuracy of the fault-free 4-region hierarchical run.
    pub hier_clean_accuracy: f32,
    /// Total wire bytes of the fault-free flat-star baseline.
    pub star_clean_bytes: u64,
}

struct Row {
    topology: String,
    scenario: String,
    rounds: usize,
    history: TrainingHistory,
    hier: Option<HierReport>,
}

fn data(platforms: usize) -> (Vec<InMemoryDataset>, InMemoryDataset) {
    let gen = SyntheticTabular::new(3, 8, SEED);
    let train = gen.generate(240).expect("train data");
    let test = SyntheticTabular::new(3, 8, SEED + 1)
        .generate(60)
        .expect("test data");
    let shards = partition(&train, platforms, &Partition::Iid, SEED).expect("shards");
    (shards, test)
}

fn arch() -> Architecture {
    Architecture::Mlp(MlpConfig {
        input_dim: 8,
        hidden: vec![16],
        num_classes: 3,
    })
}

fn config(rounds: usize) -> SplitConfig {
    let mut cfg = SplitConfig {
        rounds,
        eval_every: rounds,
        lr: LrSchedule::Constant(0.1),
        minibatch: MinibatchPolicy::Fixed(10),
        ..SplitConfig::default()
    };
    // Tolerate the injected faults: any quorum completes the round.
    cfg.round_policy.min_platforms = 1;
    cfg
}

fn run_star(plan: FaultPlan, rounds: usize) -> TrainingHistory {
    let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(PLATFORMS)), plan);
    let (shards, test) = data(PLATFORMS);
    let mut trainer =
        ResilientTrainer::new(&arch(), config(rounds), shards, test, &chaos).expect("star trainer");
    trainer.run().expect("star training run")
}

fn run_hier(topo: &HierTopology, plan: FaultPlan, rounds: usize) -> (TrainingHistory, HierReport) {
    let chaos = ChaosTransport::new(MemoryTransport::new(topo.clone()), plan);
    let (shards, test) = data(topo.platforms());
    let mut trainer = HierResilientTrainer::new(
        &arch(),
        config(rounds),
        HierPolicy::default(),
        topo.clone(),
        shards,
        test,
        &chaos,
    )
    .expect("hier trainer");
    let history = trainer.run().expect("hier training run");
    let report = trainer.report().clone();
    (history, report)
}

/// Relay 1 down for `[crash, recover)` — its region re-homes to relay 2.
fn relay_crash_plan(crash: u64, recover: u64) -> FaultPlan {
    FaultPlan::new(SEED)
        .crash_relay(1, crash)
        .recover_relay(1, recover)
}

/// Region 1 cut off from everything outside it for `[down, up)`.
fn partition_plan(topo: &HierTopology, down: u64, up: u64) -> FaultPlan {
    FaultPlan::new(SEED).partition_region(topo, 1, down, up)
}

fn to_report(rows: &[Row], clean_acc: f32, star_bytes: u64) -> ReportWriter {
    let mut report = ReportWriter::csv(CSV_HEADER);
    for r in rows {
        let hier = r.hier.clone().unwrap_or_default();
        report.line(&format!(
            "{},{},{},{:.4},{:+.4},{},{:.3},{:.3},{},{},{},{},{},{}",
            r.topology,
            r.scenario,
            r.rounds,
            r.history.final_accuracy,
            r.history.final_accuracy - clean_acc,
            r.history.stats.total_bytes,
            r.history.stats.total_bytes as f64 / star_bytes.max(1) as f64,
            r.history.stats.makespan_s,
            r.history.degraded_rounds(),
            hier.rehomes,
            hier.direct_fallbacks,
            hier.orphaned_platform_rounds,
            hier.relay_batches,
            hier.base.retries,
        ));
    }
    report
}

fn smoke_asserts(rounds: usize) {
    let (crash, recover) = (rounds as u64 / 4, rounds as u64 / 2);
    let topo = HierTopology::new(4, 2);

    // Gate 1: a relay crash re-homes its region to a backup relay —
    // zero degraded rounds, zero orphans, and exactly the crash
    // window's worth of re-homed platform-rounds.
    let (crashed, report) = run_hier(&topo, relay_crash_plan(crash, recover), rounds);
    assert_eq!(crashed.records.len(), rounds, "relay-crash run must complete");
    assert_eq!(
        crashed.degraded_rounds(),
        0,
        "failover must keep every round whole"
    );
    assert_eq!(report.orphaned_platform_rounds, 0);
    assert_eq!(
        report.rehomes,
        (recover - crash) * topo.per_region() as u64,
        "each platform of the crashed relay re-homes every window round"
    );

    // Gate 2: a partitioned region degrades exactly its window and the
    // rest of the fleet keeps training.
    let (parted, parted_report) = run_hier(&topo, partition_plan(&topo, crash, recover), rounds);
    assert_eq!(
        parted.degraded_rounds(),
        (recover - crash) as usize,
        "partition must degrade exactly its window"
    );
    assert_eq!(
        parted_report.orphaned_platform_rounds,
        (recover - crash) * topo.per_region() as u64
    );
    for r in &parted.records {
        let expected = if (crash..recover).contains(&(r.round as u64)) {
            topo.platforms() - topo.per_region()
        } else {
            topo.platforms()
        };
        assert_eq!(r.participants, expected, "round {} participants", r.round);
    }

    // Gate 3: faulty hierarchical accuracy stays within tolerance of
    // the fault-free hierarchical run.
    let (clean, _) = run_hier(&topo, FaultPlan::new(SEED), rounds);
    for (name, hist) in [("relay crash", &crashed), ("partition", &parted)] {
        assert!(
            hist.final_accuracy >= clean.final_accuracy - 0.10,
            "{name} accuracy {} must stay within 10 points of clean {}",
            hist.final_accuracy,
            clean.final_accuracy
        );
    }

    // Gate 4: the combined fault replays bit-identically from its seed.
    let plan = relay_crash_plan(crash, recover).partition_region(&topo, 1, crash + 1, recover + 1);
    let (h1, r1) = run_hier(&topo, plan.clone(), rounds);
    let (h2, r2) = run_hier(&topo, plan, rounds);
    assert_eq!(r1, r2, "failover counters must replay identically");
    assert_eq!(h1.stats, h2.stats, "wire accounting must replay identically");
    assert_eq!(
        h1.final_accuracy.to_bits(),
        h2.final_accuracy.to_bits(),
        "weights must replay bit-identically"
    );
    println!("smoke asserts passed");
}

/// Runs the star-vs-hierarchy sweep and returns the headline figures.
pub fn run(args: &[String]) -> HierBenchOutcome {
    let smoke = arg_present(args, "--smoke");
    let rounds: usize = arg_value(args, "--rounds")
        .map(|v| v.parse().expect("--rounds takes an integer"))
        .unwrap_or(if smoke { 12 } else { 40 });
    let (crash, recover) = (rounds as u64 / 4, rounds as u64 / 2);

    let mut rows = Vec::new();

    // Flat-star baseline: the byte and accuracy yardstick.
    let star_clean = run_star(FaultPlan::new(SEED), rounds);
    let star_bytes = star_clean.stats.total_bytes;
    let clean_acc = star_clean.final_accuracy;
    rows.push(Row {
        topology: "star8".into(),
        scenario: "clean".into(),
        rounds,
        history: star_clean,
        hier: None,
    });
    let star_crash = run_star(
        FaultPlan::new(SEED)
            .crash(medsplit_simnet::NodeId::Platform(1), crash)
            .recover(medsplit_simnet::NodeId::Platform(1), recover),
        rounds,
    );
    rows.push(Row {
        topology: "star8".into(),
        scenario: format!("crash_{crash}_{recover}"),
        rounds,
        history: star_crash,
        hier: None,
    });

    // Hierarchies over the same 8 platforms.
    let shapes: &[(usize, usize)] = if smoke { &[(4, 2)] } else { &[(2, 4), (4, 2)] };
    let mut hier_clean_accuracy = 0.0f32;
    for &(regions, per_region) in shapes {
        let topo = HierTopology::new(regions, per_region);
        let name = format!("hier{regions}_{per_region}");

        let (history, report) = run_hier(&topo, FaultPlan::new(SEED), rounds);
        hier_clean_accuracy = history.final_accuracy;
        rows.push(Row {
            topology: name.clone(),
            scenario: "clean".into(),
            rounds,
            history,
            hier: Some(report),
        });

        let (history, report) = run_hier(&topo, relay_crash_plan(crash, recover), rounds);
        rows.push(Row {
            topology: name.clone(),
            scenario: format!("relaycrash_{crash}_{recover}"),
            rounds,
            history,
            hier: Some(report),
        });

        let (history, report) = run_hier(&topo, partition_plan(&topo, crash, recover), rounds);
        rows.push(Row {
            topology: name.clone(),
            scenario: format!("partition_1_{crash}_{recover}"),
            rounds,
            history,
            hier: Some(report),
        });

        let plan = relay_crash_plan(crash, recover).partition_region(&topo, 1, crash + 1, recover + 1);
        let (history, report) = run_hier(&topo, plan, rounds);
        rows.push(Row {
            topology: name,
            scenario: "relaycrash+partition".into(),
            rounds,
            history,
            hier: Some(report),
        });
    }

    let report = to_report(&rows, clean_acc, star_bytes);
    let path = report.write("hier.csv").expect("write hier.csv");
    println!("wrote {}", path.display());

    let mut table = TextTable::new(
        "hier",
        &[
            "topology", "scenario", "acc", "d_acc", "MB", "makespan", "degraded", "rehomes", "orphaned",
        ],
    );
    for r in &rows {
        let hier = r.hier.clone().unwrap_or_default();
        table.row(vec![
            r.topology.clone(),
            r.scenario.clone(),
            format!("{:.3}", r.history.final_accuracy),
            format!("{:+.3}", r.history.final_accuracy - clean_acc),
            format!("{:.2}", r.history.stats.total_bytes as f64 / 1e6),
            format!("{:.1}", r.history.stats.makespan_s),
            r.history.degraded_rounds().to_string(),
            hier.rehomes.to_string(),
            hier.orphaned_platform_rounds.to_string(),
        ]);
    }
    println!("{table}");

    if smoke {
        smoke_asserts(rounds);
    }
    HierBenchOutcome {
        rows: rows.len(),
        hier_clean_accuracy,
        star_clean_bytes: star_bytes,
    }
}
