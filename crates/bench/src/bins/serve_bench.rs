//! Serving latency under load: sweeps the offered request rate for both
//! wire codecs and reports p50/p95/p99 end-to-end latency, wire bytes per
//! request, and goodput from the simulated clock.
//!
//! Usage:
//!   serve_bench [--quick]

use crate::report::{arg_present, write_result, TextTable};
use medsplit_core::{build_split, Platform, SplitPoint, SplitServer, WireCodec};
use medsplit_data::SyntheticTabular;
use medsplit_nn::{Architecture, MlpConfig};
use medsplit_serve::{serve_threaded, ServeConfig, ServeOutcome};
use medsplit_simnet::{MemoryTransport, StarTopology};
use medsplit_tensor::{init::rng_from_seed, Tensor};

const FEATURES: usize = 16;
const CLASSES: usize = 4;
const PLATFORMS: usize = 3;
const SEED: u64 = 42;

fn run_point(offered_rps: f64, codec: WireCodec, requests_per_platform: usize) -> ServeOutcome {
    let arch = Architecture::Mlp(MlpConfig::small(FEATURES, CLASSES));
    let model = build_split(&arch, SplitPoint::Default, SEED, PLATFORMS).expect("build split");
    let mut platforms = Vec::with_capacity(PLATFORMS);
    for (id, client) in model.clients.into_iter().enumerate() {
        let data = SyntheticTabular::new(CLASSES, FEATURES, SEED ^ id as u64)
            .generate(16)
            .expect("dataset");
        platforms.push(Platform::new(id, client, data, 4, 0.0, SEED));
    }
    let server = SplitServer::new(model.server, 0.0);

    let mut rng = rng_from_seed(SEED.wrapping_add(offered_rps as u64));
    let queries: Vec<Vec<Tensor>> = (0..PLATFORMS)
        .map(|_| {
            (0..requests_per_platform)
                .map(|_| Tensor::rand_uniform([1, FEATURES], -1.0, 1.0, &mut rng))
                .collect()
        })
        .collect();

    let topology = StarTopology::new(PLATFORMS);
    let transport = MemoryTransport::new(topology.clone());
    let cfg = ServeConfig {
        max_batch: 8,
        max_wait_s: 0.010,
        queue_capacity: 64,
        deadline_s: f64::INFINITY,
        offered_rps,
        batch_setup_s: 0.002,
        per_item_s: 0.001,
        codec,
    };
    serve_threaded(platforms, server, queries, &topology, &cfg, &transport).expect("serving run")
}

/// Runs the serving latency sweep.
pub fn run(args: &[String]) {
    let requests_per_platform = if arg_present(args, "--quick") { 50 } else { 300 };
    // Record which kernel ISA actually served the sweep (honours
    // MEDSPLIT_ISA), so A/B result files are self-describing.
    let isa = medsplit_tensor::simd::active_isa().name();
    let loads: &[f64] = &[25.0, 50.0, 100.0, 200.0, 400.0, 800.0];

    let mut table = TextTable::new(
        "Serving latency vs offered load (3 platforms, WAN links)",
        &[
            "isa",
            "codec",
            "offered_rps",
            "completed",
            "rejected",
            "timed_out",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "req_bytes",
            "resp_bytes",
            "goodput_rps",
        ],
    );
    for &codec in &[WireCodec::F32, WireCodec::F16] {
        for &load in loads {
            eprintln!("[serve_bench] codec {codec:?}, offered {load} req/s per platform...");
            let outcome = run_point(load, codec, requests_per_platform);
            let r = &outcome.report;
            let lat = r.latency.as_ref();
            let ms = |s: Option<f64>| s.map_or_else(|| "-".into(), |v| format!("{:.2}", v * 1e3));
            table.row(vec![
                isa.to_string(),
                format!("{codec:?}"),
                format!("{load:.0}"),
                r.completed.to_string(),
                r.rejected.to_string(),
                r.timed_out.to_string(),
                ms(lat.map(|l| l.p50_s)),
                ms(lat.map(|l| l.p95_s)),
                ms(lat.map(|l| l.p99_s)),
                format!("{:.1}", r.request_bytes_per_offered()),
                format!("{:.1}", r.response_bytes_per_offered()),
                format!("{:.1}", r.goodput_rps()),
            ]);
        }
    }
    println!("{table}");
    let path = write_result("serve_latency.csv", &table.to_csv()).expect("write results");
    eprintln!("[serve_bench] wrote {}", path.display());
}
