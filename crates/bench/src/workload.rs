//! Standard workloads for the experiments: dataset + architecture +
//! partitioning bundles, scaled by an experiment size knob.

use medsplit_core::{Result, SplitError};
use medsplit_data::{partition, InMemoryDataset, Partition, SyntheticImages, SyntheticTabular};
use medsplit_nn::{Architecture, MlpConfig, ResNetConfig, VggConfig};

/// Which CIFAR stand-in a vision workload uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// 10 classes (CIFAR-10-like).
    C10,
    /// 100 classes (CIFAR-100-like).
    C100,
}

impl DatasetKind {
    /// Number of classes.
    pub fn classes(&self) -> usize {
        match self {
            DatasetKind::C10 => 10,
            DatasetKind::C100 => 100,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::C10 => "cifar10-like",
            DatasetKind::C100 => "cifar100-like",
        }
    }

    /// Parses `"c10"` / `"c100"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "c10" | "cifar10" => Some(DatasetKind::C10),
            "c100" | "cifar100" => Some(DatasetKind::C100),
            _ => None,
        }
    }
}

/// Which model family a vision workload trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// VGG family.
    Vgg,
    /// ResNet family.
    ResNet,
}

impl ModelKind {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Vgg => "vgg",
            ModelKind::ResNet => "resnet",
        }
    }

    /// Parses `"vgg"` / `"resnet"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "vgg" => Some(ModelKind::Vgg),
            "resnet" => Some(ModelKind::ResNet),
            _ => None,
        }
    }

    /// The CPU-trainable (lite) architecture for this family.
    pub fn lite_arch(&self, classes: usize) -> Architecture {
        match self {
            ModelKind::Vgg => Architecture::Vgg(VggConfig::lite(classes)),
            ModelKind::ResNet => Architecture::ResNet(ResNetConfig::lite(classes)),
        }
    }

    /// The paper-size architecture for this family (analytic accounting
    /// only).
    pub fn full_arch(&self, classes: usize) -> Architecture {
        match self {
            ModelKind::Vgg => Architecture::Vgg(VggConfig::vgg16(classes)),
            ModelKind::ResNet => Architecture::ResNet(ResNetConfig::resnet18(classes)),
        }
    }
}

/// A prepared vision workload: architecture, platform shards and test set.
#[derive(Debug)]
pub struct VisionWorkload {
    /// The architecture to train.
    pub arch: Architecture,
    /// Per-platform training shards.
    pub shards: Vec<InMemoryDataset>,
    /// Shared test set.
    pub test: InMemoryDataset,
    /// Dataset kind.
    pub dataset: DatasetKind,
    /// Model kind.
    pub model: ModelKind,
}

/// Builds a vision workload on the lite (trainable) scale.
///
/// # Errors
///
/// Propagates generation/partitioning errors.
pub fn vision_workload(
    model: ModelKind,
    dataset: DatasetKind,
    platforms: usize,
    train_n: usize,
    test_n: usize,
    how: &Partition,
    seed: u64,
) -> Result<VisionWorkload> {
    let classes = dataset.classes();
    let gen = SyntheticImages::lite(classes, seed);
    let (train, test) = gen.generate_split(train_n, test_n).map_err(SplitError::from)?;
    let shards = partition(&train, platforms, how, seed ^ 0xDEAD).map_err(SplitError::from)?;
    Ok(VisionWorkload {
        arch: model.lite_arch(classes),
        shards,
        test,
        dataset,
        model,
    })
}

/// Builds a tabular (MLP) workload, used by the scalability and imbalance
/// experiments.
///
/// # Errors
///
/// Propagates generation/partitioning errors.
pub fn tabular_workload(
    platforms: usize,
    train_n: usize,
    test_n: usize,
    how: &Partition,
    seed: u64,
) -> Result<(Architecture, Vec<InMemoryDataset>, InMemoryDataset)> {
    let classes = 4;
    let dim = 16;
    // Class separation below the noise level keeps the task non-trivial,
    // so accuracy contrasts between policies/methods stay visible.
    let mut gen = SyntheticTabular::new(classes, dim, seed);
    gen.separation = 0.5;
    let all = gen.generate(train_n + test_n).map_err(SplitError::from)?;
    let train = all
        .subset(&(0..train_n).collect::<Vec<_>>())
        .map_err(SplitError::from)?;
    let test = all
        .subset(&(train_n..train_n + test_n).collect::<Vec<_>>())
        .map_err(SplitError::from)?;
    let shards = partition(&train, platforms, how, seed ^ 0xBEEF).map_err(SplitError::from)?;
    let arch = Architecture::Mlp(MlpConfig {
        input_dim: dim,
        hidden: vec![64, 32],
        num_classes: classes,
    });
    Ok((arch, shards, test))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_and_model_parsing() {
        assert_eq!(DatasetKind::parse("c10"), Some(DatasetKind::C10));
        assert_eq!(DatasetKind::parse("cifar100"), Some(DatasetKind::C100));
        assert_eq!(DatasetKind::parse("mnist"), None);
        assert_eq!(ModelKind::parse("vgg"), Some(ModelKind::Vgg));
        assert_eq!(ModelKind::parse("resnet"), Some(ModelKind::ResNet));
        assert_eq!(ModelKind::parse("lstm"), None);
        assert_eq!(DatasetKind::C100.classes(), 100);
    }

    #[test]
    fn vision_workload_is_consistent() {
        let w = vision_workload(ModelKind::Vgg, DatasetKind::C10, 3, 60, 20, &Partition::Iid, 0).unwrap();
        assert_eq!(w.shards.len(), 3);
        assert_eq!(w.shards.iter().map(|s| s.len()).sum::<usize>(), 60);
        assert_eq!(w.test.len(), 20);
        assert_eq!(w.arch.num_classes(), 10);
        assert_eq!(w.arch.input_dims(), vec![3, 16, 16]);
    }

    #[test]
    fn full_arch_is_paper_scale() {
        assert!(ModelKind::Vgg.full_arch(10).param_count() > 10_000_000);
        assert!(ModelKind::ResNet.full_arch(10).param_count() > 10_000_000);
        // Lite arch parameter count dominates its cut activation size
        // (the relationship Fig. 4 depends on).
        let lite = ModelKind::Vgg.lite_arch(10);
        if let Architecture::Vgg(cfg) = &lite {
            assert!(lite.param_count() > 10 * cfg.cut_activation_numel());
        } else {
            panic!("expected vgg");
        }
    }

    #[test]
    fn tabular_workload_builds() {
        let (arch, shards, test) = tabular_workload(4, 80, 20, &Partition::Iid, 1).unwrap();
        assert_eq!(shards.len(), 4);
        assert_eq!(test.len(), 20);
        assert_eq!(arch.family(), "mlp");
    }
}
