//! Plain-text tables, schema-asserted CSV, and the shared `BENCH_*.json`
//! envelope for the experiment binaries.

use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (no alignment padding).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// A CSV emitter with a declared schema: the header is fixed at
/// construction and every row is asserted to match its arity, so schema
/// drift dies in the bin that caused it rather than in a downstream
/// parser. All bench binaries route their CSV output through this (or
/// through [`TextTable`], which asserts the same invariant per row).
#[derive(Debug, Clone)]
pub struct ReportWriter {
    header: String,
    columns: usize,
    lines: Vec<String>,
}

impl ReportWriter {
    /// Starts a CSV report with the given comma-separated header.
    pub fn csv(header: &str) -> Self {
        let columns = header.split(',').count();
        ReportWriter {
            header: header.to_string(),
            columns,
            lines: Vec::new(),
        }
    }

    /// Builds a report from a [`TextTable`]'s header and rows.
    pub fn from_table(table: &TextTable) -> Self {
        let csv = table.to_csv();
        let mut lines = csv.lines();
        let mut out = ReportWriter::csv(lines.next().unwrap_or_default());
        for line in lines {
            out.line(line);
        }
        out
    }

    /// Appends one row of cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header arity.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns,
            "CSV row arity mismatch against header {:?}",
            self.header
        );
        self.lines.push(cells.join(","));
        self
    }

    /// Appends one pre-joined CSV line.
    ///
    /// # Panics
    ///
    /// Panics if the line's field count does not match the header arity.
    pub fn line(&mut self, line: &str) -> &mut Self {
        assert_eq!(
            line.split(',').count(),
            self.columns,
            "CSV line arity mismatch: {line}"
        );
        self.lines.push(line.to_string());
        self
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.lines.len()
    }

    /// Whether the report has no data rows.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Renders the report as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.clone();
        out.push('\n');
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Writes the report under the results directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, filename: &str) -> io::Result<PathBuf> {
        write_result(filename, &self.to_csv())
    }
}

/// Version of the committed `BENCH_*.json` schema (v2 added the
/// `schema_version` / `host` / `generated_by` / `generated_utc`
/// envelope).
pub const BENCH_JSON_SCHEMA_VERSION: u32 = 2;

/// The lab run id this process is executing under, or `"standalone"`
/// when invoked directly rather than through `lab run`.
pub fn lab_run_id() -> String {
    std::env::var("MEDSPLIT_LAB_RUN_ID").unwrap_or_else(|_| "standalone".to_string())
}

/// Renders the shared `BENCH_*.json` envelope: schema version, bench
/// name, provenance (lab run id + UTC timestamp), and the host
/// fingerprint, followed by the bench-specific body fields. Body values
/// must be pre-rendered JSON (strings quoted, arrays bracketed).
pub fn bench_json(bench: &str, body: &[(&str, String)]) -> String {
    let host = medsplit_lab::fingerprint();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": {BENCH_JSON_SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"bench\": \"{bench}\",");
    let _ = writeln!(json, "  \"generated_by\": \"{}\",", lab_run_id());
    let _ = writeln!(json, "  \"generated_utc\": \"{}\",", medsplit_lab::utc_now());
    let _ = writeln!(json, "  \"host\": {},", host.to_inline_json());
    for (i, (key, value)) in body.iter().enumerate() {
        let comma = if i + 1 == body.len() { "" } else { "," };
        let _ = writeln!(json, "  \"{key}\": {value}{comma}");
    }
    json.push_str("}\n");
    json
}

/// Where a `BENCH_*.json` lands: smoke runs keep it next to the CSVs in
/// the results dir so they never clobber the committed full-sweep file
/// at the repo root.
pub fn bench_json_path(filename: &str, smoke: bool) -> PathBuf {
    if smoke {
        results_dir().join(filename)
    } else {
        PathBuf::from(filename)
    }
}

/// The directory experiment outputs are written to.
pub fn results_dir() -> PathBuf {
    std::env::var_os("MEDSPLIT_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench_results"))
}

/// Writes `content` under the results directory, creating it if needed.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_result(filename: &str, content: &str) -> io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(filename);
    fs::write(&path, content)?;
    Ok(path)
}

/// Formats bytes as a human-friendly quantity (KB/MB/GB, base 10).
pub fn human_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{bytes} B")
    }
}

/// Reads a `--flag value` style argument from a raw arg list.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare `--flag` is present.
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Ensures a parent results path exists relative to a file path (test
/// helper re-exported for the bins).
pub fn ensure_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_csv() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        let text = t.to_string();
        assert!(text.contains("== demo =="));
        assert!(text.contains("alpha"));
        let csv = t.to_csv();
        assert_eq!(csv, "name,value\nalpha,1\nb,22222\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        TextTable::new("x", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn human_bytes_ranges() {
        assert_eq!(human_bytes(12), "12 B");
        assert_eq!(human_bytes(1_500), "1.50 KB");
        assert_eq!(human_bytes(2_000_000), "2.00 MB");
        assert_eq!(human_bytes(3_140_000_000), "3.14 GB");
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--model", "resnet", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--model").as_deref(), Some("resnet"));
        assert_eq!(arg_value(&args, "--dataset"), None);
        assert!(arg_present(&args, "--quick"));
        assert!(!arg_present(&args, "--full"));
    }

    #[test]
    fn report_writer_schema_assertion() {
        let mut w = ReportWriter::csv("a,b,c");
        w.row(&["1".into(), "2".into(), "3".into()]);
        w.line("4,5,6");
        assert_eq!(w.rows(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.to_csv(), "a,b,c\n1,2,3\n4,5,6\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn report_writer_rejects_short_row() {
        ReportWriter::csv("a,b,c").line("1,2");
    }

    #[test]
    fn report_writer_from_table() {
        let mut t = TextTable::new("x", &["k", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        let w = ReportWriter::from_table(&t);
        assert_eq!(w.to_csv(), "k,v\na,1\n");
    }

    #[test]
    fn bench_json_envelope_fields() {
        let json = bench_json(
            "demo",
            &[("isa", "\"scalar\"".to_string()), ("results", "[]".to_string())],
        );
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"generated_by\": "));
        assert!(json.contains("\"generated_utc\": "));
        assert!(json.contains("\"host\": {"));
        assert!(json.contains("\"isa\": \"scalar\""));
        // The envelope must be valid JSON end to end.
        assert!(medsplit_lab::json::parse(&json).is_ok());
    }

    #[test]
    fn write_result_creates_dir() {
        let _env = crate::testsync::ENV.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join(format!("medsplit-test-{}", std::process::id()));
        std::env::set_var("MEDSPLIT_RESULTS_DIR", &dir);
        let path = write_result("probe.csv", "a,b\n").unwrap();
        assert!(path.exists());
        std::env::remove_var("MEDSPLIT_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
