//! Plain-text tables and CSV output for the experiment binaries.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (no alignment padding).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// The directory experiment outputs are written to.
pub fn results_dir() -> PathBuf {
    std::env::var_os("MEDSPLIT_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench_results"))
}

/// Writes `content` under the results directory, creating it if needed.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_result(filename: &str, content: &str) -> io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(filename);
    fs::write(&path, content)?;
    Ok(path)
}

/// Formats bytes as a human-friendly quantity (KB/MB/GB, base 10).
pub fn human_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{bytes} B")
    }
}

/// Reads a `--flag value` style argument from a raw arg list.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare `--flag` is present.
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Ensures a parent results path exists relative to a file path (test
/// helper re-exported for the bins).
pub fn ensure_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_csv() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        let text = t.to_string();
        assert!(text.contains("== demo =="));
        assert!(text.contains("alpha"));
        let csv = t.to_csv();
        assert_eq!(csv, "name,value\nalpha,1\nb,22222\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        TextTable::new("x", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn human_bytes_ranges() {
        assert_eq!(human_bytes(12), "12 B");
        assert_eq!(human_bytes(1_500), "1.50 KB");
        assert_eq!(human_bytes(2_000_000), "2.00 MB");
        assert_eq!(human_bytes(3_140_000_000), "3.14 GB");
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--model", "resnet", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--model").as_deref(), Some("resnet"));
        assert_eq!(arg_value(&args, "--dataset"), None);
        assert!(arg_present(&args, "--quick"));
        assert!(!arg_present(&args, "--full"));
    }

    #[test]
    fn write_result_creates_dir() {
        let dir = std::env::temp_dir().join(format!("medsplit-test-{}", std::process::id()));
        std::env::set_var("MEDSPLIT_RESULTS_DIR", &dir);
        let path = write_result("probe.csv", "a,b\n").unwrap();
        assert!(path.exists());
        std::env::remove_var("MEDSPLIT_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
