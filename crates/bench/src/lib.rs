//! # medsplit-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! evaluation (see DESIGN.md §3 for the experiment index):
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `cargo run -p medsplit-bench --bin fig4 --release` | Fig. 4 panels (accuracy vs transmitted bytes) |
//! | `cargo run -p medsplit-bench --bin table1` | analytic full-size per-round costs |
//! | `cargo run -p medsplit-bench --bin table2 --release` | imbalance-mitigation ablation |
//! | `cargo run -p medsplit-bench --bin fig5 --release` | split-point sweep (bytes vs leakage) |
//! | `cargo run -p medsplit-bench --bin fig6 --release` | scalability with platform count |
//! | `cargo run -p medsplit-bench --bin table3 --release` | baseline landscape under non-IID |
//!
//! Every binary accepts `--quick` for a smoke-test scale and writes CSVs
//! under `bench_results/` (override with `MEDSPLIT_RESULTS_DIR`).
//! Criterion micro-benchmarks live under `benches/`.
//!
//! Each binary is a thin shim over [`bins`], so the `lab` orchestrator
//! (see `crates/lab` and the `lab` binary here) can run any experiment
//! in-process and capture structured outcomes; [`labrun`] is the bridge
//! that maps lab manifest points onto these experiment entry points.

#![warn(missing_docs)]

pub mod bins;
pub mod experiments;
pub mod labrun;
pub mod report;
pub mod workload;

#[cfg(test)]
pub(crate) mod testsync {
    use std::sync::Mutex;

    /// Serializes tests that mutate process environment variables
    /// (`MEDSPLIT_RESULTS_DIR`) so they cannot race each other.
    pub static ENV: Mutex<()> = Mutex::new(());
}
