//! The fault-tolerant split-learning driver: quorum rounds, retry with
//! exponential backoff, checksum-verified delivery, and crash–rejoin
//! recovery from checkpoints, driven over a deterministic
//! [`ChaosTransport`].
//!
//! The recovery invariant is round-granular: **a platform participates
//! in a whole round or in none of it.** Activations are collected with
//! bounded retries and a per-platform deadline; whoever makes it into
//! the aggregate is then carried through the remaining three protocol
//! messages with reliable (retried) delivery, so the server's batch
//! layout can never be torn mid-round. Platforms that miss the cut — or
//! are crashed by a scheduled [`ChaosEvent`] — simply sit the round out
//! and rejoin at the next boundary from their last checkpoint.
//!
//! Everything is deterministic: the driver is single-threaded, iterates
//! platforms in id order, and all fault randomness comes from the
//! chaos transport's seeded RNG — two runs with equal configs and
//! equal fault plans produce bit-identical weights and histories.

use std::collections::BTreeMap;

use bytes::Bytes;
use medsplit_data::InMemoryDataset;
use medsplit_nn::{accuracy, Architecture};
use medsplit_simnet::{ChaosEvent, ChaosTransport, Envelope, MessageKind, NodeId, Transport};

use crate::config::{L1Sync, Scheduling, SplitConfig};
use crate::error::{Result, SplitError};
use crate::history::{RoundRecord, TrainingHistory};
use crate::platform::Platform;
use crate::server::SplitServer;
use crate::trainer::build_actors;

/// Hard cap on delivery attempts for the within-round reliable path
/// (server ↔ committed survivor). At 10 % loss the odds of exhausting
/// this are ~1e-64; hitting the cap is reported as a protocol error
/// rather than a torn round.
const MAX_DELIVERY_ATTEMPTS: u32 = 64;

/// Counters describing how much fault handling a run actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Activation re-sends triggered by loss or corruption.
    pub retries: u64,
    /// Envelopes discarded because their payload checksum failed.
    pub checksum_rejections: u64,
    /// Valid-checksum envelopes discarded as duplicates, stale rounds,
    /// or unexpected kinds.
    pub stray_messages: u64,
    /// Platform-rounds skipped (live platform missed the deadline or
    /// ran out of retries). Crashed platforms are not counted here.
    pub skipped_platform_rounds: u64,
    /// Rounds that ran with fewer than the full platform count.
    pub degraded_rounds: u64,
    /// Rounds where the surviving set fell below quorum and the update
    /// was dropped entirely.
    pub quorum_failures: u64,
    /// Scheduled crash events applied.
    pub crashes: u64,
    /// Scheduled recover events applied (checkpoint restores).
    pub rejoins: u64,
}

/// Fault-tolerant counterpart of [`crate::SplitTrainer`], driving the
/// same actors over a [`ChaosTransport`] under the configured
/// [`RoundPolicy`](crate::RoundPolicy).
pub struct ResilientTrainer<'t, T: Transport> {
    config: SplitConfig,
    platforms: Vec<Platform>,
    server: SplitServer,
    chaos: &'t ChaosTransport<T>,
    test: InMemoryDataset,
    client_params: usize,
    server_params: usize,
    /// Pristine per-platform snapshots: what a crashed node is reset to
    /// before its checkpoint is restored (RAM is gone, disk survives).
    initial_snapshots: Vec<Bytes>,
    /// Last committed checkpoint per platform id.
    checkpoints: BTreeMap<usize, Bytes>,
    report: ResilienceReport,
}

impl<'t, T: Transport> ResilientTrainer<'t, T> {
    /// Builds the trainer over a chaos transport.
    ///
    /// # Errors
    ///
    /// Returns configuration errors for invalid configs, unsupported
    /// scheduling (the resilient driver implements the paper-default
    /// `Aggregate` + `CommonInit` combination), or a dirty transport.
    pub fn new(
        arch: &Architecture,
        config: SplitConfig,
        shards: Vec<InMemoryDataset>,
        test: InMemoryDataset,
        chaos: &'t ChaosTransport<T>,
    ) -> Result<Self> {
        config.validate().map_err(SplitError::Config)?;
        if config.scheduling != Scheduling::Aggregate {
            return Err(SplitError::Config(
                "resilient mode implements Aggregate scheduling".into(),
            ));
        }
        if config.l1_sync != L1Sync::CommonInit {
            return Err(SplitError::Config(
                "resilient mode implements CommonInit L1 sync".into(),
            ));
        }
        if chaos.stats().snapshot().messages > 0 {
            return Err(SplitError::Config(
                "transport has already been used; accounting would be polluted".into(),
            ));
        }
        let (mut platforms, server, client_params, server_params) = build_actors(arch, &config, shards)?;
        if config.round_policy.min_platforms > platforms.len() {
            return Err(SplitError::Config(format!(
                "quorum of {} exceeds the {} configured platforms",
                config.round_policy.min_platforms,
                platforms.len()
            )));
        }
        let initial_snapshots = platforms.iter_mut().map(Platform::checkpoint).collect();
        Ok(ResilientTrainer {
            config,
            platforms,
            server,
            chaos,
            test,
            client_params,
            server_params,
            initial_snapshots,
            checkpoints: BTreeMap::new(),
            report: ResilienceReport::default(),
        })
    }

    /// The fault-handling counters accumulated so far.
    pub fn report(&self) -> ResilienceReport {
        self.report
    }

    /// The platform actors (for inspection).
    pub fn platforms_mut(&mut self) -> &mut [Platform] {
        &mut self.platforms
    }

    /// Mean test accuracy over the currently *live* platforms' deployed
    /// models (crashed hospitals cannot serve).
    ///
    /// # Errors
    ///
    /// Propagates tensor errors.
    pub fn evaluate(&mut self) -> Result<f32> {
        const EVAL_BATCH: usize = 64;
        let mut total = 0.0;
        let mut counted = 0usize;
        for platform in &mut self.platforms {
            if self.chaos.is_down(platform.node()) {
                continue;
            }
            let mut correct_weighted = 0.0;
            let mut seen = 0usize;
            let n = self.test.len();
            let mut start = 0;
            while start < n {
                let count = EVAL_BATCH.min(n - start);
                let idx: Vec<usize> = (start..start + count).collect();
                let (features, labels) = self.test.batch(&idx)?;
                let acts = platform.infer_l1(&features)?;
                let logits = self.server.infer(&acts)?;
                correct_weighted += accuracy(&logits, &labels)? * count as f32;
                seen += count;
                start += count;
            }
            total += correct_weighted / seen.max(1) as f32;
            counted += 1;
        }
        Ok(total / counted.max(1) as f32)
    }

    fn count(name: &str, n: u64) {
        if n > 0 && medsplit_telemetry::enabled() {
            medsplit_telemetry::counter_add(name, n);
        }
    }

    /// Applies this round's scheduled chaos events: crashes wipe the
    /// actor back to its pristine state (RAM is lost), recoveries
    /// restore the last committed checkpoint (disk survives).
    fn apply_events(&mut self, events: &[ChaosEvent]) -> Result<()> {
        for event in events {
            match *event {
                ChaosEvent::Crash {
                    node: NodeId::Platform(pid),
                    ..
                } => {
                    self.report.crashes += 1;
                    Self::count("resilient.crashes", 1);
                    if let Some(p) = self.platforms.get_mut(pid) {
                        p.restore(&self.initial_snapshots[pid])?;
                    }
                }
                ChaosEvent::Recover {
                    node: NodeId::Platform(pid),
                    ..
                } => {
                    self.report.rejoins += 1;
                    Self::count("resilient.rejoins", 1);
                    if let (Some(p), Some(blob)) = (self.platforms.get_mut(pid), self.checkpoints.get(&pid)) {
                        p.restore(blob)?;
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Drains the server inbox into `received`, validating checksums and
    /// keeping the first well-formed envelope of `kind` per platform.
    fn drain_server(&mut self, round: u64, kind: MessageKind, received: &mut BTreeMap<usize, Envelope>) {
        while let Some(env) = self.chaos.try_recv(NodeId::Server) {
            if !env.verify_checksum() {
                self.report.checksum_rejections += 1;
                Self::count("resilient.checksum_rejections", 1);
                continue;
            }
            let pid = match env.src.platform_index() {
                Some(p) => p,
                None => {
                    self.report.stray_messages += 1;
                    continue;
                }
            };
            if env.kind != kind || env.round != round || received.contains_key(&pid) {
                self.report.stray_messages += 1;
                continue;
            }
            received.insert(pid, env);
        }
    }

    /// Collects activations from the live platforms: send, retry with
    /// backoff + jitter, and give up on stragglers past the deadline or
    /// out of retries. Returns the surviving `(pid → envelope)` map.
    fn collect_activations(
        &mut self,
        round: u64,
        live: &[usize],
        start_clocks: &BTreeMap<usize, f64>,
    ) -> Result<BTreeMap<usize, Envelope>> {
        let policy = self.config.round_policy;
        let stats = self.chaos.stats();
        // Cache every outbound envelope so a loss can be retried without
        // resampling the minibatch (the platform's round state must not
        // advance twice).
        let mut pending: BTreeMap<usize, Envelope> = BTreeMap::new();
        for &pid in live {
            let env = self.platforms[pid].start_round(round)?;
            pending.insert(pid, env.clone());
            self.chaos.send(env)?;
        }
        self.chaos.flush();

        let mut received: BTreeMap<usize, Envelope> = BTreeMap::new();
        let mut expired: Vec<usize> = Vec::new();
        for attempt in 0..=policy.max_retries {
            self.drain_server(round, MessageKind::Activations, &mut received);
            pending.retain(|pid, _| !received.contains_key(pid));
            // Deadline check on the simulated clock: a platform that has
            // fallen too far behind its own round start is skipped —
            // even if its late message eventually arrived, the round
            // cannot have waited for it.
            for &pid in live {
                if !expired.contains(&pid)
                    && stats.clock(NodeId::Platform(pid)) > start_clocks[&pid] + policy.deadline_s
                {
                    expired.push(pid);
                }
            }
            for pid in &expired {
                pending.remove(pid);
                received.remove(pid);
            }
            if pending.is_empty() || attempt == policy.max_retries {
                break;
            }
            // Retry the missing platforms after backing off: the wait and
            // the re-send both advance the sender's simulated clock.
            for (pid, env) in &pending {
                let delay = policy.backoff.delay_s(attempt) * self.chaos.backoff_jitter();
                stats.advance_clock(NodeId::Platform(*pid), delay);
                self.report.retries += 1;
                Self::count("resilient.retries", 1);
                self.chaos.send(env.clone())?;
            }
            self.chaos.flush();
        }
        self.drain_server(round, MessageKind::Activations, &mut received);
        for pid in &expired {
            received.remove(pid);
        }
        Ok(received)
    }

    /// Reliable server → platform delivery of one envelope: resend until
    /// a checksum-valid copy of the right kind arrives.
    fn deliver_to_platform(&mut self, env: Envelope, kind: MessageKind) -> Result<Envelope> {
        let (dst, round) = (env.dst, env.round);
        for _ in 0..MAX_DELIVERY_ATTEMPTS {
            self.chaos.send(env.clone())?;
            self.chaos.flush();
            while let Some(got) = self.chaos.try_recv(dst) {
                if !got.verify_checksum() {
                    self.report.checksum_rejections += 1;
                    Self::count("resilient.checksum_rejections", 1);
                    continue;
                }
                if got.kind == kind && got.round == round {
                    return Ok(got);
                }
                self.report.stray_messages += 1;
            }
            self.report.retries += 1;
            Self::count("resilient.retries", 1);
        }
        Err(SplitError::Protocol(format!(
            "reliable delivery of {kind} to {dst} exhausted {MAX_DELIVERY_ATTEMPTS} attempts"
        )))
    }

    /// Reliable platform → server delivery: resend until the server
    /// holds a checksum-valid envelope of `kind` from `pid`.
    fn deliver_to_server(&mut self, env: Envelope, pid: usize, kind: MessageKind) -> Result<Envelope> {
        let round = env.round;
        for _ in 0..MAX_DELIVERY_ATTEMPTS {
            self.chaos.send(env.clone())?;
            self.chaos.flush();
            let mut received = BTreeMap::new();
            self.drain_server(round, kind, &mut received);
            if let Some(got) = received.remove(&pid) {
                // Anything else drained alongside is not expected here:
                // committed survivors exchange strictly in id order.
                self.report.stray_messages += received.len() as u64;
                return Ok(got);
            }
            self.report.stray_messages += received.len() as u64;
            self.report.retries += 1;
            Self::count("resilient.retries", 1);
        }
        Err(SplitError::Protocol(format!(
            "reliable delivery of {kind} from platform {pid} exhausted {MAX_DELIVERY_ATTEMPTS} attempts"
        )))
    }

    /// One quorum round. Returns `(mean_loss, participants)`; a quorum
    /// failure yields `(0.0, survivors)` with no update applied.
    fn run_round(&mut self, round: u64) -> Result<(f32, usize)> {
        let policy = self.config.round_policy;
        let live: Vec<usize> = self
            .platforms
            .iter()
            .map(Platform::id)
            .filter(|&pid| !self.chaos.is_down(NodeId::Platform(pid)))
            .collect();
        let stats = self.chaos.stats();
        let start_clocks: BTreeMap<usize, f64> = live
            .iter()
            .map(|&pid| (pid, stats.clock(NodeId::Platform(pid))))
            .collect();

        let acts = self.collect_activations(round, &live, &start_clocks)?;
        let skipped = live.len() - acts.len();
        self.report.skipped_platform_rounds += skipped as u64;
        Self::count("resilient.skipped_platforms", skipped as u64);

        if acts.len() < policy.min_platforms {
            self.report.quorum_failures += 1;
            Self::count("resilient.quorum_failures", 1);
            return Ok((0.0, acts.len()));
        }

        // Re-normalise the imbalance-weighted minibatch contribution over
        // the survivors: the aggregate update must be the gradient of the
        // mean loss over the union batch that actually arrived.
        let survivor_batch: usize = acts.keys().map(|&pid| self.platforms[pid].batch_size()).sum();
        for &pid in acts.keys() {
            let share = self.platforms[pid].batch_size() as f32 / survivor_batch.max(1) as f32;
            self.platforms[pid].set_grad_scale(share);
        }

        let act_envs: Vec<Envelope> = acts.values().cloned().collect();
        let survivors: Vec<usize> = acts.keys().copied().collect();
        let mut losses = Vec::with_capacity(survivors.len());

        // Steps 2–5 run over the reliable path: the survivors are now
        // committed to the round, so the aggregate layout must complete.
        let mut grad_envs = Vec::with_capacity(survivors.len());
        for env in self.server.aggregate_forward(&act_envs)? {
            let pid = env
                .dst
                .platform_index()
                .ok_or_else(|| SplitError::Protocol("logits addressed to the server".into()))?;
            let logits = self.deliver_to_platform(env, MessageKind::Logits)?;
            let (grads, loss) = self.platforms[pid].handle_logits(&logits)?;
            losses.push(loss);
            grad_envs.push(self.deliver_to_server(grads, pid, MessageKind::LogitGrads)?);
        }
        for env in self.server.aggregate_backward(&grad_envs)? {
            let pid = env
                .dst
                .platform_index()
                .ok_or_else(|| SplitError::Protocol("cut grads addressed to the server".into()))?;
            let cut = self.deliver_to_platform(env, MessageKind::CutGrads)?;
            self.platforms[pid].handle_cut_grads(&cut)?;
        }

        // Commit: the survivors' post-update state becomes their rejoin
        // point.
        for &pid in &survivors {
            let blob = self.platforms[pid].checkpoint();
            self.checkpoints.insert(pid, blob);
        }

        // Charge this round's local compute to the simulated clocks.
        let compute = self.config.compute;
        for &pid in &survivors {
            let s = compute.seconds(
                compute.platform_s_per_msample,
                self.platforms[pid].batch_size(),
                self.client_params,
            );
            stats.advance_clock(NodeId::Platform(pid), s);
        }
        let s = compute.seconds(compute.server_s_per_msample, survivor_batch, self.server_params);
        stats.advance_clock(NodeId::Server, s);

        let mean_loss = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
        Ok((mean_loss, survivors.len()))
    }

    /// Runs the configured number of rounds under the fault plan and
    /// returns the history (method `"split_resilient"`).
    ///
    /// # Errors
    ///
    /// Propagates tensor and protocol errors; tolerated faults (loss,
    /// corruption, crashes within quorum) do not error.
    pub fn run(&mut self) -> Result<TrainingHistory> {
        let k = self.platforms.len();
        let mut records = Vec::with_capacity(self.config.rounds);
        for round in 0..self.config.rounds {
            let round_start = std::time::Instant::now();
            let events = self.chaos.begin_round(round as u64);
            self.apply_events(&events)?;

            let lr = self.config.lr.lr_at(round);
            for p in &mut self.platforms {
                p.set_lr(lr);
            }
            self.server.set_lr(lr);

            let (mean_loss, participants) = self.run_round(round as u64)?;
            let degraded = participants < k;
            if degraded {
                self.report.degraded_rounds += 1;
                Self::count("resilient.degraded_rounds", 1);
            }

            let eval_due = self.config.eval_every > 0 && (round + 1) % self.config.eval_every == 0;
            let accuracy = if eval_due { Some(self.evaluate()?) } else { None };
            let snap = self.chaos.stats().snapshot();
            records.push(RoundRecord {
                round,
                lr,
                mean_loss,
                cumulative_bytes: snap.total_bytes,
                simulated_time_s: snap.makespan_s,
                wall_time_s: round_start.elapsed().as_secs_f64(),
                participants,
                degraded,
                accuracy,
            });
        }
        let final_accuracy = match records.last().and_then(|r| r.accuracy) {
            Some(a) => a,
            None => {
                let a = self.evaluate()?;
                if let Some(last) = records.last_mut() {
                    last.accuracy = Some(a);
                }
                a
            }
        };
        Ok(TrainingHistory {
            method: "split_resilient".into(),
            records,
            final_accuracy,
            stats: self.chaos.stats().snapshot(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_data::{partition, MinibatchPolicy, Partition, SyntheticTabular};
    use medsplit_nn::{LrSchedule, MlpConfig};
    use medsplit_simnet::{FaultPlan, MemoryTransport, StarTopology};

    fn arch() -> Architecture {
        Architecture::Mlp(MlpConfig {
            input_dim: 8,
            hidden: vec![16],
            num_classes: 3,
        })
    }

    fn setup(platforms: usize) -> (Vec<InMemoryDataset>, InMemoryDataset) {
        let gen = SyntheticTabular::new(3, 8, 0);
        let train = gen.generate(160).unwrap();
        let test = SyntheticTabular::new(3, 8, 1).generate(40).unwrap();
        let shards = partition(&train, platforms, &Partition::Iid, 1).unwrap();
        (shards, test)
    }

    fn config(rounds: usize) -> SplitConfig {
        SplitConfig {
            rounds,
            eval_every: rounds,
            lr: LrSchedule::Constant(0.1),
            minibatch: MinibatchPolicy::Fixed(10),
            ..SplitConfig::default()
        }
    }

    fn run_with(plan: FaultPlan, rounds: usize, platforms: usize) -> (TrainingHistory, ResilienceReport) {
        let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(platforms)), plan);
        let (shards, test) = setup(platforms);
        let mut trainer = ResilientTrainer::new(&arch(), config(rounds), shards, test, &chaos).unwrap();
        let history = trainer.run().unwrap();
        (history, trainer.report())
    }

    #[test]
    fn healthy_run_matches_failure_free_semantics() {
        let (history, report) = run_with(FaultPlan::new(1), 30, 3);
        assert_eq!(history.method, "split_resilient");
        assert_eq!(history.records.len(), 30);
        assert_eq!(history.degraded_rounds(), 0);
        assert_eq!(report, ResilienceReport::default());
        assert!(
            history.final_accuracy > 0.6,
            "accuracy {}",
            history.final_accuracy
        );
        assert!(history.records.iter().all(|r| r.participants == 3));
    }

    #[test]
    fn ten_percent_loss_retries_and_still_learns() {
        let (history, report) = run_with(FaultPlan::new(7).with_drop(0.1), 30, 3);
        assert!(report.retries > 0, "10% loss must trigger retries");
        assert!(
            history.final_accuracy > 0.6,
            "accuracy {}",
            history.final_accuracy
        );
    }

    #[test]
    fn corruption_is_rejected_and_survived() {
        let (history, report) = run_with(FaultPlan::new(9).with_corrupt(0.1), 20, 3);
        assert!(report.checksum_rejections > 0);
        assert!(
            history.final_accuracy > 0.5,
            "accuracy {}",
            history.final_accuracy
        );
    }

    #[test]
    fn crash_rejoin_counts_degraded_rounds_exactly() {
        let plan = FaultPlan::new(3)
            .crash(NodeId::Platform(1), 5)
            .recover(NodeId::Platform(1), 9);
        let (history, report) = run_with(plan, 20, 3);
        assert_eq!(report.crashes, 1);
        assert_eq!(report.rejoins, 1);
        // Rounds 5..9 ran with 2 of 3 platforms — exactly 4 degraded.
        assert_eq!(history.degraded_rounds(), 4);
        for r in &history.records {
            let expected = if (5..9).contains(&r.round) { 2 } else { 3 };
            assert_eq!(r.participants, expected, "round {}", r.round);
        }
        assert!(
            history.final_accuracy > 0.5,
            "accuracy {}",
            history.final_accuracy
        );
    }

    #[test]
    fn straggler_past_deadline_is_skipped_every_round() {
        let plan = FaultPlan::new(5).straggler(NodeId::Platform(1), 5.0);
        let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(3)), plan);
        let (shards, test) = setup(3);
        let mut cfg = config(8);
        cfg.round_policy.deadline_s = 1.0;
        let mut trainer = ResilientTrainer::new(&arch(), cfg, shards, test, &chaos).unwrap();
        let history = trainer.run().unwrap();
        // The straggler pays 5 simulated seconds per send against a 1 s
        // deadline: it is skipped in every round, but training proceeds.
        assert_eq!(trainer.report().skipped_platform_rounds, 8);
        assert_eq!(history.degraded_rounds(), 8);
        assert!(history.records.iter().all(|r| r.participants == 2));
    }

    #[test]
    fn duplicates_and_reordering_do_not_change_converged_weights() {
        let run_weights = |plan: FaultPlan| {
            let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(3)), plan);
            let (shards, test) = setup(3);
            let mut trainer = ResilientTrainer::new(&arch(), config(12), shards, test, &chaos).unwrap();
            let history = trainer.run().unwrap();
            let weights: Vec<_> = trainer
                .platforms_mut()
                .iter_mut()
                .map(Platform::l1_parameters)
                .collect();
            (weights, history.final_accuracy.to_bits())
        };
        let (clean_w, clean_acc) = run_weights(FaultPlan::new(6));
        let (noisy_w, noisy_acc) = run_weights(FaultPlan::new(6).with_dup(0.3).with_reorder(0.3));
        // Duplicate and reordered delivery is absorbed by dedup and
        // pid-keyed collection: the learned weights are exactly equal.
        assert_eq!(clean_w, noisy_w);
        assert_eq!(clean_acc, noisy_acc);
    }

    #[test]
    fn quorum_failure_drops_the_update() {
        // Both platforms crash: every affected round is a quorum failure.
        let plan = FaultPlan::new(4)
            .crash(NodeId::Platform(0), 2)
            .crash(NodeId::Platform(1), 2)
            .recover(NodeId::Platform(0), 4)
            .recover(NodeId::Platform(1), 4);
        let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(2)), plan);
        let (shards, test) = setup(2);
        let mut cfg = config(6);
        cfg.round_policy.min_platforms = 2;
        let mut trainer = ResilientTrainer::new(&arch(), cfg, shards, test, &chaos).unwrap();
        let history = trainer.run().unwrap();
        assert_eq!(trainer.report().quorum_failures, 2);
        assert_eq!(history.degraded_rounds(), 2);
        assert!(history.records[2].participants == 0 && history.records[3].participants == 0);
    }

    #[test]
    fn replays_bit_identically() {
        let plan = FaultPlan::new(42)
            .with_drop(0.1)
            .with_corrupt(0.05)
            .with_dup(0.05)
            .crash(NodeId::Platform(2), 4)
            .recover(NodeId::Platform(2), 8);
        let (h1, r1) = run_with(plan.clone(), 15, 3);
        let (h2, r2) = run_with(plan, 15, 3);
        assert_eq!(r1, r2);
        // Everything except host wall time must replay bit-identically.
        let key = |h: &TrainingHistory| -> Vec<_> {
            h.records
                .iter()
                .map(|r| {
                    (
                        r.round,
                        r.mean_loss.to_bits(),
                        r.cumulative_bytes,
                        r.simulated_time_s.to_bits(),
                        r.participants,
                        r.degraded,
                        r.accuracy.map(f32::to_bits),
                    )
                })
                .collect()
        };
        assert_eq!(key(&h1), key(&h2), "same seed ⇒ bit-identical history");
        assert_eq!(h1.stats, h2.stats);
        assert_eq!(h1.final_accuracy.to_bits(), h2.final_accuracy.to_bits());
    }

    #[test]
    fn quorum_larger_than_fleet_rejected() {
        let chaos = ChaosTransport::new(MemoryTransport::new(StarTopology::new(2)), FaultPlan::new(0));
        let (shards, test) = setup(2);
        let mut cfg = config(2);
        cfg.round_policy.min_platforms = 3;
        assert!(matches!(
            ResilientTrainer::new(&arch(), cfg, shards, test, &chaos),
            Err(SplitError::Config(_))
        ));
    }
}
