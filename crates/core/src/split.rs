//! Building the split replicas: identical `L1` prefixes per platform, one
//! server suffix.

use medsplit_nn::{Architecture, Layer, Sequential};

use crate::config::SplitPoint;
use crate::error::{Result, SplitError};

/// The two halves of a split network, pre-replicated for every platform.
#[derive(Debug)]
pub struct SplitModel {
    /// One `L1` prefix per platform — all initialised identically (the
    /// paper's "each platform has the same weights in L1").
    pub clients: Vec<Sequential>,
    /// The server-side suffix `L2..Lk`.
    pub server: Sequential,
    /// The resolved split layer index.
    pub split_index: usize,
    /// Trainable parameter count of one client prefix.
    pub client_params: usize,
    /// Trainable parameter count of the server suffix.
    pub server_params: usize,
}

/// Resolves a [`SplitPoint`] against an architecture.
///
/// # Errors
///
/// Returns [`SplitError::Config`] if an explicit index is 0 (nothing on
/// the platform ⇒ raw data would cross the network) or ≥ the layer count
/// (nothing on the server).
pub fn resolve_split(arch: &Architecture, split: SplitPoint) -> Result<usize> {
    let total_layers = arch.build(0).len();
    let idx = match split {
        SplitPoint::Default => arch.default_split(),
        SplitPoint::At(i) => i,
    };
    if idx == 0 {
        return Err(SplitError::Config(
            "split index 0 would send raw patient data to the server".into(),
        ));
    }
    if idx >= total_layers {
        return Err(SplitError::Config(format!(
            "split index {idx} leaves no layers on the server (model has {total_layers})"
        )));
    }
    Ok(idx)
}

/// Builds the split replicas: `platforms` identical client prefixes and
/// one server suffix, all from the same seed.
///
/// # Errors
///
/// Propagates [`resolve_split`] errors.
pub fn build_split(
    arch: &Architecture,
    split: SplitPoint,
    seed: u64,
    platforms: usize,
) -> Result<SplitModel> {
    let split_index = resolve_split(arch, split)?;
    let mut clients = Vec::with_capacity(platforms);
    for _ in 0..platforms {
        let mut full = arch.build(seed);
        let _server_part = full.split_off(split_index);
        clients.push(full);
    }
    let mut full = arch.build(seed);
    let server = full.split_off(split_index);
    let client_params = full.param_count();
    let mut server_model = server;
    let server_params = server_model.param_count();
    Ok(SplitModel {
        clients,
        server: server_model,
        split_index,
        client_params,
        server_params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_nn::vectorize::parameter_vector;
    use medsplit_nn::MlpConfig;

    fn arch() -> Architecture {
        Architecture::Mlp(MlpConfig {
            input_dim: 6,
            hidden: vec![10, 8],
            num_classes: 3,
        })
    }

    #[test]
    fn clients_are_identical() {
        let mut sm = build_split(&arch(), SplitPoint::Default, 7, 3).unwrap();
        let v0 = parameter_vector(&mut sm.clients[0]);
        for c in &mut sm.clients[1..] {
            assert_eq!(parameter_vector(c), v0);
        }
        assert_eq!(sm.split_index, 2);
        assert_eq!(sm.client_params, 6 * 10 + 10);
        assert_eq!(sm.server_params, 10 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn client_plus_server_is_whole_model() {
        let sm = build_split(&arch(), SplitPoint::Default, 7, 1).unwrap();
        assert_eq!(sm.client_params + sm.server_params, arch().param_count());
    }

    #[test]
    fn explicit_split_points() {
        let sm = build_split(&arch(), SplitPoint::At(4), 2, 2).unwrap();
        assert_eq!(sm.split_index, 4);
        assert_eq!(sm.clients[0].len(), 4);
        // MLP has 5 layers total: dense relu dense relu dense.
        assert_eq!(sm.server.len(), 1);
    }

    #[test]
    fn invalid_split_points_rejected() {
        assert!(matches!(
            build_split(&arch(), SplitPoint::At(0), 0, 1),
            Err(SplitError::Config(_))
        ));
        assert!(matches!(
            build_split(&arch(), SplitPoint::At(5), 0, 1),
            Err(SplitError::Config(_))
        ));
        assert!(build_split(&arch(), SplitPoint::At(4), 0, 1).is_ok());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = build_split(&arch(), SplitPoint::Default, 1, 1).unwrap();
        let mut b = build_split(&arch(), SplitPoint::Default, 2, 1).unwrap();
        assert_ne!(
            parameter_vector(&mut a.clients[0]),
            parameter_vector(&mut b.clients[0])
        );
    }
}
