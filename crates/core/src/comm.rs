//! Analytic per-round communication costs (Table 1).
//!
//! These are *exact* wire-byte formulas for the three protocol families,
//! computed from real tensor shapes via [`medsplit_tensor::serialized_len`]
//! plus the per-message framing of [`medsplit_simnet::HEADER_BYTES`] — the
//! same sizes the live transport would count, without running training.
//! This is how the full-size VGG-16/ResNet-18 numbers are produced on a
//! CPU budget.

use medsplit_simnet::HEADER_BYTES;
use medsplit_tensor::{serialized_len, Shape};

/// Wire bytes for one message carrying a tensor of `shape`.
pub fn message_bytes(shape: &Shape) -> u64 {
    (serialized_len(shape) + HEADER_BYTES) as u64
}

/// Wire bytes for one message carrying a flat vector of `numel` floats
/// (model parameters / gradients).
pub fn flat_message_bytes(numel: usize) -> u64 {
    message_bytes(&Shape::from([numel]))
}

/// Per-round wire bytes of the split-learning protocol.
///
/// Each platform `k` with minibatch `s_k` exchanges four messages per
/// round: activations up (`[s_k, act_dims]`), logits down
/// (`[s_k, classes]`), logit gradients up (same as logits), cut gradients
/// down (same as activations).
pub fn split_round_bytes(batch_sizes: &[usize], act_dims: &[usize], classes: usize) -> u64 {
    batch_sizes
        .iter()
        .map(|&s| {
            let mut act_shape = vec![s];
            act_shape.extend_from_slice(act_dims);
            let act = message_bytes(&Shape::from(act_shape.as_slice()));
            let logits = message_bytes(&Shape::from([s, classes]));
            2 * act + 2 * logits
        })
        .sum()
}

/// Per-round wire bytes of FedAvg: every platform downloads the full model
/// and uploads its updated weights (2 × model per platform per round).
pub fn fedavg_round_bytes(platforms: usize, param_count: usize) -> u64 {
    platforms as u64 * 2 * flat_message_bytes(param_count)
}

/// Per-round (per-step) wire bytes of large-scale synchronous SGD: every
/// platform downloads the model and uploads a full gradient vector.
pub fn sync_sgd_round_bytes(platforms: usize, param_count: usize) -> u64 {
    platforms as u64 * 2 * flat_message_bytes(param_count)
}

/// Bytes of one `L1Sync` exchange (up + down per platform), used by the
/// periodic-averaging extension.
pub fn l1_sync_bytes(platforms: usize, l1_param_count: usize) -> u64 {
    platforms as u64 * 2 * flat_message_bytes(l1_param_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_bytes_formula() {
        // [10, 16] f32: 8 header + 16 dims + 640 data + 64 framing.
        assert_eq!(message_bytes(&Shape::from([10, 16])), 8 + 16 + 640 + 64);
        assert_eq!(flat_message_bytes(100), (8 + 8 + 400 + 64) as u64);
    }

    #[test]
    fn split_cost_scales_with_batch_and_activation() {
        let small = split_round_bytes(&[8], &[16], 10);
        let bigger_batch = split_round_bytes(&[16], &[16], 10);
        let bigger_act = split_round_bytes(&[8], &[64], 10);
        assert!(bigger_batch > small);
        assert!(bigger_act > small);
        // Cost is per-platform additive.
        let two = split_round_bytes(&[8, 8], &[16], 10);
        assert_eq!(two, 2 * small);
    }

    #[test]
    fn split_is_independent_of_model_depth() {
        // The defining property: split cost depends only on the cut
        // activation and the logits, never on the parameter count.
        let a = split_round_bytes(&[32], &[64, 32, 32], 10);
        assert_eq!(a, split_round_bytes(&[32], &[64, 32, 32], 10));
        // No parameter count appears in the signature at all.
    }

    #[test]
    fn model_exchange_baselines_scale_with_params() {
        let small = fedavg_round_bytes(4, 1_000_000);
        let big = fedavg_round_bytes(4, 15_000_000);
        assert!(big > 14 * small / 2, "model-size scaling broken");
        assert_eq!(
            fedavg_round_bytes(4, 1_000_000),
            sync_sgd_round_bytes(4, 1_000_000)
        );
    }

    #[test]
    fn full_scale_ratio_matches_paper_shape() {
        // VGG-16-scale: ~15M params vs 64×32×32 activations at batch 128.
        let params = 15_000_000;
        let split = split_round_bytes(&[32, 32, 32, 32], &[64, 32, 32], 10);
        let sgd = sync_sgd_round_bytes(4, params);
        // Per *step*, sync-SGD moves model+grads (~120 MB/platform);
        // split moves activations (~33 MB/platform at s=32).
        assert!(
            sgd > split,
            "sync-SGD must be costlier per step: {sgd} vs {split}"
        );
        assert!(sgd as f64 / split as f64 > 3.0);
    }

    #[test]
    fn l1_sync_cost() {
        let b = l1_sync_bytes(3, 500);
        assert_eq!(b, 3 * 2 * flat_message_bytes(500));
    }
}
