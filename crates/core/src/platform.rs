//! The platform-side actor: owns local data, labels and the first hidden
//! layer `L1`.

use medsplit_data::{BatchSampler, InMemoryDataset};
use medsplit_nn::vectorize::{parameter_vector, set_parameter_vector};
use medsplit_nn::{softmax_cross_entropy, Layer, Mode, Optimizer, Sequential};
use medsplit_simnet::{Envelope, MessageKind, NodeId};
use medsplit_tensor::init::{rng_from_seed, StdRng};
use medsplit_tensor::Tensor;

use crate::config::WireCodec;
use crate::error::{Result, SplitError};
#[cfg(test)]
use crate::messages::tensor_envelope;
use crate::messages::{decode_tensor, tensor_envelope_codec};

/// One medical platform (hospital): its private shard, the `L1` replica,
/// and a local optimiser for `L1`.
///
/// Raw features and labels never leave this struct — the only outbound
/// tensors are `L1` activations (message 1) and loss gradients w.r.t. the
/// logits (message 3), exactly as in the paper's Fig. 2/3.
pub struct Platform {
    id: usize,
    model: Sequential,
    data: InMemoryDataset,
    sampler: BatchSampler,
    optimizer: Box<dyn Optimizer>,
    batch_size: usize,
    grad_scale: f32,
    codec: WireCodec,
    noise_std: f32,
    noise_rng: StdRng,
    pending_labels: Option<Vec<usize>>,
    samples_seen: u64,
}

impl Platform {
    /// Creates a platform actor.
    ///
    /// `model` is the `L1` prefix (already split off the full network);
    /// `batch_size` is this platform's `s_k` from the minibatch policy.
    ///
    /// # Panics
    ///
    /// Panics if the shard is empty or `batch_size == 0` (via
    /// [`BatchSampler::new`]).
    pub fn new(
        id: usize,
        model: Sequential,
        data: InMemoryDataset,
        batch_size: usize,
        momentum: f32,
        seed: u64,
    ) -> Self {
        let sampler = BatchSampler::new(
            data.len(),
            batch_size,
            seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let optimizer = crate::config::OptimizerKind::Sgd.build(momentum);
        Platform {
            id,
            model,
            data,
            sampler,
            optimizer,
            batch_size,
            grad_scale: 1.0,
            codec: WireCodec::F32,
            noise_std: 0.0,
            noise_rng: rng_from_seed(seed.rotate_left(17) ^ id as u64),
            pending_labels: None,
            samples_seen: 0,
        }
    }

    /// Enables Gaussian noising of every transmitted activation tensor
    /// (a lightweight privacy-enhancement defence; 0 disables).
    pub fn set_activation_noise(&mut self, std: f32) {
        self.noise_std = std;
    }

    /// Adds the configured activation noise to an outbound representation.
    fn noised(&mut self, acts: Tensor) -> Tensor {
        if self.noise_std == 0.0 {
            return acts;
        }
        let noise = Tensor::rand_normal(acts.shape().clone(), 0.0, self.noise_std, &mut self.noise_rng);
        acts.try_add(&noise).expect("noise shape matches activations")
    }

    /// Sets the factor the logit gradients are scaled by before
    /// transmission.
    ///
    /// Under [`Scheduling::Aggregate`](crate::Scheduling) the server
    /// concatenates all platforms' batches into one update, so each
    /// platform's locally-normalised cross-entropy gradient (divided by
    /// its own `s_k`) must be re-weighted by `s_k / Σ s` to make the
    /// concatenation equal the gradient of the mean loss over the union
    /// batch. Under round-robin scheduling the scale stays 1.
    pub fn set_grad_scale(&mut self, scale: f32) {
        self.grad_scale = scale;
    }

    /// Sets the wire codec used for outbound protocol tensors.
    pub fn set_codec(&mut self, codec: WireCodec) {
        self.codec = codec;
    }

    /// Replaces the local optimiser (resets any momentum/Adam state).
    pub fn set_optimizer(&mut self, optimizer: Box<dyn Optimizer>) {
        self.optimizer = optimizer;
    }

    /// This platform's node id.
    pub fn node(&self) -> NodeId {
        NodeId::Platform(self.id)
    }

    /// Platform index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Size of the local shard (`n_k`).
    pub fn shard_size(&self) -> usize {
        self.data.len()
    }

    /// This platform's minibatch size (`s_k`).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Total samples consumed so far.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Sets the learning rate for the local `L1` optimiser.
    pub fn set_lr(&mut self, lr: f32) {
        self.optimizer.set_learning_rate(lr);
    }

    /// Mutable access to the local `L1` model (used for evaluation and by
    /// the privacy probes).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// **Protocol step 1** — samples a minibatch, runs `L1` forward, and
    /// returns the activations message for the server. Labels are retained
    /// locally for step 3.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the forward pass.
    pub fn start_round(&mut self, round: u64) -> Result<Envelope> {
        let _span = medsplit_telemetry::span_round("l1_forward", round);
        let (features, labels) = self.sampler.next_from(&self.data);
        self.samples_seen += labels.len() as u64;
        let acts = self.model.forward(&features, Mode::Train)?;
        let acts = self.noised(acts);
        self.pending_labels = Some(labels);
        Ok(tensor_envelope_codec(
            self.node(),
            NodeId::Server,
            round,
            MessageKind::Activations,
            &acts,
            self.codec,
        ))
    }

    /// **Protocol step 3** — receives the logits (message 2), computes the
    /// local loss against the retained labels, and returns the
    /// logit-gradient message plus the scalar loss.
    ///
    /// # Errors
    ///
    /// Returns a protocol error if no round is in flight or the logits
    /// batch does not match the retained labels.
    pub fn handle_logits(&mut self, env: &Envelope) -> Result<(Envelope, f32)> {
        let _span = medsplit_telemetry::span_round("loss_grad", env.round);
        let logits = decode_tensor(env, MessageKind::Logits)?;
        let labels = self.pending_labels.as_ref().ok_or_else(|| {
            SplitError::Protocol(format!("platform {} got logits with no round in flight", self.id))
        })?;
        let out = softmax_cross_entropy(&logits, labels)?;
        let grad = if self.grad_scale == 1.0 {
            out.grad
        } else {
            out.grad.scale(self.grad_scale)
        };
        Ok((
            tensor_envelope_codec(
                self.node(),
                NodeId::Server,
                env.round,
                MessageKind::LogitGrads,
                &grad,
                self.codec,
            ),
            out.loss,
        ))
    }

    /// **Protocol step 5 (final)** — receives the gradients at the cut
    /// (message 4), backpropagates them through `L1` and applies the local
    /// optimiser step.
    ///
    /// # Errors
    ///
    /// Returns a protocol error if no round is in flight.
    pub fn handle_cut_grads(&mut self, env: &Envelope) -> Result<()> {
        let _span = medsplit_telemetry::span_round("l1_backward", env.round);
        let grads = decode_tensor(env, MessageKind::CutGrads)?;
        if self.pending_labels.take().is_none() {
            return Err(SplitError::Protocol(format!(
                "platform {} got cut grads with no round in flight",
                self.id
            )));
        }
        self.model.backward(&grads)?;
        self.optimizer.step_and_zero(&mut self.model);
        Ok(())
    }

    /// Flattened `L1` parameters (for the sync extensions).
    pub fn l1_parameters(&mut self) -> Tensor {
        parameter_vector(&mut self.model)
    }

    /// Serialises the local `L1` (parameters + batch-norm state) into a
    /// checkpoint blob.
    pub fn checkpoint(&mut self) -> bytes::Bytes {
        medsplit_nn::vectorize::snapshot_vector(&mut self.model).to_bytes()
    }

    /// Restores a checkpoint produced by [`checkpoint`](Self::checkpoint).
    ///
    /// # Errors
    ///
    /// Returns tensor errors for corrupt blobs or mismatched
    /// architectures.
    pub fn restore(&mut self, blob: &bytes::Bytes) -> Result<()> {
        let snapshot = Tensor::from_bytes(blob.clone())?;
        medsplit_nn::vectorize::load_snapshot_vector(&mut self.model, &snapshot)?;
        Ok(())
    }

    /// Overwrites the `L1` parameters (for the sync extensions).
    ///
    /// # Errors
    ///
    /// Propagates a length mismatch.
    pub fn set_l1_parameters(&mut self, params: &Tensor) -> Result<()> {
        set_parameter_vector(&mut self.model, params)?;
        Ok(())
    }

    /// Runs the local `L1` in inference mode (used to compose the deployed
    /// model during evaluation and by the serving path).
    ///
    /// The forward runs in [`Mode::Eval`] and the model's recorded mode is
    /// restored afterwards, so serving a request mid-training leaves the
    /// training state (cached activations, running statistics, mode
    /// bookkeeping) untouched.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors.
    pub fn infer_l1(&mut self, features: &Tensor) -> Result<Tensor> {
        let prior = self.model.mode();
        let result = self.model.forward(features, Mode::Eval);
        self.model.set_mode(prior);
        let acts = result?;
        // The deployed system also transmits activations at inference
        // time, so the privacy noise applies there too.
        Ok(self.noised(acts))
    }
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("id", &self.id)
            .field("shard", &self.data.len())
            .field("batch", &self.batch_size)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_data::SyntheticTabular;
    use medsplit_nn::{Activation, Dense};
    use medsplit_tensor::init::rng_from_seed;

    fn l1(seed: u64) -> Sequential {
        let mut rng = rng_from_seed(seed);
        let mut s = Sequential::new("l1");
        s.push(Dense::new(4, 6, &mut rng));
        s.push(Activation::relu());
        s
    }

    fn platform(seed: u64) -> Platform {
        let data = SyntheticTabular::new(3, 4, seed).generate(20).unwrap();
        Platform::new(0, l1(seed), data, 5, 0.0, seed)
    }

    #[test]
    fn start_round_produces_activations() {
        let mut p = platform(0);
        let env = p.start_round(0).unwrap();
        assert_eq!(env.kind, MessageKind::Activations);
        assert_eq!(env.src, NodeId::Platform(0));
        let acts = decode_tensor(&env, MessageKind::Activations).unwrap();
        assert_eq!(acts.dims(), &[5, 6]);
        assert_eq!(p.samples_seen(), 5);
    }

    #[test]
    fn full_round_updates_l1() {
        let mut p = platform(1);
        let before = p.l1_parameters();
        let _acts = p.start_round(0).unwrap();
        // Server stand-in: pretend logits = zeros [5, 3].
        let logits_env = tensor_envelope(
            NodeId::Server,
            p.node(),
            0,
            MessageKind::Logits,
            &Tensor::zeros([5, 3]),
        );
        let (grads_env, loss) = p.handle_logits(&logits_env).unwrap();
        assert!(loss > 0.0);
        assert_eq!(grads_env.kind, MessageKind::LogitGrads);
        // Cut grads matching L1 output shape.
        let cut_env = tensor_envelope(
            NodeId::Server,
            p.node(),
            0,
            MessageKind::CutGrads,
            &Tensor::ones([5, 6]),
        );
        p.set_lr(0.1);
        p.handle_cut_grads(&cut_env).unwrap();
        let after = p.l1_parameters();
        assert_ne!(before, after, "L1 parameters must change");
    }

    #[test]
    fn protocol_order_enforced() {
        let mut p = platform(2);
        let logits_env = tensor_envelope(
            NodeId::Server,
            p.node(),
            0,
            MessageKind::Logits,
            &Tensor::zeros([5, 3]),
        );
        assert!(matches!(
            p.handle_logits(&logits_env),
            Err(SplitError::Protocol(_))
        ));
        let cut_env = tensor_envelope(
            NodeId::Server,
            p.node(),
            0,
            MessageKind::CutGrads,
            &Tensor::ones([5, 6]),
        );
        assert!(matches!(
            p.handle_cut_grads(&cut_env),
            Err(SplitError::Protocol(_))
        ));
    }

    #[test]
    fn l1_parameter_roundtrip() {
        let mut p = platform(3);
        let v = p.l1_parameters();
        let doubled = v.scale(2.0);
        p.set_l1_parameters(&doubled).unwrap();
        assert_eq!(p.l1_parameters(), doubled);
        assert!(p.set_l1_parameters(&Tensor::ones([3])).is_err());
    }

    #[test]
    fn identical_seeds_give_identical_l1() {
        let mut a = platform(7);
        let mut b = {
            let data = SyntheticTabular::new(3, 4, 99).generate(20).unwrap();
            Platform::new(1, l1(7), data, 5, 0.0, 99)
        };
        assert_eq!(
            a.l1_parameters(),
            b.l1_parameters(),
            "paper postulate: same initial L1 weights"
        );
    }

    #[test]
    fn infer_does_not_disturb_training_cache() {
        let mut p = platform(8);
        let _ = p.start_round(0).unwrap();
        // An eval-mode inference in between must not clobber the cached batch.
        let _ = p.infer_l1(&Tensor::zeros([2, 4])).unwrap();
        let logits_env = tensor_envelope(
            NodeId::Server,
            p.node(),
            0,
            MessageKind::Logits,
            &Tensor::zeros([5, 3]),
        );
        assert!(p.handle_logits(&logits_env).is_ok());
        // The full round must still complete: backward consumes the cache
        // from start_round, not from the interleaved inference.
        let cut_env = tensor_envelope(
            NodeId::Server,
            p.node(),
            0,
            MessageKind::CutGrads,
            &Tensor::ones([5, 6]),
        );
        assert!(p.handle_cut_grads(&cut_env).is_ok());
    }

    /// An `L1` with every mode-sensitive layer the library has.
    fn stochastic_l1(seed: u64) -> Sequential {
        let mut rng = rng_from_seed(seed);
        let mut s = Sequential::new("l1");
        s.push(Dense::new(4, 6, &mut rng));
        s.push(medsplit_nn::BatchNorm::new(6));
        s.push(medsplit_nn::Dropout::new(0.5, seed));
        s.push(Activation::relu());
        s
    }

    #[test]
    fn inference_is_deterministic_and_restores_mode() {
        let data = SyntheticTabular::new(3, 4, 9).generate(20).unwrap();
        let mut p = Platform::new(0, stochastic_l1(9), data, 5, 0.0, 9);
        // Put the model firmly into training state first.
        let _ = p.start_round(0).unwrap();
        assert_eq!(p.model_mut().mode(), Mode::Train);
        let mut state_before = Vec::new();
        p.model_mut().visit_state(&mut |t| state_before.push(t.clone()));

        let x = Tensor::from_vec((0..8).map(|i| i as f32 * 0.25).collect(), [2, 4]).unwrap();
        let a = p.infer_l1(&x).unwrap();
        let b = p.infer_l1(&x).unwrap();
        let c = p.infer_l1(&x).unwrap();
        // Eval mode: dropout off, running stats used — bit-identical runs.
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(b.as_slice(), c.as_slice());

        // The recorded mode is restored and no state was touched.
        assert_eq!(p.model_mut().mode(), Mode::Train);
        let mut state_after = Vec::new();
        p.model_mut().visit_state(&mut |t| state_after.push(t.clone()));
        assert_eq!(state_before.len(), state_after.len());
        for (before, after) in state_before.iter().zip(&state_after) {
            assert_eq!(before.as_slice(), after.as_slice(), "running stats changed");
        }
    }
}
