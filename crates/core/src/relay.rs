//! Region-wise relay forwarding for hierarchical split training.
//!
//! A relay is a dumb, stateless forwarder: it holds no model, no data
//! and no labels — it concatenates the smashed-data envelopes of its
//! region into one [`MessageKind::RelayBatch`] frame per direction per
//! round and moves it across the WAN backbone. Batching amortises the
//! backbone's per-message framing ([`medsplit_simnet::HEADER_BYTES`])
//! and latency over the whole region: `P` platforms pay one backbone
//! round trip instead of `P`.
//!
//! The inner envelopes travel verbatim inside the batch payload using
//! [`Envelope::encode`]'s canonical framing, so the server can verify
//! each inner payload checksum after unbatching and the platform-side
//! protocol handlers ([`crate::Platform`]) never learn whether their
//! messages were relayed or direct.

use bytes::Bytes;
use medsplit_simnet::{Envelope, MessageKind, NodeId};

use crate::error::{Result, SplitError};

/// Serialises `inner` envelopes into one opaque batch payload by
/// concatenating their canonical wire frames.
pub fn encode_batch(inner: &[Envelope]) -> Bytes {
    let mut out = Vec::new();
    for env in inner {
        out.extend_from_slice(&env.encode());
    }
    Bytes::from(out)
}

/// Splits a [`MessageKind::RelayBatch`] envelope back into its inner
/// envelopes.
///
/// # Errors
///
/// Returns a protocol error if `env` is not a relay batch or its
/// payload is not a clean concatenation of envelope frames.
pub fn unbatch(env: &Envelope) -> Result<Vec<Envelope>> {
    if env.kind != MessageKind::RelayBatch {
        return Err(SplitError::Protocol(format!(
            "expected a relay batch, got {}",
            env.kind
        )));
    }
    let buf = &env.payload[..];
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        let rest = &buf[at..];
        let len_bytes = rest.get(37..45).ok_or_else(|| {
            SplitError::Protocol(format!("relay batch truncated at inner frame {}", out.len()))
        })?;
        let payload_len = u64::from_le_bytes(len_bytes.try_into().expect("8-byte slice")) as usize;
        let frame_len = 45 + payload_len;
        let frame = rest.get(..frame_len).ok_or_else(|| {
            SplitError::Protocol(format!("relay batch truncated at inner frame {}", out.len()))
        })?;
        let inner = Envelope::decode(frame)
            .map_err(|e| SplitError::Protocol(format!("bad inner envelope in relay batch: {e}")))?;
        out.push(inner);
        at += frame_len;
    }
    Ok(out)
}

/// Builds the upstream batch a relay sends to the server: the region's
/// platform → server traffic of one round in one frame.
pub fn batch_upstream(relay: usize, round: u64, inner: &[Envelope]) -> Envelope {
    Envelope::new(
        NodeId::Relay(relay),
        NodeId::Server,
        round,
        MessageKind::RelayBatch,
        encode_batch(inner),
    )
}

/// Builds the downstream batch the server sends a relay: the region's
/// server → platform traffic of one round in one frame.
pub fn batch_downstream(relay: usize, round: u64, inner: &[Envelope]) -> Envelope {
    Envelope::new(
        NodeId::Server,
        NodeId::Relay(relay),
        round,
        MessageKind::RelayBatch,
        encode_batch(inner),
    )
}

/// Re-frames an unbatched downstream envelope for the relay → platform
/// hop: the payload, kind and round travel unchanged, but the source
/// becomes the relay so link selection and byte accounting charge the
/// regional edge actually used.
pub fn forward_from_relay(relay: usize, inner: &Envelope) -> Envelope {
    Envelope::new(
        NodeId::Relay(relay),
        inner.dst,
        inner.round,
        inner.kind,
        inner.payload.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inner(pid: usize, round: u64, fill: u8, len: usize) -> Envelope {
        Envelope::new(
            NodeId::Platform(pid),
            NodeId::Server,
            round,
            MessageKind::Activations,
            Bytes::from(vec![fill; len]),
        )
    }

    #[test]
    fn batch_round_trips_inner_envelopes() {
        let envs = vec![inner(0, 3, 0xAA, 17), inner(1, 3, 0xBB, 0), inner(2, 3, 0xCC, 64)];
        let batch = batch_upstream(1, 3, &envs);
        assert_eq!(batch.src, NodeId::Relay(1));
        assert_eq!(batch.dst, NodeId::Server);
        assert_eq!(batch.kind, MessageKind::RelayBatch);
        assert!(batch.verify_checksum());
        let back = unbatch(&batch).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in envs.iter().zip(&back) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.round, b.round);
            assert_eq!(a.payload, b.payload);
            assert!(b.verify_checksum());
        }
    }

    #[test]
    fn empty_batch_is_valid_and_empty() {
        let batch = batch_downstream(0, 1, &[]);
        assert!(batch.payload.is_empty());
        assert_eq!(unbatch(&batch).unwrap().len(), 0);
    }

    #[test]
    fn batching_amortises_backbone_headers() {
        let envs: Vec<Envelope> = (0..4).map(|p| inner(p, 0, 1, 100)).collect();
        let individually: usize = envs.iter().map(Envelope::wire_size).sum();
        let batched = batch_upstream(0, 0, &envs).wire_size();
        // One 64-byte accounted header instead of four; inner frames add
        // 45 bytes each, still a net win per message.
        assert!(batched < individually, "{batched} vs {individually}");
    }

    #[test]
    fn unbatch_rejects_wrong_kind_and_torn_frames() {
        let not_batch = inner(0, 0, 1, 4);
        assert!(unbatch(&not_batch).is_err());
        let batch = batch_upstream(0, 0, &[inner(0, 0, 1, 32)]);
        // Truncate mid-inner-frame: decode must fail loudly.
        let torn = Envelope::new(
            batch.src,
            batch.dst,
            batch.round,
            MessageKind::RelayBatch,
            batch.payload.slice(..batch.payload.len() - 3),
        );
        assert!(unbatch(&torn).is_err());
    }

    #[test]
    fn forward_rewrites_source_only() {
        let logits = Envelope::new(
            NodeId::Server,
            NodeId::Platform(5),
            7,
            MessageKind::Logits,
            Bytes::from(vec![3u8; 24]),
        );
        let fwd = forward_from_relay(2, &logits);
        assert_eq!(fwd.src, NodeId::Relay(2));
        assert_eq!(fwd.dst, NodeId::Platform(5));
        assert_eq!(fwd.round, 7);
        assert_eq!(fwd.kind, MessageKind::Logits);
        assert_eq!(fwd.payload, logits.payload);
        assert!(fwd.verify_checksum());
    }
}
