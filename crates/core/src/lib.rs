//! # medsplit-core
//!
//! The paper's contribution: privacy-preserving split learning for
//! geo-distributed medical platforms (Jeon et al., DSN 2019).
//!
//! A deep network is cut after its first hidden layer: each platform keeps
//! `L1` and its raw patient data; the single central server keeps
//! `L2..Lk`. One training round is the paper's four-message exchange per
//! platform:
//!
//! 1. platform → server: `L1` activations on a minibatch
//!    ([`MessageKind::Activations`](medsplit_simnet::MessageKind)),
//! 2. server → platform: output logits,
//! 3. platform → server: loss gradients w.r.t. the logits (the platform
//!    owns the labels and the loss),
//! 4. server → platform: gradients at the cut, which the platform
//!    backpropagates through `L1`.
//!
//! Key types: [`SplitConfig`] (cut point, scheduling, `L1` sync strategy,
//! the proportional-minibatch imbalance mitigation), [`Platform`] and
//! [`SplitServer`] (the actors), [`SplitTrainer`] (deterministic driver),
//! [`threaded::train_threaded`] (thread-per-node driver), [`comm`]
//! (analytic byte costs for the full-size models) and
//! [`TrainingHistory`] (the accuracy-vs-bytes curves of Fig. 4).
//!
//! ```
//! use medsplit_core::{SplitConfig, SplitTrainer};
//! use medsplit_data::{partition, Partition, SyntheticTabular};
//! use medsplit_nn::{Architecture, MlpConfig};
//! use medsplit_simnet::{MemoryTransport, StarTopology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = Architecture::Mlp(MlpConfig::small(8, 3));
//! let train = SyntheticTabular::new(3, 8, 0).generate(90)?;
//! let test = SyntheticTabular::new(3, 8, 1).generate(30)?;
//! let shards = partition(&train, 3, &Partition::Iid, 0)?;
//! let transport = MemoryTransport::new(StarTopology::new(3));
//! let config = SplitConfig { rounds: 5, eval_every: 5, ..SplitConfig::default() };
//! let mut trainer = SplitTrainer::new(&arch, config, shards, test, &transport)?;
//! let history = trainer.run()?;
//! assert_eq!(history.records.len(), 5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod comm;
mod config;
mod error;
mod hier;
mod history;
pub mod messages;
mod platform;
pub mod relay;
mod resilient;
mod server;
mod split;
pub mod threaded;
mod trainer;
mod ushape;

pub use config::{
    Backoff, ComputeModel, HierPolicy, L1Sync, OptimizerKind, RoundPolicy, Scheduling, SplitConfig,
    SplitPoint, WireCodec,
};
pub use error::{Result, SplitError};
pub use hier::{HierReport, HierResilientTrainer};
pub use history::{RoundRecord, TrainingHistory};
pub use platform::Platform;
pub use resilient::{ResilienceReport, ResilientTrainer};
pub use server::SplitServer;
pub use split::{build_split, resolve_split, SplitModel};
pub use trainer::SplitTrainer;
pub use ushape::{UShapePlatform, UShapeTrainer};
