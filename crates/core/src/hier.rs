//! Hierarchical fault-tolerant split training: platforms → regional
//! relays → central server, with relay failover and partition-tolerant
//! degraded rounds.
//!
//! [`HierResilientTrainer`] layers the hierarchical topology on the
//! same round machinery as [`crate::ResilientTrainer`] — whole-round
//! participation, retries with backoff and simulated-clock deadlines
//! under the configured [`RoundPolicy`](crate::RoundPolicy), frozen
//! survivor sets with renormalised minibatch weights, and
//! checkpoint-boundary crash/rejoin — and adds the relay layer's
//! failure semantics:
//!
//! - **Routing.** Each round every live platform is routed over its
//!   home relay; if the relay is crashed or unreachable (either hop of
//!   either leg down), the platform *re-homes* to the first viable
//!   backup relay in cyclic order, else falls back to a direct server
//!   link — paying [`HierPolicy::failover_penalty_s`] against the round
//!   deadline. A platform with no viable path at all is orphaned for
//!   the round and rejoins at the next boundary.
//! - **Region quorum.** A region delivering fewer than
//!   [`HierPolicy::region_quorum`] surviving platforms is dropped whole
//!   — a partitioned region degrades the round instead of stalling it
//!   or biasing the aggregate with a sliver of its data.
//! - **Relay batching.** Surviving smashed data crosses the backbone as
//!   one [`MessageKind::RelayBatch`] per relay per direction per
//!   protocol step (see [`crate::relay`]).
//!
//! Everything stays deterministic: one seeded chaos RNG, platforms and
//! relays iterated in id order, bit-identical replay from equal plans.

use std::collections::BTreeMap;

use bytes::Bytes;
use medsplit_data::InMemoryDataset;
use medsplit_nn::{accuracy, Architecture};
use medsplit_simnet::{ChaosEvent, ChaosTransport, Envelope, HierTopology, MessageKind, NodeId, Transport};

use crate::config::{HierPolicy, L1Sync, Scheduling, SplitConfig};
use crate::error::{Result, SplitError};
use crate::history::{RoundRecord, TrainingHistory};
use crate::platform::Platform;
use crate::relay;
use crate::resilient::ResilienceReport;
use crate::server::SplitServer;
use crate::trainer::build_actors;

/// Same bounded reliable-delivery cap as the star-topology resilient
/// driver: link state is round-granular, so a committed survivor's leg
/// can only fail to random loss — exhausting 64 attempts is a protocol
/// error, not a tolerated fault.
const MAX_DELIVERY_ATTEMPTS: u32 = 64;

/// Counters specific to the hierarchical failure machinery, alongside
/// the embedded star-level [`ResilienceReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierReport {
    /// The round-machinery counters shared with the star driver.
    pub base: ResilienceReport,
    /// Platform-rounds routed over a backup relay because the home
    /// relay was crashed or unreachable.
    pub rehomes: u64,
    /// Platform-rounds that fell back to the direct server link because
    /// no relay was viable.
    pub direct_fallbacks: u64,
    /// Platform-rounds orphaned entirely (no relay, no direct path).
    pub orphaned_platform_rounds: u64,
    /// Relay batches successfully delivered across the backbone.
    pub relay_batches: u64,
    /// Regions whose surviving platforms were dropped for missing the
    /// per-region quorum.
    pub region_quorum_drops: u64,
    /// Scheduled relay crash events applied.
    pub relay_crashes: u64,
    /// Scheduled relay recover events applied.
    pub relay_rejoins: u64,
    /// Driver-sent wire bytes attributed to each region (activations,
    /// batches, retries and downstream traffic of its platforms).
    pub region_bytes: Vec<u64>,
}

/// Which path a platform uses this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// Via relay `r` (home or backup).
    Relay(usize),
    /// Direct platform ↔ server fallback.
    Direct,
}

/// Hierarchical counterpart of [`crate::ResilientTrainer`], driving the
/// same actors over a [`HierTopology`] chaos transport.
pub struct HierResilientTrainer<'t, T: Transport> {
    config: SplitConfig,
    hier: HierPolicy,
    topo: HierTopology,
    platforms: Vec<Platform>,
    server: SplitServer,
    chaos: &'t ChaosTransport<T>,
    test: InMemoryDataset,
    client_params: usize,
    server_params: usize,
    initial_snapshots: Vec<Bytes>,
    checkpoints: BTreeMap<usize, Bytes>,
    report: HierReport,
}

impl<'t, T: Transport> HierResilientTrainer<'t, T> {
    /// Builds the trainer over a chaos transport routing a
    /// [`HierTopology`]. `shards` must hold exactly one dataset per
    /// platform of the topology, in platform-id order.
    ///
    /// # Errors
    ///
    /// Returns configuration errors for invalid configs or policies,
    /// shard/topology shape mismatches, unsupported scheduling, or a
    /// dirty transport.
    pub fn new(
        arch: &Architecture,
        config: SplitConfig,
        hier: HierPolicy,
        topo: HierTopology,
        shards: Vec<InMemoryDataset>,
        test: InMemoryDataset,
        chaos: &'t ChaosTransport<T>,
    ) -> Result<Self> {
        config.validate().map_err(SplitError::Config)?;
        hier.validate(topo.per_region()).map_err(SplitError::Config)?;
        if topo.regions() == 0 || topo.per_region() == 0 {
            return Err(SplitError::Config(
                "hierarchy needs at least one region with at least one platform".into(),
            ));
        }
        if shards.len() != topo.platforms() {
            return Err(SplitError::Config(format!(
                "{} shards for a hierarchy of {} platforms",
                shards.len(),
                topo.platforms()
            )));
        }
        if config.scheduling != Scheduling::Aggregate {
            return Err(SplitError::Config(
                "hierarchical mode implements Aggregate scheduling".into(),
            ));
        }
        if config.l1_sync != L1Sync::CommonInit {
            return Err(SplitError::Config(
                "hierarchical mode implements CommonInit L1 sync".into(),
            ));
        }
        if chaos.stats().snapshot().messages > 0 {
            return Err(SplitError::Config(
                "transport has already been used; accounting would be polluted".into(),
            ));
        }
        let (mut platforms, server, client_params, server_params) = build_actors(arch, &config, shards)?;
        if config.round_policy.min_platforms > platforms.len() {
            return Err(SplitError::Config(format!(
                "quorum of {} exceeds the {} configured platforms",
                config.round_policy.min_platforms,
                platforms.len()
            )));
        }
        let initial_snapshots = platforms.iter_mut().map(Platform::checkpoint).collect();
        let report = HierReport {
            region_bytes: vec![0; topo.regions()],
            ..HierReport::default()
        };
        Ok(HierResilientTrainer {
            config,
            hier,
            topo,
            platforms,
            server,
            chaos,
            test,
            client_params,
            server_params,
            initial_snapshots,
            checkpoints: BTreeMap::new(),
            report,
        })
    }

    /// The hierarchical fault-handling counters accumulated so far.
    pub fn report(&self) -> &HierReport {
        &self.report
    }

    /// The platform actors (for inspection).
    pub fn platforms_mut(&mut self) -> &mut [Platform] {
        &mut self.platforms
    }

    /// Mean test accuracy over the currently live platforms' deployed
    /// models, exactly as the star driver computes it.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors.
    pub fn evaluate(&mut self) -> Result<f32> {
        const EVAL_BATCH: usize = 64;
        let mut total = 0.0;
        let mut counted = 0usize;
        for platform in &mut self.platforms {
            if self.chaos.is_down(platform.node()) {
                continue;
            }
            let mut correct_weighted = 0.0;
            let mut seen = 0usize;
            let n = self.test.len();
            let mut start = 0;
            while start < n {
                let count = EVAL_BATCH.min(n - start);
                let idx: Vec<usize> = (start..start + count).collect();
                let (features, labels) = self.test.batch(&idx)?;
                let acts = platform.infer_l1(&features)?;
                let logits = self.server.infer(&acts)?;
                correct_weighted += accuracy(&logits, &labels)? * count as f32;
                seen += count;
                start += count;
            }
            total += correct_weighted / seen.max(1) as f32;
            counted += 1;
        }
        Ok(total / counted.max(1) as f32)
    }

    fn count(name: &str, n: u64) {
        if n > 0 && medsplit_telemetry::enabled() {
            medsplit_telemetry::counter_add(name, n);
        }
    }

    /// Sends one envelope, attributing its wire bytes to `region`.
    fn send_counted(&mut self, env: Envelope, region: usize) -> Result<()> {
        self.report.region_bytes[region] += env.wire_size() as u64;
        self.chaos.send(env)?;
        Ok(())
    }

    /// Applies this round's scheduled chaos events. Platform semantics
    /// match the star driver (crash = pristine reset, recover =
    /// checkpoint restore); relays are stateless, so their events only
    /// flip routing viability and are counted here.
    fn apply_events(&mut self, events: &[ChaosEvent]) -> Result<()> {
        for event in events {
            match *event {
                ChaosEvent::Crash {
                    node: NodeId::Platform(pid),
                    ..
                } => {
                    self.report.base.crashes += 1;
                    Self::count("hier.crashes", 1);
                    if let Some(p) = self.platforms.get_mut(pid) {
                        p.restore(&self.initial_snapshots[pid])?;
                    }
                }
                ChaosEvent::Recover {
                    node: NodeId::Platform(pid),
                    ..
                } => {
                    self.report.base.rejoins += 1;
                    Self::count("hier.rejoins", 1);
                    if let (Some(p), Some(blob)) = (self.platforms.get_mut(pid), self.checkpoints.get(&pid)) {
                        p.restore(blob)?;
                    }
                }
                ChaosEvent::Crash {
                    node: NodeId::Relay(_),
                    ..
                } => {
                    self.report.relay_crashes += 1;
                    Self::count("hier.relay_crashes", 1);
                }
                ChaosEvent::Recover {
                    node: NodeId::Relay(_),
                    ..
                } => {
                    self.report.relay_rejoins += 1;
                    Self::count("hier.relay_rejoins", 1);
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Whether routing platform `pid` through relay `r` is viable this
    /// round: the relay is up and both hops of both legs have live
    /// links. Chaos events are round-granular, so checking at the round
    /// boundary is exactly the failure detector a real heartbeat would
    /// implement.
    fn relay_viable(&self, pid: usize, r: usize) -> bool {
        let (p, relay) = (NodeId::Platform(pid), NodeId::Relay(r));
        !self.chaos.is_down(relay)
            && !self.chaos.link_down(p, relay)
            && !self.chaos.link_down(relay, p)
            && !self.chaos.link_down(relay, NodeId::Server)
            && !self.chaos.link_down(NodeId::Server, relay)
    }

    /// Picks this round's route for a live platform: home relay, then
    /// backup relays in cyclic order, then the direct server link.
    fn route_for(&self, pid: usize) -> Option<Route> {
        let home = self.topo.home_relay(pid);
        let regions = self.topo.regions();
        for k in 0..regions {
            let r = (home + k) % regions;
            if self.relay_viable(pid, r) {
                return Some(Route::Relay(r));
            }
        }
        let p = NodeId::Platform(pid);
        if !self.chaos.link_down(p, NodeId::Server) && !self.chaos.link_down(NodeId::Server, p) {
            return Some(Route::Direct);
        }
        None
    }

    /// Assigns routes to every live platform, charging failover
    /// penalties and counting rehomes/fallbacks/orphans.
    fn assign_routes(&mut self, round: u64) -> BTreeMap<usize, Route> {
        let _ = round;
        let mut routes = BTreeMap::new();
        for pid in 0..self.platforms.len() {
            if self.chaos.is_down(NodeId::Platform(pid)) {
                continue;
            }
            let home = self.topo.home_relay(pid);
            match self.route_for(pid) {
                Some(route) => {
                    if route != Route::Relay(home) {
                        // Failure detection + reconnection cost, charged
                        // against the round deadline.
                        self.chaos
                            .stats()
                            .advance_clock(NodeId::Platform(pid), self.hier.failover_penalty_s);
                        match route {
                            Route::Relay(_) => {
                                self.report.rehomes += 1;
                                Self::count("hier.rehomes", 1);
                            }
                            Route::Direct => {
                                self.report.direct_fallbacks += 1;
                                Self::count("hier.direct_fallbacks", 1);
                            }
                        }
                    }
                    routes.insert(pid, route);
                }
                None => {
                    self.report.orphaned_platform_rounds += 1;
                    Self::count("hier.orphaned_platform_rounds", 1);
                }
            }
        }
        routes
    }

    /// The inbox a platform's upstream traffic lands in under `route`.
    fn sink_of(route: Route) -> NodeId {
        match route {
            Route::Relay(r) => NodeId::Relay(r),
            Route::Direct => NodeId::Server,
        }
    }

    /// Drains every collection sink (each relay, then the server),
    /// keeping the first checksum-valid envelope of `kind` per platform
    /// that arrived where its route says it should.
    fn drain_sinks(
        &mut self,
        round: u64,
        kind: MessageKind,
        routes: &BTreeMap<usize, Route>,
        received: &mut BTreeMap<usize, Envelope>,
    ) {
        let mut sinks: Vec<NodeId> = (0..self.topo.regions()).map(NodeId::Relay).collect();
        sinks.push(NodeId::Server);
        for sink in sinks {
            while let Some(env) = self.chaos.try_recv(sink) {
                if !env.verify_checksum() {
                    self.report.base.checksum_rejections += 1;
                    Self::count("hier.checksum_rejections", 1);
                    continue;
                }
                let Some(pid) = env.src.platform_index() else {
                    self.report.base.stray_messages += 1;
                    continue;
                };
                let expected = routes.get(&pid).map(|&r| Self::sink_of(r));
                if env.kind != kind
                    || env.round != round
                    || expected != Some(sink)
                    || received.contains_key(&pid)
                {
                    self.report.base.stray_messages += 1;
                    continue;
                }
                received.insert(pid, env);
            }
        }
    }

    /// Collects activations from the routed platforms with retries,
    /// backoff + jitter and per-platform deadlines, exactly like the
    /// star driver but with per-route sinks.
    fn collect_activations(
        &mut self,
        round: u64,
        routes: &BTreeMap<usize, Route>,
        start_clocks: &BTreeMap<usize, f64>,
    ) -> Result<BTreeMap<usize, Envelope>> {
        let policy = self.config.round_policy;
        let mut pending: BTreeMap<usize, Envelope> = BTreeMap::new();
        for (&pid, &route) in routes {
            let mut env = self.platforms[pid].start_round(round)?;
            if let Route::Relay(r) = route {
                env.dst = NodeId::Relay(r);
            }
            pending.insert(pid, env.clone());
            self.send_counted(env, self.topo.home_relay(pid))?;
        }
        self.chaos.flush();

        let mut received: BTreeMap<usize, Envelope> = BTreeMap::new();
        let mut expired: Vec<usize> = Vec::new();
        for attempt in 0..=policy.max_retries {
            self.drain_sinks(round, MessageKind::Activations, routes, &mut received);
            pending.retain(|pid, _| !received.contains_key(pid));
            for &pid in routes.keys() {
                if !expired.contains(&pid)
                    && self.chaos.stats().clock(NodeId::Platform(pid))
                        > start_clocks[&pid] + policy.deadline_s
                {
                    expired.push(pid);
                }
            }
            for pid in &expired {
                pending.remove(pid);
                received.remove(pid);
            }
            if pending.is_empty() || attempt == policy.max_retries {
                break;
            }
            let resend: Vec<(usize, Envelope)> = pending.iter().map(|(p, e)| (*p, e.clone())).collect();
            for (pid, env) in resend {
                let delay = policy.backoff.delay_s(attempt) * self.chaos.backoff_jitter();
                self.chaos.stats().advance_clock(NodeId::Platform(pid), delay);
                self.report.base.retries += 1;
                Self::count("hier.retries", 1);
                self.send_counted(env, self.topo.home_relay(pid))?;
            }
            self.chaos.flush();
        }
        self.drain_sinks(round, MessageKind::Activations, routes, &mut received);
        for pid in &expired {
            received.remove(pid);
        }
        Ok(received)
    }

    /// Enforces the per-region quorum on the collected survivors: a
    /// region contributing fewer than `region_quorum` platforms is
    /// dropped whole (its stragglers rejoin next round).
    fn apply_region_quorum(&mut self, acts: &mut BTreeMap<usize, Envelope>) {
        for g in 0..self.topo.regions() {
            let members: Vec<usize> = acts
                .keys()
                .copied()
                .filter(|&pid| self.topo.home_relay(pid) == g)
                .collect();
            if !members.is_empty() && members.len() < self.hier.region_quorum {
                self.report.region_quorum_drops += 1;
                Self::count("hier.region_quorum_drops", 1);
                for pid in members {
                    acts.remove(&pid);
                }
            }
        }
    }

    /// Reliable delivery of one envelope to `sink`: resend until a
    /// checksum-valid envelope satisfying `accept` is drained there.
    /// Only used for committed survivors, whose links are known-up for
    /// the rest of the round.
    fn deliver(
        &mut self,
        env: Envelope,
        region: usize,
        accept: impl Fn(&Envelope) -> bool,
        what: &str,
    ) -> Result<Envelope> {
        let sink = env.dst;
        for _ in 0..MAX_DELIVERY_ATTEMPTS {
            self.send_counted(env.clone(), region)?;
            self.chaos.flush();
            while let Some(got) = self.chaos.try_recv(sink) {
                if !got.verify_checksum() {
                    self.report.base.checksum_rejections += 1;
                    Self::count("hier.checksum_rejections", 1);
                    continue;
                }
                if accept(&got) {
                    return Ok(got);
                }
                self.report.base.stray_messages += 1;
            }
            self.report.base.retries += 1;
            Self::count("hier.retries", 1);
        }
        Err(SplitError::Protocol(format!(
            "reliable delivery of {what} to {sink} exhausted {MAX_DELIVERY_ATTEMPTS} attempts"
        )))
    }

    /// Reliable backbone delivery of one relay batch, in either
    /// direction. Returns the inner envelopes unbatched at the far end.
    fn deliver_batch(&mut self, batch: Envelope, relay: usize) -> Result<Vec<Envelope>> {
        let round = batch.round;
        let src = batch.src;
        let got = self.deliver(
            batch,
            relay,
            |e| e.kind == MessageKind::RelayBatch && e.round == round && e.src == src,
            "relay batch",
        )?;
        self.report.relay_batches += 1;
        Self::count("hier.relay_batches", 1);
        relay::unbatch(&got)
    }

    /// Moves the surviving upstream envelopes to the server: relay
    /// routes are batched region-wise across the backbone, direct
    /// routes are already in hand. Returns the server-side envelopes in
    /// ascending platform order.
    fn upstream_to_server(
        &mut self,
        round: u64,
        routes: &BTreeMap<usize, Route>,
        held: BTreeMap<usize, Envelope>,
    ) -> Result<Vec<Envelope>> {
        let mut by_relay: BTreeMap<usize, Vec<Envelope>> = BTreeMap::new();
        let mut out: Vec<Envelope> = Vec::with_capacity(held.len());
        for (pid, env) in held {
            match routes[&pid] {
                Route::Relay(r) => by_relay.entry(r).or_default().push(env),
                Route::Direct => out.push(env),
            }
        }
        for (r, inner) in by_relay {
            let batch = relay::batch_upstream(r, round, &inner);
            out.extend(self.deliver_batch(batch, r)?);
        }
        out.sort_by_key(|e| e.src.platform_index());
        Ok(out)
    }

    /// Distributes server → platform envelopes along each platform's
    /// route: relay routes cross the backbone as one batch per relay,
    /// then fan out over the regional links with the relay as source;
    /// direct routes go straight down. Returns `(pid, envelope)` as
    /// received by each platform, in ascending platform order.
    fn downstream_to_platforms(
        &mut self,
        round: u64,
        routes: &BTreeMap<usize, Route>,
        envs: Vec<Envelope>,
        kind: MessageKind,
    ) -> Result<Vec<(usize, Envelope)>> {
        let mut by_relay: BTreeMap<usize, Vec<Envelope>> = BTreeMap::new();
        let mut direct: Vec<(usize, Envelope)> = Vec::new();
        for env in envs {
            let pid = env
                .dst
                .platform_index()
                .ok_or_else(|| SplitError::Protocol(format!("{kind} addressed to {}", env.dst)))?;
            match routes[&pid] {
                Route::Relay(r) => by_relay.entry(r).or_default().push(env),
                Route::Direct => direct.push((pid, env)),
            }
        }
        let mut out: Vec<(usize, Envelope)> = Vec::new();
        for (r, inner) in by_relay {
            let batch = relay::batch_downstream(r, round, &inner);
            for unbatched in self.deliver_batch(batch, r)? {
                let pid = unbatched
                    .dst
                    .platform_index()
                    .ok_or_else(|| SplitError::Protocol(format!("{kind} addressed to {}", unbatched.dst)))?;
                let fwd = relay::forward_from_relay(r, &unbatched);
                let region = self.topo.home_relay(pid);
                let got = self.deliver(fwd, region, |e| e.kind == kind && e.round == round, kind.as_str())?;
                out.push((pid, got));
            }
        }
        for (pid, env) in direct {
            let region = self.topo.home_relay(pid);
            let got = self.deliver(env, region, |e| e.kind == kind && e.round == round, kind.as_str())?;
            out.push((pid, got));
        }
        out.sort_by_key(|(pid, _)| *pid);
        Ok(out)
    }

    /// Moves committed survivors' upstream gradients to the server over
    /// their routes (reliable on every hop), returning the server-side
    /// envelopes.
    fn upstream_grads(
        &mut self,
        round: u64,
        routes: &BTreeMap<usize, Route>,
        grads: Vec<(usize, Envelope)>,
    ) -> Result<Vec<Envelope>> {
        let mut held: BTreeMap<usize, Envelope> = BTreeMap::new();
        for (pid, mut env) in grads {
            match routes[&pid] {
                Route::Relay(r) => {
                    env.dst = NodeId::Relay(r);
                    let region = self.topo.home_relay(pid);
                    let got = self.deliver(
                        env,
                        region,
                        |e| {
                            e.kind == MessageKind::LogitGrads
                                && e.round == round
                                && e.src.platform_index() == Some(pid)
                        },
                        "logit grads (regional hop)",
                    )?;
                    held.insert(pid, got);
                }
                Route::Direct => {
                    let region = self.topo.home_relay(pid);
                    let got = self.deliver(
                        env,
                        region,
                        |e| {
                            e.kind == MessageKind::LogitGrads
                                && e.round == round
                                && e.src.platform_index() == Some(pid)
                        },
                        "logit grads (direct)",
                    )?;
                    held.insert(pid, got);
                }
            }
        }
        self.upstream_to_server(round, routes, held)
    }

    /// One hierarchical quorum round. Returns `(mean_loss,
    /// participants)`; a quorum failure yields `(0.0, survivors)` with
    /// no update applied.
    fn run_round(&mut self, round: u64) -> Result<(f32, usize)> {
        let policy = self.config.round_policy;
        let routes = self.assign_routes(round);
        let start_clocks: BTreeMap<usize, f64> = routes
            .keys()
            .map(|&pid| (pid, self.chaos.stats().clock(NodeId::Platform(pid))))
            .collect();

        let mut acts = self.collect_activations(round, &routes, &start_clocks)?;
        let skipped = routes.len() - acts.len();
        self.report.base.skipped_platform_rounds += skipped as u64;
        Self::count("hier.skipped_platforms", skipped as u64);

        self.apply_region_quorum(&mut acts);

        if acts.len() < policy.min_platforms {
            self.report.base.quorum_failures += 1;
            Self::count("hier.quorum_failures", 1);
            return Ok((0.0, acts.len()));
        }

        // Freeze the survivor set and renormalise minibatch weights so
        // the aggregate update is the gradient of the mean loss over the
        // union batch that actually arrived.
        let survivor_batch: usize = acts.keys().map(|&pid| self.platforms[pid].batch_size()).sum();
        for &pid in acts.keys() {
            let share = self.platforms[pid].batch_size() as f32 / survivor_batch.max(1) as f32;
            self.platforms[pid].set_grad_scale(share);
        }
        let survivors: Vec<usize> = acts.keys().copied().collect();

        // Steps 2–5 over reliable, route-respecting legs.
        let act_envs = self.upstream_to_server(round, &routes, acts)?;
        let logits_out = self.server.aggregate_forward(&act_envs)?;
        let delivered = self.downstream_to_platforms(round, &routes, logits_out, MessageKind::Logits)?;

        let mut losses = Vec::with_capacity(survivors.len());
        let mut grads: Vec<(usize, Envelope)> = Vec::with_capacity(survivors.len());
        for (pid, env) in delivered {
            let (grad_env, loss) = self.platforms[pid].handle_logits(&env)?;
            losses.push(loss);
            grads.push((pid, grad_env));
        }

        let grad_envs = self.upstream_grads(round, &routes, grads)?;
        let cuts_out = self.server.aggregate_backward(&grad_envs)?;
        let delivered = self.downstream_to_platforms(round, &routes, cuts_out, MessageKind::CutGrads)?;
        for (pid, env) in delivered {
            self.platforms[pid].handle_cut_grads(&env)?;
        }

        // Commit survivors' post-update state as their rejoin point.
        for &pid in &survivors {
            let blob = self.platforms[pid].checkpoint();
            self.checkpoints.insert(pid, blob);
        }

        // Charge this round's local compute to the simulated clocks.
        let compute = self.config.compute;
        let stats = self.chaos.stats();
        for &pid in &survivors {
            let s = compute.seconds(
                compute.platform_s_per_msample,
                self.platforms[pid].batch_size(),
                self.client_params,
            );
            stats.advance_clock(NodeId::Platform(pid), s);
        }
        let s = compute.seconds(compute.server_s_per_msample, survivor_batch, self.server_params);
        stats.advance_clock(NodeId::Server, s);

        let mean_loss = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
        Ok((mean_loss, survivors.len()))
    }

    /// Runs the configured number of rounds under the fault plan and
    /// returns the history (method `"split_hier_resilient"`).
    ///
    /// # Errors
    ///
    /// Propagates tensor and protocol errors; tolerated faults (loss,
    /// corruption, crashes, partitions within quorum) do not error.
    pub fn run(&mut self) -> Result<TrainingHistory> {
        let k = self.platforms.len();
        let mut records = Vec::with_capacity(self.config.rounds);
        for round in 0..self.config.rounds {
            let round_start = std::time::Instant::now();
            let events = self.chaos.begin_round(round as u64);
            self.apply_events(&events)?;

            let lr = self.config.lr.lr_at(round);
            for p in &mut self.platforms {
                p.set_lr(lr);
            }
            self.server.set_lr(lr);

            let (mean_loss, participants) = self.run_round(round as u64)?;
            let degraded = participants < k;
            if degraded {
                self.report.base.degraded_rounds += 1;
                Self::count("hier.degraded_rounds", 1);
            }

            let eval_due = self.config.eval_every > 0 && (round + 1) % self.config.eval_every == 0;
            let accuracy = if eval_due { Some(self.evaluate()?) } else { None };
            let snap = self.chaos.stats().snapshot();
            records.push(RoundRecord {
                round,
                lr,
                mean_loss,
                cumulative_bytes: snap.total_bytes,
                simulated_time_s: snap.makespan_s,
                wall_time_s: round_start.elapsed().as_secs_f64(),
                participants,
                degraded,
                accuracy,
            });
        }
        let final_accuracy = match records.last().and_then(|r| r.accuracy) {
            Some(a) => a,
            None => {
                let a = self.evaluate()?;
                if let Some(last) = records.last_mut() {
                    last.accuracy = Some(a);
                }
                a
            }
        };
        // Per-region byte attribution as deterministic counters.
        if medsplit_telemetry::enabled() {
            for (g, &bytes) in self.report.region_bytes.iter().enumerate() {
                if bytes > 0 {
                    medsplit_telemetry::counter_add(&format!("net.bytes.region{g}"), bytes);
                }
            }
        }
        Ok(TrainingHistory {
            method: "split_hier_resilient".into(),
            records,
            final_accuracy,
            stats: self.chaos.stats().snapshot(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_data::{partition, MinibatchPolicy, Partition, SyntheticTabular};
    use medsplit_nn::{LrSchedule, MlpConfig};
    use medsplit_simnet::{FaultPlan, MemoryTransport};

    fn arch() -> Architecture {
        Architecture::Mlp(MlpConfig {
            input_dim: 8,
            hidden: vec![16],
            num_classes: 3,
        })
    }

    fn setup(platforms: usize) -> (Vec<InMemoryDataset>, InMemoryDataset) {
        let gen = SyntheticTabular::new(3, 8, 0);
        let train = gen.generate(160).unwrap();
        let test = SyntheticTabular::new(3, 8, 1).generate(40).unwrap();
        let shards = partition(&train, platforms, &Partition::Iid, 1).unwrap();
        (shards, test)
    }

    fn config(rounds: usize) -> SplitConfig {
        SplitConfig {
            rounds,
            eval_every: rounds,
            lr: LrSchedule::Constant(0.1),
            minibatch: MinibatchPolicy::Fixed(10),
            ..SplitConfig::default()
        }
    }

    fn run_hier(
        plan: FaultPlan,
        rounds: usize,
        regions: usize,
        per_region: usize,
    ) -> (TrainingHistory, HierReport) {
        let topo = HierTopology::new(regions, per_region);
        let chaos = ChaosTransport::new(MemoryTransport::new(topo.clone()), plan);
        let (shards, test) = setup(regions * per_region);
        let mut trainer = HierResilientTrainer::new(
            &arch(),
            config(rounds),
            HierPolicy::default(),
            topo,
            shards,
            test,
            &chaos,
        )
        .unwrap();
        let history = trainer.run().unwrap();
        let report = trainer.report().clone();
        (history, report)
    }

    #[test]
    fn healthy_hier_run_learns_and_batches() {
        let (history, report) = run_hier(FaultPlan::new(1), 30, 2, 2);
        assert_eq!(history.method, "split_hier_resilient");
        assert_eq!(history.records.len(), 30);
        assert_eq!(history.degraded_rounds(), 0);
        assert!(history.records.iter().all(|r| r.participants == 4));
        // 2 relays × 4 protocol legs × 30 rounds, all batched.
        assert_eq!(report.relay_batches, 2 * 4 * 30);
        assert_eq!(report.rehomes, 0);
        assert_eq!(report.direct_fallbacks, 0);
        assert_eq!(report.base.retries, 0);
        assert!(report.region_bytes.iter().all(|&b| b > 0));
        assert!(
            history.final_accuracy > 0.6,
            "accuracy {}",
            history.final_accuracy
        );
    }

    #[test]
    fn relay_crash_rehomes_platforms_without_degrading() {
        // Relay 0 is down rounds [3, 6): its platforms re-home to relay
        // 1 and keep participating — no degraded rounds at all.
        let plan = FaultPlan::new(5).crash_relay(0, 3).recover_relay(0, 6);
        let (history, report) = run_hier(plan, 10, 2, 2);
        assert_eq!(report.relay_crashes, 1);
        assert_eq!(report.relay_rejoins, 1);
        // 2 platforms × 3 rounds re-homed.
        assert_eq!(report.rehomes, 6);
        assert_eq!(report.orphaned_platform_rounds, 0);
        assert_eq!(history.degraded_rounds(), 0);
        assert!(history.records.iter().all(|r| r.participants == 4));
    }

    #[test]
    fn single_region_relay_crash_falls_back_direct() {
        // One region, its only relay down: platforms use the direct
        // server link, never orphaned.
        let plan = FaultPlan::new(6).crash_relay(0, 2).recover_relay(0, 4);
        let (history, report) = run_hier(plan, 6, 1, 3);
        assert_eq!(report.direct_fallbacks, 6, "3 platforms × 2 rounds");
        assert_eq!(report.rehomes, 0);
        assert_eq!(history.degraded_rounds(), 0);
    }

    #[test]
    fn partitioned_region_degrades_the_round_only() {
        let topo = HierTopology::new(2, 2);
        let plan = FaultPlan::new(7).partition_region(&topo, 1, 2, 5);
        let chaos = ChaosTransport::new(MemoryTransport::new(topo.clone()), plan);
        let (shards, test) = setup(4);
        let mut trainer = HierResilientTrainer::new(
            &arch(),
            config(8),
            HierPolicy::default(),
            topo,
            shards,
            test,
            &chaos,
        )
        .unwrap();
        let history = trainer.run().unwrap();
        // Region 1 (platforms 2, 3) is unreachable rounds 2..5: no
        // viable relay, no direct path — orphaned, round degrades.
        assert_eq!(trainer.report().orphaned_platform_rounds, 6);
        assert_eq!(history.degraded_rounds(), 3);
        for r in &history.records {
            let expected = if (2..5).contains(&r.round) { 2 } else { 4 };
            assert_eq!(r.participants, expected, "round {}", r.round);
        }
    }

    #[test]
    fn region_quorum_drops_partial_regions_whole() {
        // Platform 3 crashes; with region_quorum = 2 its region-mate
        // platform 2 is dropped too, so the whole region sits out.
        let plan = FaultPlan::new(8)
            .crash(NodeId::Platform(3), 2)
            .recover(NodeId::Platform(3), 4);
        let topo = HierTopology::new(2, 2);
        let chaos = ChaosTransport::new(MemoryTransport::new(topo.clone()), plan);
        let (shards, test) = setup(4);
        let hier = HierPolicy {
            region_quorum: 2,
            ..HierPolicy::default()
        };
        let mut trainer =
            HierResilientTrainer::new(&arch(), config(6), hier, topo, shards, test, &chaos).unwrap();
        let history = trainer.run().unwrap();
        assert_eq!(trainer.report().region_quorum_drops, 2, "rounds 2 and 3");
        for r in &history.records {
            let expected = if (2..4).contains(&r.round) { 2 } else { 4 };
            assert_eq!(r.participants, expected, "round {}", r.round);
        }
        assert!(
            history.final_accuracy > 0.5,
            "accuracy {}",
            history.final_accuracy
        );
    }

    #[test]
    fn loss_and_corruption_are_absorbed() {
        let (history, report) = run_hier(FaultPlan::new(9).with_drop(0.08).with_corrupt(0.04), 20, 2, 2);
        assert!(report.base.retries > 0);
        assert!(report.base.checksum_rejections > 0);
        assert!(
            history.final_accuracy > 0.5,
            "accuracy {}",
            history.final_accuracy
        );
    }

    #[test]
    fn hier_replays_bit_identically() {
        let topo = HierTopology::new(2, 2);
        let plan = FaultPlan::new(42)
            .with_drop(0.08)
            .with_dup(0.05)
            .crash_relay(1, 3)
            .recover_relay(1, 6)
            .partition_region(&topo, 0, 8, 10);
        let (h1, r1) = run_hier(plan.clone(), 12, 2, 2);
        let (h2, r2) = run_hier(plan, 12, 2, 2);
        assert_eq!(r1, r2);
        let key = |h: &TrainingHistory| -> Vec<_> {
            h.records
                .iter()
                .map(|r| {
                    (
                        r.round,
                        r.mean_loss.to_bits(),
                        r.cumulative_bytes,
                        r.simulated_time_s.to_bits(),
                        r.participants,
                        r.degraded,
                        r.accuracy.map(f32::to_bits),
                    )
                })
                .collect()
        };
        assert_eq!(key(&h1), key(&h2), "same seed ⇒ bit-identical history");
        assert_eq!(h1.stats, h2.stats);
        assert_eq!(h1.final_accuracy.to_bits(), h2.final_accuracy.to_bits());
    }

    #[test]
    fn shape_mismatches_rejected() {
        let topo = HierTopology::new(2, 2);
        let chaos = ChaosTransport::new(MemoryTransport::new(topo.clone()), FaultPlan::new(0));
        let (shards, test) = setup(3); // wrong: topology has 4 platforms
        assert!(matches!(
            HierResilientTrainer::new(
                &arch(),
                config(2),
                HierPolicy::default(),
                topo.clone(),
                shards,
                test.clone(),
                &chaos
            ),
            Err(SplitError::Config(_))
        ));
        let (shards, test) = setup(4);
        let bad = HierPolicy {
            region_quorum: 3,
            ..HierPolicy::default()
        };
        assert!(matches!(
            HierResilientTrainer::new(&arch(), config(2), bad, topo, shards, test, &chaos),
            Err(SplitError::Config(_))
        ));
    }
}
