//! Error type for the split-learning protocol.

use std::fmt;

use medsplit_simnet::NetError;
use medsplit_tensor::TensorError;

/// Errors produced while running the split-learning protocol.
#[derive(Debug)]
pub enum SplitError {
    /// A tensor operation failed (shape mismatch, corrupt payload, ...).
    Tensor(TensorError),
    /// The network transport failed (unknown node, shutdown, timeout).
    Net(NetError),
    /// The protocol state machine received an unexpected message.
    Protocol(String),
    /// Invalid configuration (e.g. split index out of range).
    Config(String),
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::Tensor(e) => write!(f, "tensor error: {e}"),
            SplitError::Net(e) => write!(f, "network error: {e}"),
            SplitError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            SplitError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SplitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SplitError::Tensor(e) => Some(e),
            SplitError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SplitError {
    fn from(e: TensorError) -> Self {
        SplitError::Tensor(e)
    }
}

impl From<NetError> for SplitError {
    fn from(e: NetError) -> Self {
        SplitError::Net(e)
    }
}

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, SplitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let t: SplitError = TensorError::Corrupt("x".into()).into();
        assert!(t.to_string().contains("tensor error"));
        let n: SplitError = NetError::Disconnected("y".into()).into();
        assert!(n.to_string().contains("network error"));
        assert!(SplitError::Protocol("bad".into()).to_string().contains("bad"));
        assert!(SplitError::Config("oops".into()).to_string().contains("oops"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let t: SplitError = TensorError::Corrupt("x".into()).into();
        assert!(t.source().is_some());
        assert!(SplitError::Protocol("p".into()).source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<SplitError>();
    }
}
