//! Training histories: the data behind every accuracy-vs-bytes curve in
//! the evaluation.

use medsplit_simnet::StatsSnapshot;

/// One row of a training run's log.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 0-based round index.
    pub round: usize,
    /// Learning rate used this round.
    pub lr: f32,
    /// Mean training loss across platforms this round.
    pub mean_loss: f32,
    /// Cumulative wire bytes after this round.
    pub cumulative_bytes: u64,
    /// Simulated makespan after this round, in seconds.
    pub simulated_time_s: f64,
    /// Wall-clock duration of this round on the host, in seconds.
    ///
    /// Unlike [`simulated_time_s`](Self::simulated_time_s) (the modelled
    /// geo-distributed makespan), this measures real compute time and is
    /// what the parallel kernel backend speeds up.
    pub wall_time_s: f64,
    /// Number of platforms whose contribution made it into this round's
    /// update. Equals the platform count for fail-stop drivers; the
    /// resilient trainer records the surviving quorum.
    pub participants: usize,
    /// Whether this round ran degraded: platforms were skipped (crashed,
    /// past the deadline, or out of retries) or the quorum failed
    /// entirely and the update was dropped.
    pub degraded: bool,
    /// Test accuracy, if this round was an evaluation round.
    pub accuracy: Option<f32>,
}

/// The complete log of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingHistory {
    /// Method name ("split", "fedavg", "sync_sgd", ...).
    pub method: String,
    /// Per-round records.
    pub records: Vec<RoundRecord>,
    /// Accuracy after the final round.
    pub final_accuracy: f32,
    /// Final communication statistics.
    pub stats: StatsSnapshot,
}

impl TrainingHistory {
    /// The best accuracy achieved at or under a communication budget, i.e.
    /// one point of the paper's Fig. 4 ("X GB transmitted @ Y% accuracy").
    pub fn accuracy_at_bytes(&self, budget: u64) -> Option<f32> {
        self.records
            .iter()
            .filter(|r| r.cumulative_bytes <= budget)
            .filter_map(|r| r.accuracy)
            .fold(None, |best, a| Some(best.map_or(a, |b: f32| b.max(a))))
    }

    /// The cumulative bytes at which accuracy first reached `target`
    /// (communication-to-accuracy), if it ever did.
    pub fn bytes_to_accuracy(&self, target: f32) -> Option<u64> {
        self.records
            .iter()
            .find(|r| r.accuracy.is_some_and(|a| a >= target))
            .map(|r| r.cumulative_bytes)
    }

    /// The `(bytes, accuracy)` series of evaluation rounds — the curve of
    /// Fig. 4.
    pub fn curve(&self) -> Vec<(u64, f32)> {
        self.records
            .iter()
            .filter_map(|r| r.accuracy.map(|a| (r.cumulative_bytes, a)))
            .collect()
    }

    /// Renders the history as CSV
    /// (`method,round,lr,loss,bytes,simulated_s,wall_s,participants,degraded,accuracy`).
    ///
    /// Two easily confused time columns, both cumulative-vs-per-round
    /// asymmetric on purpose:
    ///
    /// - `simulated_s` — [`RoundRecord::simulated_time_s`]: the modelled
    ///   geo-distributed makespan on the simulated clock *after* this
    ///   round (cumulative). This is the time axis the paper's figures
    ///   use; it depends only on link specs, message sizes, and the
    ///   compute model — never on the host.
    /// - `wall_s` — [`RoundRecord::wall_time_s`]: real host seconds spent
    ///   computing *this* round (per-round, not cumulative). This is what
    ///   kernel optimisations speed up and what `trace_report` breaks
    ///   down by phase; it says nothing about WAN behaviour.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("method,round,lr,loss,bytes,simulated_s,wall_s,participants,degraded,accuracy\n");
        for r in &self.records {
            let acc = r.accuracy.map_or(String::new(), |a| format!("{a:.4}"));
            out.push_str(&format!(
                "{},{},{:.5},{:.4},{},{:.3},{:.3},{},{},{}\n",
                self.method,
                r.round,
                r.lr,
                r.mean_loss,
                r.cumulative_bytes,
                r.simulated_time_s,
                r.wall_time_s,
                r.participants,
                r.degraded as u8,
                acc
            ));
        }
        out
    }

    /// Number of rounds recorded as degraded.
    pub fn degraded_rounds(&self) -> usize {
        self.records.iter().filter(|r| r.degraded).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> TrainingHistory {
        let mk = |round, bytes, acc: Option<f32>| RoundRecord {
            round,
            lr: 0.1,
            mean_loss: 1.0,
            cumulative_bytes: bytes,
            simulated_time_s: round as f64,
            wall_time_s: 0.01,
            participants: 2,
            degraded: round == 1,
            accuracy: acc,
        };
        TrainingHistory {
            method: "split".into(),
            records: vec![
                mk(0, 100, Some(0.2)),
                mk(1, 200, None),
                mk(2, 300, Some(0.5)),
                mk(3, 400, Some(0.45)),
            ],
            final_accuracy: 0.45,
            stats: StatsSnapshot {
                total_bytes: 400,
                logical_bytes: 400,
                messages: 10,
                by_kind: vec![],
                msgs_by_kind: vec![],
                uplink_bytes: 250,
                downlink_bytes: 150,
                makespan_s: 3.0,
            },
        }
    }

    #[test]
    fn accuracy_at_bytes_takes_best_within_budget() {
        let h = history();
        assert_eq!(h.accuracy_at_bytes(50), None);
        assert_eq!(h.accuracy_at_bytes(100), Some(0.2));
        assert_eq!(h.accuracy_at_bytes(350), Some(0.5));
        assert_eq!(h.accuracy_at_bytes(1000), Some(0.5));
    }

    #[test]
    fn bytes_to_accuracy_finds_first_crossing() {
        let h = history();
        assert_eq!(h.bytes_to_accuracy(0.2), Some(100));
        assert_eq!(h.bytes_to_accuracy(0.5), Some(300));
        assert_eq!(h.bytes_to_accuracy(0.9), None);
    }

    #[test]
    fn curve_skips_non_eval_rounds() {
        let h = history();
        assert_eq!(h.curve(), vec![(100, 0.2), (300, 0.5), (400, 0.45)]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = history().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(
            lines[0],
            "method,round,lr,loss,bytes,simulated_s,wall_s,participants,degraded,accuracy"
        );
        assert!(lines[1].starts_with("split,0,"));
        // Non-eval rounds leave the accuracy column empty.
        assert!(lines[2].ends_with(','));
        // Round 1 is marked degraded in the fixture.
        assert!(lines[2].contains(",2,1,"));
        assert_eq!(history().degraded_rounds(), 1);
    }
}
