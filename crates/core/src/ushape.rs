//! The U-shaped split variant (Vepakomma et al., the paper's reference
//! \[1\]): the platform keeps **both** the first layers (`head`) and the
//! final layers (`tail`, including the classifier). The server holds only
//! the middle section and never sees raw data, labels, *or logits* — it
//! cannot even observe the model's predictions for a patient.
//!
//! One round is still four messages per platform:
//!
//! ```text
//! platform k                               server
//! ----------                               ------
//! head fwd on minibatch s_k
//!   -- 1. Activations ----------------->
//!                                          middle fwd (aggregated)
//!   <-- 2. Features ------------------–
//! tail fwd, local loss, tail backward + update
//!   -- 3. FeatureGrads ----------------->
//!                                          middle backward + update
//!   <-- 4. CutGrads -------------------–
//! head backward + update
//! ```

use medsplit_data::{BatchSampler, InMemoryDataset};
use medsplit_nn::{accuracy, softmax_cross_entropy, Architecture, Layer, Mode, Optimizer, Sequential, Sgd};
use medsplit_simnet::{Envelope, MessageKind, NodeId, Transport};
use medsplit_tensor::Tensor;

use crate::config::{Scheduling, SplitConfig, WireCodec};
use crate::error::{Result, SplitError};
use crate::history::{RoundRecord, TrainingHistory};
use crate::messages::{decode_tensor, tensor_envelope_codec};
use crate::server::SplitServer;
use crate::split::resolve_split;

/// One platform of the U-shaped protocol: head + tail + private data.
pub struct UShapePlatform {
    id: usize,
    head: Sequential,
    tail: Sequential,
    data: InMemoryDataset,
    sampler: BatchSampler,
    head_opt: Sgd,
    tail_opt: Sgd,
    grad_scale: f32,
    codec: WireCodec,
    pending_labels: Option<Vec<usize>>,
}

impl UShapePlatform {
    fn new(
        id: usize,
        head: Sequential,
        tail: Sequential,
        data: InMemoryDataset,
        batch: usize,
        momentum: f32,
        seed: u64,
    ) -> Self {
        let sampler = BatchSampler::new(
            data.len(),
            batch,
            seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        UShapePlatform {
            id,
            head,
            tail,
            data,
            sampler,
            head_opt: Sgd::new(0.01).with_momentum(momentum),
            tail_opt: Sgd::new(0.01).with_momentum(momentum),
            grad_scale: 1.0,
            codec: WireCodec::F32,
            pending_labels: None,
        }
    }

    /// This platform's node id.
    pub fn node(&self) -> NodeId {
        NodeId::Platform(self.id)
    }

    fn set_lr(&mut self, lr: f32) {
        self.head_opt.set_learning_rate(lr);
        self.tail_opt.set_learning_rate(lr);
    }

    /// Step 1: head forward, transmit activations.
    fn start_round(&mut self, round: u64) -> Result<Envelope> {
        let (features, labels) = self.sampler.next_from(&self.data);
        let acts = self.head.forward(&features, Mode::Train)?;
        self.pending_labels = Some(labels);
        Ok(tensor_envelope_codec(
            self.node(),
            NodeId::Server,
            round,
            MessageKind::Activations,
            &acts,
            self.codec,
        ))
    }

    /// Step 3: tail forward on the received features, local loss, tail
    /// backward + update; transmit the gradients w.r.t. the features.
    fn handle_features(&mut self, env: &Envelope) -> Result<(Envelope, f32)> {
        let features = decode_tensor(env, MessageKind::Features)?;
        let labels = self.pending_labels.as_ref().ok_or_else(|| {
            SplitError::Protocol(format!(
                "platform {} got features with no round in flight",
                self.id
            ))
        })?;
        let logits = self.tail.forward(&features, Mode::Train)?;
        let out = softmax_cross_entropy(&logits, labels)?;
        let logit_grad = if self.grad_scale == 1.0 {
            out.grad
        } else {
            out.grad.scale(self.grad_scale)
        };
        let feature_grad = self.tail.backward(&logit_grad)?;
        self.tail_opt.step_and_zero(&mut self.tail);
        Ok((
            tensor_envelope_codec(
                self.node(),
                NodeId::Server,
                env.round,
                MessageKind::FeatureGrads,
                &feature_grad,
                self.codec,
            ),
            out.loss,
        ))
    }

    /// Step 5: head backward on the cut gradients + update.
    fn handle_cut_grads(&mut self, env: &Envelope) -> Result<()> {
        let grads = decode_tensor(env, MessageKind::CutGrads)?;
        if self.pending_labels.take().is_none() {
            return Err(SplitError::Protocol(format!(
                "platform {} got cut grads with no round in flight",
                self.id
            )));
        }
        self.head.backward(&grads)?;
        self.head_opt.step_and_zero(&mut self.head);
        Ok(())
    }

    /// Inference through the platform-side parts composed with provided
    /// middle features (used by evaluation).
    fn infer_tail(&mut self, features: &Tensor) -> Result<Tensor> {
        Ok(self.tail.forward(features, Mode::Eval)?)
    }

    fn infer_head(&mut self, inputs: &Tensor) -> Result<Tensor> {
        Ok(self.head.forward(inputs, Mode::Eval)?)
    }
}

/// The U-shaped trainer: like
/// [`SplitTrainer`](crate::trainer::SplitTrainer) with the classifier head
/// kept platform-side. `tail_layers` final layers stay on each platform.
pub struct UShapeTrainer<'t, T: Transport> {
    config: SplitConfig,
    platforms: Vec<UShapePlatform>,
    server: SplitServer,
    transport: &'t T,
    test: InMemoryDataset,
}

impl<'t, T: Transport> UShapeTrainer<'t, T> {
    /// Builds the U-shaped trainer.
    ///
    /// The head cut comes from `config.split`; `tail_layers` is the
    /// number of final layers kept on the platform (≥ 1 for a meaningful
    /// U; 0 degenerates to the standard split with relabelled messages).
    ///
    /// # Errors
    ///
    /// Returns configuration errors if the cuts overlap or shards are
    /// unusable.
    pub fn new(
        arch: &Architecture,
        config: SplitConfig,
        tail_layers: usize,
        shards: Vec<InMemoryDataset>,
        test: InMemoryDataset,
        transport: &'t T,
    ) -> Result<Self> {
        if shards.is_empty() {
            return Err(SplitError::Config(
                "at least one platform shard is required".into(),
            ));
        }
        if shards.iter().any(InMemoryDataset::is_empty) {
            return Err(SplitError::Config("platform shards must be non-empty".into()));
        }
        if config.scheduling != Scheduling::Aggregate {
            return Err(SplitError::Config(
                "the U-shaped trainer implements Aggregate scheduling".into(),
            ));
        }
        let head_split = resolve_split(arch, config.split)?;
        let total_layers = arch.build(0).len();
        if head_split + tail_layers >= total_layers {
            return Err(SplitError::Config(format!(
                "head ({head_split}) + tail ({tail_layers}) leave no middle layers (model has {total_layers})"
            )));
        }
        let tail_split = total_layers - tail_layers;

        let sizes: Vec<usize> = shards.iter().map(InMemoryDataset::len).collect();
        let batches = config.minibatch.sizes(&sizes);
        let total_batch: usize = batches.iter().sum();

        let mut platforms = Vec::with_capacity(shards.len());
        for (id, (data, &batch)) in shards.into_iter().zip(&batches).enumerate() {
            let mut full = arch.build(config.seed);
            let tail = full.split_off(tail_split);
            let _middle = full.split_off(head_split);
            let head = full;
            let mut p = UShapePlatform::new(id, head, tail, data, batch, config.momentum, config.seed);
            p.grad_scale = batch as f32 / total_batch as f32;
            p.codec = config.codec;
            platforms.push(p);
        }
        let mut full = arch.build(config.seed);
        let _tail = full.split_off(tail_split);
        let middle = full.split_off(head_split);
        let mut server = SplitServer::new_u_shaped(middle, config.momentum);
        server.set_codec(config.codec);
        Ok(UShapeTrainer {
            config,
            platforms,
            server,
            transport,
            test,
        })
    }

    /// Mean accuracy of each platform's composed model (head + middle +
    /// tail) on the test set.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors.
    pub fn evaluate(&mut self) -> Result<f32> {
        const EVAL_BATCH: usize = 64;
        let mut total = 0.0;
        for platform in &mut self.platforms {
            let n = self.test.len();
            let mut correct_weighted = 0.0;
            let mut start = 0;
            while start < n {
                let count = EVAL_BATCH.min(n - start);
                let idx: Vec<usize> = (start..start + count).collect();
                let (inputs, labels) = self.test.batch(&idx)?;
                let acts = platform.infer_head(&inputs)?;
                let feats = self.server.infer(&acts)?;
                let logits = platform.infer_tail(&feats)?;
                correct_weighted += accuracy(&logits, &labels)? * count as f32;
                start += count;
            }
            total += correct_weighted / n.max(1) as f32;
        }
        Ok(total / self.platforms.len() as f32)
    }

    /// Runs the configured number of rounds.
    ///
    /// # Errors
    ///
    /// Propagates protocol, tensor and transport errors.
    pub fn run(&mut self) -> Result<TrainingHistory> {
        let k = self.platforms.len();
        let mut records = Vec::with_capacity(self.config.rounds);
        for round in 0..self.config.rounds {
            let round_start = std::time::Instant::now();
            let lr = self.config.lr.lr_at(round);
            for p in &mut self.platforms {
                p.set_lr(lr);
            }
            self.server.set_lr(lr);

            for p in &mut self.platforms {
                let env = p.start_round(round as u64)?;
                self.transport.send(env)?;
            }
            let acts: Vec<Envelope> = (0..k)
                .map(|_| {
                    self.transport
                        .try_recv(NodeId::Server)
                        .ok_or_else(|| SplitError::Protocol("missing activations".into()))
                })
                .collect::<Result<_>>()?;
            for env in self.server.aggregate_forward(&acts)? {
                self.transport.send(env)?;
            }
            let mut losses = Vec::with_capacity(k);
            for p in &mut self.platforms {
                let env = self
                    .transport
                    .try_recv(p.node())
                    .ok_or_else(|| SplitError::Protocol("missing features".into()))?;
                let (grads, loss) = p.handle_features(&env)?;
                losses.push(loss);
                self.transport.send(grads)?;
            }
            let grads: Vec<Envelope> = (0..k)
                .map(|_| {
                    self.transport
                        .try_recv(NodeId::Server)
                        .ok_or_else(|| SplitError::Protocol("missing feature grads".into()))
                })
                .collect::<Result<_>>()?;
            for env in self.server.aggregate_backward(&grads)? {
                self.transport.send(env)?;
            }
            for p in &mut self.platforms {
                let env = self
                    .transport
                    .try_recv(p.node())
                    .ok_or_else(|| SplitError::Protocol("missing cut grads".into()))?;
                p.handle_cut_grads(&env)?;
            }

            let eval_due = self.config.eval_every > 0 && (round + 1) % self.config.eval_every == 0;
            let accuracy = if eval_due { Some(self.evaluate()?) } else { None };
            let snap = self.transport.stats().snapshot();
            records.push(RoundRecord {
                round,
                lr,
                mean_loss: losses.iter().sum::<f32>() / losses.len().max(1) as f32,
                cumulative_bytes: snap.total_bytes,
                simulated_time_s: snap.makespan_s,
                wall_time_s: round_start.elapsed().as_secs_f64(),
                participants: losses.len(),
                degraded: false,
                accuracy,
            });
        }
        let final_accuracy = match records.last().and_then(|r| r.accuracy) {
            Some(a) => a,
            None => {
                let a = self.evaluate()?;
                if let Some(last) = records.last_mut() {
                    last.accuracy = Some(a);
                }
                a
            }
        };
        Ok(TrainingHistory {
            method: "split_ushape".into(),
            records,
            final_accuracy,
            stats: self.transport.stats().snapshot(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::SplitTrainer;
    use medsplit_data::{partition, MinibatchPolicy, Partition, SyntheticTabular};
    use medsplit_nn::{LrSchedule, MlpConfig};
    use medsplit_simnet::{MemoryTransport, StarTopology};

    fn arch() -> Architecture {
        Architecture::Mlp(MlpConfig {
            input_dim: 8,
            hidden: vec![16, 12],
            num_classes: 3,
        })
    }

    fn data() -> (Vec<InMemoryDataset>, InMemoryDataset) {
        let all = SyntheticTabular::new(3, 8, 0).generate(120).unwrap();
        let train = all.subset(&(0..90).collect::<Vec<_>>()).unwrap();
        let test = all.subset(&(90..120).collect::<Vec<_>>()).unwrap();
        (partition(&train, 2, &Partition::Iid, 1).unwrap(), test)
    }

    fn config(rounds: usize) -> SplitConfig {
        SplitConfig {
            rounds,
            eval_every: 0,
            lr: LrSchedule::Constant(0.1),
            minibatch: MinibatchPolicy::Fixed(8),
            ..SplitConfig::default()
        }
    }

    #[test]
    fn ushape_learns() {
        let (shards, test) = data();
        let transport = MemoryTransport::new(StarTopology::new(2));
        let mut trainer = UShapeTrainer::new(&arch(), config(60), 1, shards, test, &transport).unwrap();
        let before = trainer.evaluate().unwrap();
        let history = trainer.run().unwrap();
        assert!(
            history.final_accuracy > before + 0.2,
            "{before} -> {}",
            history.final_accuracy
        );
    }

    #[test]
    fn no_logits_ever_reach_the_server() {
        let (shards, test) = data();
        let transport = MemoryTransport::new(StarTopology::new(2));
        let mut trainer = UShapeTrainer::new(&arch(), config(5), 1, shards, test, &transport).unwrap();
        let history = trainer.run().unwrap();
        // Message mix: activations/features/feature-grads/cut-grads only.
        assert_eq!(history.stats.bytes_of(MessageKind::Logits), 0);
        assert_eq!(history.stats.bytes_of(MessageKind::LogitGrads), 0);
        assert!(history.stats.bytes_of(MessageKind::Features) > 0);
        assert!(history.stats.bytes_of(MessageKind::FeatureGrads) > 0);
        assert!(history.stats.bytes_of(MessageKind::Activations) > 0);
        assert!(history.stats.bytes_of(MessageKind::CutGrads) > 0);
        assert_eq!(history.stats.messages, 2 * 4 * 5);
    }

    #[test]
    fn degenerate_tail_matches_standard_split_learning_curve() {
        // tail_layers = 0 is the standard protocol with re-tagged
        // messages: identical losses round by round.
        let (shards, test) = data();
        let t1 = MemoryTransport::new(StarTopology::new(2));
        let mut u = UShapeTrainer::new(&arch(), config(8), 0, shards.clone(), test.clone(), &t1).unwrap();
        let hu = u.run().unwrap();

        let t2 = MemoryTransport::new(StarTopology::new(2));
        let mut s = SplitTrainer::new(&arch(), config(8), shards, test, &t2).unwrap();
        let hs = s.run().unwrap();

        for (a, b) in hu.records.iter().zip(&hs.records) {
            assert!(
                (a.mean_loss - b.mean_loss).abs() < 1e-6,
                "round {}: {} vs {}",
                a.round,
                a.mean_loss,
                b.mean_loss
            );
        }
        assert!((hu.final_accuracy - hs.final_accuracy).abs() < 1e-6);
        assert_eq!(
            hu.stats.total_bytes, hs.stats.total_bytes,
            "same tensor sizes, same bytes"
        );
    }

    #[test]
    fn overlapping_cuts_rejected() {
        let (shards, test) = data();
        let transport = MemoryTransport::new(StarTopology::new(2));
        // MLP has 5 layers; head split (default 2) + tail 3 >= 5.
        assert!(matches!(
            UShapeTrainer::new(&arch(), config(1), 3, shards.clone(), test.clone(), &transport),
            Err(SplitError::Config(_))
        ));
        assert!(matches!(
            UShapeTrainer::new(&arch(), config(1), 99, shards, test, &transport),
            Err(SplitError::Config(_))
        ));
    }

    #[test]
    fn round_robin_unsupported() {
        let (shards, test) = data();
        let transport = MemoryTransport::new(StarTopology::new(2));
        let mut cfg = config(1);
        cfg.scheduling = Scheduling::RoundRobin;
        assert!(matches!(
            UShapeTrainer::new(&arch(), cfg, 1, shards, test, &transport),
            Err(SplitError::Config(_))
        ));
    }
}
