//! The server-side actor: owns the hidden layers `L2..Lk` and the output
//! layer, and trains them on activations from *all* platforms.

use medsplit_nn::{Layer, Mode, Optimizer, Sequential};
use medsplit_simnet::{Envelope, MessageKind, NodeId};
use medsplit_tensor::Tensor;

use crate::config::WireCodec;
use crate::error::{Result, SplitError};
#[cfg(test)]
use crate::messages::tensor_envelope;
use crate::messages::{decode_tensor, sender_platform, tensor_envelope_codec};

/// The central server: layers `L2..Lk`, an optimiser for them, and the
/// per-round bookkeeping needed to route logits and cut gradients back to
/// the right platform.
pub struct SplitServer {
    model: Sequential,
    optimizer: Box<dyn Optimizer>,
    /// Batch layout of the in-flight aggregated round:
    /// `(platform, batch_size)` in concatenation order.
    layout: Vec<(usize, usize)>,
    /// Platform whose round-robin exchange is in flight.
    in_flight: Option<usize>,
    codec: WireCodec,
    /// Kind of the server's forward output (Logits for the standard
    /// protocol; Features for the U-shaped variant).
    fwd_out_kind: MessageKind,
    /// Kind expected for the platforms' backward input (LogitGrads /
    /// FeatureGrads).
    bwd_in_kind: MessageKind,
}

impl SplitServer {
    /// Creates the server actor from the `L2..Lk` suffix of the network.
    pub fn new(model: Sequential, momentum: f32) -> Self {
        SplitServer {
            model,
            optimizer: crate::config::OptimizerKind::Sgd.build(momentum),
            layout: Vec::new(),
            in_flight: None,
            codec: WireCodec::F32,
            fwd_out_kind: MessageKind::Logits,
            bwd_in_kind: MessageKind::LogitGrads,
        }
    }

    /// Creates a server for the U-shaped variant: its forward output is a
    /// feature map (the platform holds the classifier head), so the
    /// messages are tagged [`MessageKind::Features`] /
    /// [`MessageKind::FeatureGrads`].
    pub fn new_u_shaped(model: Sequential, momentum: f32) -> Self {
        let mut s = Self::new(model, momentum);
        s.fwd_out_kind = MessageKind::Features;
        s.bwd_in_kind = MessageKind::FeatureGrads;
        s
    }

    /// Sets the learning rate for the server-side optimiser.
    pub fn set_lr(&mut self, lr: f32) {
        self.optimizer.set_learning_rate(lr);
    }

    /// Sets the wire codec used for outbound protocol tensors.
    pub fn set_codec(&mut self, codec: WireCodec) {
        self.codec = codec;
    }

    /// Replaces the server-side optimiser (resets its state).
    pub fn set_optimizer(&mut self, optimizer: Box<dyn Optimizer>) {
        self.optimizer = optimizer;
    }

    /// Mutable access to the server model (evaluation, checkpointing).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Number of trainable parameters on the server side.
    pub fn param_count(&mut self) -> usize {
        self.model.param_count()
    }

    /// Runs the server layers in inference mode (used to compose the
    /// deployed model during evaluation and by the serving path).
    ///
    /// The forward runs in [`Mode::Eval`] and the model's recorded mode is
    /// restored afterwards, so inference interleaved with training leaves
    /// no trace: no dropout, no running-statistics updates, no cached
    /// backward state, and the mode bookkeeping a caller may rely on is
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors.
    pub fn infer(&mut self, activations: &Tensor) -> Result<Tensor> {
        let prior = self.model.mode();
        let result = self.model.forward(activations, Mode::Eval);
        self.model.set_mode(prior);
        Ok(result?)
    }

    /// Serialises the server model (parameters + batch-norm state) into a
    /// checkpoint blob, so a crashed server can resume without retraining.
    pub fn checkpoint(&mut self) -> bytes::Bytes {
        medsplit_nn::vectorize::snapshot_vector(&mut self.model).to_bytes()
    }

    /// FNV-1a digest of the server model's full snapshot (parameters +
    /// batch-norm state). Fleet replicas use it to verify that a restored
    /// weight version is bit-identical to the bank's copy without moving
    /// the snapshot again.
    pub fn weights_digest(&mut self) -> u64 {
        medsplit_nn::vectorize::parameter_digest(&mut self.model)
    }

    /// Restores a checkpoint produced by [`checkpoint`](Self::checkpoint).
    ///
    /// Optimiser momentum is not part of the checkpoint: after a restore,
    /// training resumes with fresh momentum buffers (the standard
    /// trade-off for parameter-only checkpoints).
    ///
    /// # Errors
    ///
    /// Returns tensor errors for corrupt blobs or mismatched
    /// architectures.
    pub fn restore(&mut self, blob: &bytes::Bytes) -> Result<()> {
        let snapshot = Tensor::from_bytes(blob.clone())?;
        medsplit_nn::vectorize::load_snapshot_vector(&mut self.model, &snapshot)?;
        Ok(())
    }

    // ----- aggregate scheduling --------------------------------------------

    /// **Aggregate forward**: concatenates all platforms' activation
    /// batches (sorted by platform id), runs one forward pass, and returns
    /// per-platform logits messages.
    ///
    /// # Errors
    ///
    /// Returns protocol errors for duplicate/foreign senders or decode
    /// failures.
    pub fn aggregate_forward(&mut self, acts: &[Envelope]) -> Result<Vec<Envelope>> {
        if acts.is_empty() {
            return Err(SplitError::Protocol("aggregate round with no activations".into()));
        }
        let round = acts[0].round;
        let _span = medsplit_telemetry::span_round("server_fwd_bwd", round);
        let mut decoded: Vec<(usize, Tensor)> = Vec::with_capacity(acts.len());
        for env in acts {
            let pid = sender_platform(env)?;
            if decoded.iter().any(|(p, _)| *p == pid) {
                return Err(SplitError::Protocol(format!(
                    "duplicate activations from platform {pid}"
                )));
            }
            decoded.push((pid, decode_tensor(env, MessageKind::Activations)?));
        }
        decoded.sort_by_key(|(pid, _)| *pid);
        self.layout = decoded.iter().map(|(pid, t)| (*pid, t.dims()[0])).collect();
        let tensors: Vec<Tensor> = decoded.into_iter().map(|(_, t)| t).collect();
        let batch = Tensor::concat0(&tensors)?;
        let logits = self.model.forward(&batch, Mode::Train)?;
        // Slice logits back out per platform, in layout order.
        let mut out = Vec::with_capacity(self.layout.len());
        let mut offset = 0;
        for &(pid, n) in &self.layout {
            let slice = logits.slice0(offset, n)?;
            offset += n;
            out.push(tensor_envelope_codec(
                NodeId::Server,
                NodeId::Platform(pid),
                round,
                self.fwd_out_kind,
                &slice,
                self.codec,
            ));
        }
        Ok(out)
    }

    /// **Aggregate backward**: concatenates the platforms' logit
    /// gradients (in the layout order of the forward), backpropagates
    /// once, applies the optimiser step, and returns per-platform
    /// cut-gradient messages.
    ///
    /// # Errors
    ///
    /// Returns protocol errors if the senders or batch sizes do not match
    /// the in-flight layout.
    pub fn aggregate_backward(&mut self, grads: &[Envelope]) -> Result<Vec<Envelope>> {
        let _span = match grads.first() {
            Some(g) => medsplit_telemetry::span_round("server_fwd_bwd", g.round),
            None => medsplit_telemetry::span("server_fwd_bwd"),
        };
        if self.layout.is_empty() {
            return Err(SplitError::Protocol(
                "aggregate backward with no forward in flight".into(),
            ));
        }
        if grads.len() != self.layout.len() {
            return Err(SplitError::Protocol(format!(
                "expected {} gradient messages, got {}",
                self.layout.len(),
                grads.len()
            )));
        }
        let round = grads[0].round;
        let mut by_pid: Vec<Option<Tensor>> = vec![None; self.layout.len()];
        for env in grads {
            let pid = sender_platform(env)?;
            let slot = self.layout.iter().position(|(p, _)| *p == pid).ok_or_else(|| {
                SplitError::Protocol(format!("gradients from platform {pid} not in this round"))
            })?;
            if by_pid[slot].is_some() {
                return Err(SplitError::Protocol(format!(
                    "duplicate gradients from platform {pid}"
                )));
            }
            let t = decode_tensor(env, self.bwd_in_kind)?;
            if t.dims()[0] != self.layout[slot].1 {
                return Err(SplitError::Protocol(format!(
                    "platform {pid} sent a gradient batch of {} rows, expected {}",
                    t.dims()[0],
                    self.layout[slot].1
                )));
            }
            by_pid[slot] = Some(t);
        }
        let tensors: Vec<Tensor> = by_pid.into_iter().map(|t| t.expect("all slots filled")).collect();
        let grad = Tensor::concat0(&tensors)?;
        let cut = self.model.backward(&grad)?;
        self.optimizer.step_and_zero(&mut self.model);
        let mut out = Vec::with_capacity(self.layout.len());
        let mut offset = 0;
        for &(pid, n) in &self.layout {
            let slice = cut.slice0(offset, n)?;
            offset += n;
            out.push(tensor_envelope_codec(
                NodeId::Server,
                NodeId::Platform(pid),
                round,
                MessageKind::CutGrads,
                &slice,
                self.codec,
            ));
        }
        self.layout.clear();
        Ok(out)
    }

    // ----- round-robin scheduling ------------------------------------------

    /// **Round-robin forward**: processes one platform's activations and
    /// returns its logits message. The server then expects that platform's
    /// gradients before any other forward.
    ///
    /// # Errors
    ///
    /// Returns protocol errors if another exchange is in flight.
    pub fn platform_forward(&mut self, env: &Envelope) -> Result<Envelope> {
        let _span = medsplit_telemetry::span_round("server_fwd_bwd", env.round);
        if let Some(p) = self.in_flight {
            return Err(SplitError::Protocol(format!(
                "platform {p} exchange still in flight"
            )));
        }
        let pid = sender_platform(env)?;
        let acts = decode_tensor(env, MessageKind::Activations)?;
        let logits = self.model.forward(&acts, Mode::Train)?;
        self.in_flight = Some(pid);
        Ok(tensor_envelope_codec(
            NodeId::Server,
            NodeId::Platform(pid),
            env.round,
            self.fwd_out_kind,
            &logits,
            self.codec,
        ))
    }

    /// **Round-robin backward**: backpropagates one platform's logit
    /// gradients, applies the optimiser step, and returns its cut
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns protocol errors if the sender does not match the in-flight
    /// platform.
    pub fn platform_backward(&mut self, env: &Envelope) -> Result<Envelope> {
        let _span = medsplit_telemetry::span_round("server_fwd_bwd", env.round);
        let pid = sender_platform(env)?;
        match self.in_flight.take() {
            Some(p) if p == pid => {}
            Some(p) => {
                self.in_flight = Some(p);
                return Err(SplitError::Protocol(format!(
                    "expected gradients from platform {p}, got {pid}"
                )));
            }
            None => return Err(SplitError::Protocol("gradients with no forward in flight".into())),
        }
        let grad = decode_tensor(env, self.bwd_in_kind)?;
        let cut = self.model.backward(&grad)?;
        self.optimizer.step_and_zero(&mut self.model);
        Ok(tensor_envelope_codec(
            NodeId::Server,
            NodeId::Platform(pid),
            env.round,
            MessageKind::CutGrads,
            &cut,
            self.codec,
        ))
    }
}

impl std::fmt::Debug for SplitServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitServer")
            .field("model", &self.model.describe())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_nn::Dense;
    use medsplit_tensor::init::rng_from_seed;

    fn server(seed: u64) -> SplitServer {
        let mut rng = rng_from_seed(seed);
        let mut s = Sequential::new("server");
        s.push(Dense::new(6, 3, &mut rng));
        SplitServer::new(s, 0.0)
    }

    fn acts_env(pid: usize, rows: usize, round: u64) -> Envelope {
        tensor_envelope(
            NodeId::Platform(pid),
            NodeId::Server,
            round,
            MessageKind::Activations,
            &Tensor::ones([rows, 6]),
        )
    }

    fn grads_env(pid: usize, rows: usize, round: u64) -> Envelope {
        tensor_envelope(
            NodeId::Platform(pid),
            NodeId::Server,
            round,
            MessageKind::LogitGrads,
            &Tensor::full([rows, 3], 0.1),
        )
    }

    #[test]
    fn aggregate_roundtrip_slices_per_platform() {
        let mut s = server(0);
        let logits = s
            .aggregate_forward(&[acts_env(1, 2, 0), acts_env(0, 3, 0)])
            .unwrap();
        // Sorted by platform id regardless of arrival order.
        assert_eq!(logits[0].dst, NodeId::Platform(0));
        assert_eq!(
            decode_tensor(&logits[0], MessageKind::Logits).unwrap().dims(),
            &[3, 3]
        );
        assert_eq!(
            decode_tensor(&logits[1], MessageKind::Logits).unwrap().dims(),
            &[2, 3]
        );

        let cuts = s
            .aggregate_backward(&[grads_env(0, 3, 0), grads_env(1, 2, 0)])
            .unwrap();
        assert_eq!(
            decode_tensor(&cuts[0], MessageKind::CutGrads).unwrap().dims(),
            &[3, 6]
        );
        assert_eq!(
            decode_tensor(&cuts[1], MessageKind::CutGrads).unwrap().dims(),
            &[2, 6]
        );
    }

    #[test]
    fn aggregate_protocol_violations() {
        let mut s = server(1);
        assert!(s.aggregate_forward(&[]).is_err());
        assert!(s.aggregate_backward(&[grads_env(0, 2, 0)]).is_err());
        let _ = s.aggregate_forward(&[acts_env(0, 2, 0)]).unwrap();
        // Wrong platform.
        assert!(s.aggregate_backward(&[grads_env(1, 2, 0)]).is_err());
        // Wrong batch size.
        assert!(s.aggregate_backward(&[grads_env(0, 5, 0)]).is_err());
        // Duplicate activations.
        let mut s2 = server(2);
        assert!(s2
            .aggregate_forward(&[acts_env(0, 2, 0), acts_env(0, 2, 0)])
            .is_err());
    }

    #[test]
    fn aggregate_updates_parameters() {
        let mut s = server(3);
        let before = medsplit_nn::vectorize::parameter_vector(s.model_mut());
        let _ = s.aggregate_forward(&[acts_env(0, 4, 0)]).unwrap();
        s.set_lr(0.5);
        let _ = s.aggregate_backward(&[grads_env(0, 4, 0)]).unwrap();
        let after = medsplit_nn::vectorize::parameter_vector(s.model_mut());
        assert_ne!(before, after);
    }

    #[test]
    fn infer_is_deterministic_and_restores_mode() {
        let mut rng = rng_from_seed(5);
        let mut m = Sequential::new("server");
        m.push(Dense::new(6, 8, &mut rng));
        m.push(medsplit_nn::BatchNorm::new(8));
        m.push(medsplit_nn::Dropout::new(0.3, 5));
        m.push(Dense::new(8, 3, &mut rng));
        let mut s = SplitServer::new(m, 0.0);

        // Mid-training inference: a forward is in flight.
        let _ = s.platform_forward(&acts_env(0, 2, 0)).unwrap();
        assert_eq!(s.model_mut().mode(), Mode::Train);
        let x = Tensor::full([4, 6], 0.5);
        let a = s.infer(&x).unwrap();
        let b = s.infer(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "eval inference must be deterministic");
        assert_eq!(s.model_mut().mode(), Mode::Train, "mode must be restored");
        // The in-flight exchange still completes against the training cache.
        assert!(s.platform_backward(&grads_env(0, 2, 0)).is_ok());
    }

    #[test]
    fn weights_digest_matches_checkpoint_identity() {
        let mut a = server(6);
        let mut b = server(7);
        assert_ne!(a.weights_digest(), b.weights_digest());
        let blob = a.checkpoint();
        b.restore(&blob).unwrap();
        assert_eq!(a.weights_digest(), b.weights_digest());
    }

    #[test]
    fn round_robin_enforces_ordering() {
        let mut s = server(4);
        let logits = s.platform_forward(&acts_env(0, 2, 0)).unwrap();
        assert_eq!(logits.dst, NodeId::Platform(0));
        // Second forward before backward is a violation.
        assert!(s.platform_forward(&acts_env(1, 2, 0)).is_err());
        // Gradients from the wrong platform rejected.
        assert!(s.platform_backward(&grads_env(1, 2, 0)).is_err());
        let cut = s.platform_backward(&grads_env(0, 2, 0)).unwrap();
        assert_eq!(
            decode_tensor(&cut, MessageKind::CutGrads).unwrap().dims(),
            &[2, 6]
        );
        // Backward with nothing in flight.
        assert!(s.platform_backward(&grads_env(0, 2, 0)).is_err());
    }
}
