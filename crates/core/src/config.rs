//! Configuration of a split-learning run.

use medsplit_data::MinibatchPolicy;
use medsplit_nn::LrSchedule;

/// Where the network is cut between platform and server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPoint {
    /// The architecture's default cut: after the first hidden-layer block,
    /// as the paper prescribes (`L1` on the platform).
    Default,
    /// An explicit layer index (used by the split-point sweep, Fig. 5).
    At(usize),
}

/// How the server schedules platform batches within one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduling {
    /// The server processes each platform's minibatch independently
    /// (forward + backward + update per platform), matching the paper's
    /// flowchart read literally.
    RoundRobin,
    /// The server concatenates all platforms' activations into one batch
    /// per round — realising "the effect of training with all data" with a
    /// single update.
    Aggregate,
}

/// How (and whether) the platforms' `L1` replicas are kept in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Sync {
    /// The paper's default: identical initial weights, never re-synced
    /// (each platform's `L1` evolves on its own gradients).
    CommonInit,
    /// Every `every` rounds the server averages all platforms' `L1`
    /// parameters and redistributes them (FedAvg applied to `L1` only).
    PeriodicAverage {
        /// Synchronisation period in rounds.
        every: usize,
    },
    /// Every `every` rounds each platform adopts the `L1` parameters of
    /// its ring predecessor (cyclic parameter sharing, cf. the authors'
    /// ICAIIC'19 reference \[3\]).
    CyclicShare {
        /// Sharing period in rounds.
        every: usize,
    },
}

/// Which optimiser the platforms and the server use for their halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerKind {
    /// SGD; the `momentum` field of [`SplitConfig`] applies.
    #[default]
    Sgd,
    /// Adam with standard defaults (β₁ = 0.9, β₂ = 0.999).
    Adam,
}

impl OptimizerKind {
    /// Builds a boxed optimiser of this kind.
    pub fn build(&self, momentum: f32) -> Box<dyn medsplit_nn::Optimizer> {
        match self {
            OptimizerKind::Sgd => Box::new(medsplit_nn::Sgd::new(0.01).with_momentum(momentum)),
            OptimizerKind::Adam => Box::new(medsplit_nn::Adam::new(0.001)),
        }
    }
}

/// Numeric encoding used for the four protocol tensors on the wire.
///
/// `F16` halves the activation/gradient traffic at a ≤0.1 % relative
/// rounding error per value; `Int8` cuts it to roughly a quarter via
/// symmetric per-tensor-scale quantisation (absolute error ≤ scale/2 per
/// value, where scale = absmax/127 travels in the frame header) — both
/// are ablations of the paper's bandwidth goal (Fig. 4). Parameter
/// synchronisation (`L1Sync`) always stays exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// Exact 32-bit floats (default).
    #[default]
    F32,
    /// IEEE binary16 payloads: half the bytes, lossy.
    F16,
    /// Symmetric int8 quantisation with a per-tensor absmax scale in the
    /// header: about a quarter of the bytes, lossy.
    Int8,
}

/// Simple compute-time model: how long forward+backward on one sample
/// takes on each side, used by the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    /// Seconds per (sample × million parameters) on a platform.
    pub platform_s_per_msample: f64,
    /// Seconds per (sample × million parameters) on the server.
    pub server_s_per_msample: f64,
}

impl ComputeModel {
    /// Hospitals on commodity hardware, server with accelerators
    /// (10× faster per parameter-sample).
    pub fn hospital_default() -> Self {
        ComputeModel {
            platform_s_per_msample: 2e-3,
            server_s_per_msample: 2e-4,
        }
    }

    /// Disables compute-time accounting (communication-only clock).
    pub fn off() -> Self {
        ComputeModel {
            platform_s_per_msample: 0.0,
            server_s_per_msample: 0.0,
        }
    }

    /// Compute seconds for `samples` through `params` parameters.
    pub fn seconds(&self, per_msample: f64, samples: usize, params: usize) -> f64 {
        per_msample * samples as f64 * (params as f64 / 1e6)
    }
}

/// Exponential backoff schedule for within-round retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry, in simulated seconds.
    pub base_s: f64,
    /// Multiplier applied per attempt.
    pub factor: f64,
    /// Ceiling on the delay of any single retry.
    pub max_s: f64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base_s: 0.5,
            factor: 2.0,
            max_s: 8.0,
        }
    }
}

impl Backoff {
    /// Delay of the 0-based `attempt`-th retry, before jitter.
    pub fn delay_s(&self, attempt: u32) -> f64 {
        (self.base_s * self.factor.powi(attempt as i32)).min(self.max_s)
    }
}

/// Fault-tolerance policy for one training round: how long to wait, how
/// many platforms are enough, and how hard to retry before giving up on
/// a platform for the round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundPolicy {
    /// Per-round deadline on the simulated clock: a platform whose clock
    /// has fallen more than this far behind the round start is skipped
    /// for the round (it rejoins at the next boundary).
    pub deadline_s: f64,
    /// Minimum number of participating platforms for the round's update
    /// to be applied. Below quorum the round is recorded as degraded and
    /// no update happens.
    pub min_platforms: usize,
    /// Retries per platform per protocol step before skipping it.
    pub max_retries: u32,
    /// Backoff between retries.
    pub backoff: Backoff,
}

impl Default for RoundPolicy {
    fn default() -> Self {
        RoundPolicy {
            deadline_s: 60.0,
            min_platforms: 1,
            max_retries: 3,
            backoff: Backoff::default(),
        }
    }
}

/// Policy knobs specific to hierarchical (relay-routed) rounds, layered
/// on top of [`RoundPolicy`] by the hierarchical trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierPolicy {
    /// Minimum surviving platforms a region must contribute for its
    /// activations to enter the round's aggregate. A region that
    /// delivers fewer (but more than zero) is dropped whole, so a
    /// partially-partitioned region degrades the round instead of
    /// contributing a biased sliver of its data.
    pub region_quorum: usize,
    /// Simulated seconds a platform pays when it re-homes away from its
    /// home relay (failure detection plus reconnection handshake),
    /// charged against the round deadline.
    pub failover_penalty_s: f64,
}

impl Default for HierPolicy {
    fn default() -> Self {
        HierPolicy {
            region_quorum: 1,
            failover_penalty_s: 0.5,
        }
    }
}

impl HierPolicy {
    /// Checks the policy against the shape of a hierarchy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self, per_region: usize) -> std::result::Result<(), String> {
        if self.region_quorum == 0 {
            return Err("hier_policy.region_quorum must be at least 1".into());
        }
        if self.region_quorum > per_region {
            return Err(format!(
                "hier_policy.region_quorum of {} exceeds the {} platforms per region",
                self.region_quorum, per_region
            ));
        }
        if !(self.failover_penalty_s >= 0.0 && self.failover_penalty_s.is_finite()) {
            return Err(format!(
                "hier_policy.failover_penalty_s must be finite and non-negative, got {}",
                self.failover_penalty_s
            ));
        }
        Ok(())
    }
}

/// Full configuration of a split-learning training run.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitConfig {
    /// Where to cut the network.
    pub split: SplitPoint,
    /// Per-platform minibatch policy (the paper's imbalance mitigation).
    pub minibatch: MinibatchPolicy,
    /// Server-side scheduling of platform batches.
    pub scheduling: Scheduling,
    /// `L1` synchronisation strategy.
    pub l1_sync: L1Sync,
    /// Learning rate schedule (applied to both sides).
    pub lr: LrSchedule,
    /// SGD momentum (0 disables).
    pub momentum: f32,
    /// Number of training rounds.
    pub rounds: usize,
    /// Evaluate every `eval_every` rounds (0 = only at the end).
    pub eval_every: usize,
    /// Seed for model initialisation and samplers. All platforms derive
    /// their identical `L1` initialisation from this seed.
    pub seed: u64,
    /// Compute-time model for the simulated clock.
    pub compute: ComputeModel,
    /// Wire encoding for the protocol tensors.
    pub codec: WireCodec,
    /// Optimiser family used by both sides.
    pub optimizer: OptimizerKind,
    /// Standard deviation of Gaussian noise each platform adds to its
    /// transmitted activations (0 disables). A lightweight
    /// privacy-enhancement knob: the server — and any eavesdropper — only
    /// ever sees the noised representation, at a measurable accuracy
    /// cost (Fig. 7).
    pub activation_noise: f32,
    /// Fault-tolerance policy for the resilient trainer (deadline,
    /// quorum, retries). Ignored by the fail-stop drivers.
    pub round_policy: RoundPolicy,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            split: SplitPoint::Default,
            minibatch: MinibatchPolicy::Proportional { global: 64 },
            scheduling: Scheduling::Aggregate,
            l1_sync: L1Sync::CommonInit,
            lr: LrSchedule::Constant(0.05),
            momentum: 0.9,
            rounds: 100,
            eval_every: 10,
            seed: 42,
            compute: ComputeModel::off(),
            codec: WireCodec::F32,
            optimizer: OptimizerKind::Sgd,
            activation_noise: 0.0,
            round_policy: RoundPolicy::default(),
        }
    }
}

impl SplitConfig {
    /// Checks the configuration for values that would make a run
    /// meaningless rather than merely fail later with a confusing
    /// protocol error.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.rounds == 0 {
            return Err("rounds must be at least 1".into());
        }
        if !(self.momentum >= 0.0 && self.momentum < 1.0) {
            return Err(format!("momentum must be in [0, 1), got {}", self.momentum));
        }
        if !(self.activation_noise >= 0.0 && self.activation_noise.is_finite()) {
            return Err(format!(
                "activation_noise must be finite and non-negative, got {}",
                self.activation_noise
            ));
        }
        let p = &self.round_policy;
        if !(p.deadline_s > 0.0 && p.deadline_s.is_finite()) {
            return Err(format!(
                "round_policy.deadline_s must be finite and positive, got {}",
                p.deadline_s
            ));
        }
        if p.min_platforms == 0 {
            return Err("round_policy.min_platforms must be at least 1".into());
        }
        let b = &p.backoff;
        if !(b.base_s > 0.0 && b.factor >= 1.0 && b.max_s >= b.base_s) {
            return Err(format!(
                "round_policy.backoff must satisfy base_s > 0, factor >= 1, max_s >= base_s, \
                 got base_s={}, factor={}, max_s={}",
                b.base_s, b.factor, b.max_s
            ));
        }
        Ok(())
    }

    /// Whether `L1` synchronisation fires after the given 0-based round.
    pub fn sync_due(&self, round: usize) -> bool {
        match self.l1_sync {
            L1Sync::CommonInit => false,
            L1Sync::PeriodicAverage { every } | L1Sync::CyclicShare { every } => {
                every > 0 && (round + 1).is_multiple_of(every)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SplitConfig::default();
        assert_eq!(c.split, SplitPoint::Default);
        assert_eq!(c.l1_sync, L1Sync::CommonInit);
        assert_eq!(c.scheduling, Scheduling::Aggregate);
        assert!(matches!(c.minibatch, MinibatchPolicy::Proportional { .. }));
    }

    #[test]
    fn sync_due_schedule() {
        let mut c = SplitConfig::default();
        assert!(!c.sync_due(0));
        c.l1_sync = L1Sync::PeriodicAverage { every: 5 };
        assert!(!c.sync_due(0));
        assert!(c.sync_due(4));
        assert!(c.sync_due(9));
        assert!(!c.sync_due(5));
        c.l1_sync = L1Sync::CyclicShare { every: 0 };
        assert!(!c.sync_due(0));
    }

    #[test]
    fn optimizer_kind_builds() {
        let mut sgd = OptimizerKind::Sgd.build(0.9);
        sgd.set_learning_rate(0.1);
        assert_eq!(sgd.learning_rate(), 0.1);
        let adam = OptimizerKind::Adam.build(0.0);
        assert!(adam.learning_rate() > 0.0);
        assert_eq!(OptimizerKind::default(), OptimizerKind::Sgd);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let b = Backoff::default();
        assert_eq!(b.delay_s(0), 0.5);
        assert_eq!(b.delay_s(1), 1.0);
        assert_eq!(b.delay_s(2), 2.0);
        assert_eq!(b.delay_s(10), 8.0, "capped at max_s");
    }

    #[test]
    fn validate_catches_bad_fields() {
        assert!(SplitConfig::default().validate().is_ok());
        let c = SplitConfig {
            rounds: 0,
            ..SplitConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("rounds"));
        let c = SplitConfig {
            momentum: 1.5,
            ..SplitConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("momentum"));
        let mut c = SplitConfig::default();
        c.round_policy.min_platforms = 0;
        assert!(c.validate().unwrap_err().contains("min_platforms"));
        let mut c = SplitConfig::default();
        c.round_policy.deadline_s = 0.0;
        assert!(c.validate().unwrap_err().contains("deadline_s"));
        let mut c = SplitConfig::default();
        c.round_policy.backoff.factor = 0.5;
        assert!(c.validate().unwrap_err().contains("backoff"));
    }

    #[test]
    fn hier_policy_validates_against_region_shape() {
        assert!(HierPolicy::default().validate(2).is_ok());
        let p = HierPolicy {
            region_quorum: 0,
            ..HierPolicy::default()
        };
        assert!(p.validate(2).unwrap_err().contains("region_quorum"));
        let p = HierPolicy {
            region_quorum: 3,
            ..HierPolicy::default()
        };
        assert!(p.validate(2).unwrap_err().contains("exceeds"));
        let p = HierPolicy {
            failover_penalty_s: f64::NAN,
            ..HierPolicy::default()
        };
        assert!(p.validate(2).unwrap_err().contains("failover_penalty_s"));
    }

    #[test]
    fn compute_model_seconds() {
        let m = ComputeModel::hospital_default();
        // 32 samples through 1M params on a platform: 32 * 2ms = 64 ms.
        let s = m.seconds(m.platform_s_per_msample, 32, 1_000_000);
        assert!((s - 0.064).abs() < 1e-9);
        let off = ComputeModel::off();
        assert_eq!(off.seconds(off.platform_s_per_msample, 100, 1_000_000), 0.0);
    }
}
