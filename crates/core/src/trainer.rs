//! The deterministic (single-threaded) split-learning trainer.
//!
//! Drives the platform and server actors through the paper's four-message
//! round over a [`Transport`], so every tensor the protocol exchanges is
//! serialised, sent, counted and deserialised exactly as it would be
//! across a WAN. See [`crate::threaded`] for the thread-per-node variant
//! running the identical actors.

use medsplit_data::InMemoryDataset;
use medsplit_nn::{accuracy, Architecture};
use medsplit_simnet::{Envelope, MessageKind, NodeId, Transport};
use medsplit_tensor::Tensor;

use crate::config::{L1Sync, Scheduling, SplitConfig};
use crate::error::{Result, SplitError};
use crate::history::{RoundRecord, TrainingHistory};
use crate::messages::{decode_tensor, tensor_envelope};
use crate::platform::Platform;
use crate::server::SplitServer;
use crate::split::build_split;

/// Orchestrates split-learning training across platform shards.
pub struct SplitTrainer<'t, T: Transport> {
    config: SplitConfig,
    platforms: Vec<Platform>,
    server: SplitServer,
    transport: &'t T,
    test: InMemoryDataset,
    client_params: usize,
    server_params: usize,
}

/// Receives the next queued message for `node`, failing loudly if the
/// protocol left the queue empty.
fn expect_msg<T: Transport>(transport: &T, node: NodeId) -> Result<Envelope> {
    transport
        .try_recv(node)
        .ok_or_else(|| SplitError::Protocol(format!("no message queued for {node}")))
}

/// Builds the protocol actors from a configuration: identical `L1`
/// replicas paired with their shards, and the server suffix. Returns
/// `(platforms, server, client_params, server_params)`.
pub(crate) fn build_actors(
    arch: &Architecture,
    config: &SplitConfig,
    shards: Vec<InMemoryDataset>,
) -> Result<(Vec<Platform>, SplitServer, usize, usize)> {
    if shards.is_empty() {
        return Err(SplitError::Config(
            "at least one platform shard is required".into(),
        ));
    }
    if shards.iter().any(InMemoryDataset::is_empty) {
        return Err(SplitError::Config("platform shards must be non-empty".into()));
    }
    let split = build_split(arch, config.split, config.seed, shards.len())?;
    let sizes: Vec<usize> = shards.iter().map(InMemoryDataset::len).collect();
    let batches = config.minibatch.sizes(&sizes);
    let total_batch: usize = batches.iter().sum();
    let platforms: Vec<Platform> = split
        .clients
        .into_iter()
        .zip(shards)
        .zip(&batches)
        .enumerate()
        .map(|(id, ((model, data), &batch))| {
            let mut p = Platform::new(id, model, data, batch, config.momentum, config.seed);
            // Under aggregate scheduling the server takes one step on the
            // union batch, so each platform re-weights its locally
            // normalised gradient by its batch share.
            if config.scheduling == Scheduling::Aggregate {
                p.set_grad_scale(batch as f32 / total_batch as f32);
            }
            p.set_codec(config.codec);
            if config.activation_noise > 0.0 {
                p.set_activation_noise(config.activation_noise);
            }
            if config.optimizer != crate::config::OptimizerKind::Sgd {
                p.set_optimizer(config.optimizer.build(config.momentum));
            }
            p
        })
        .collect();
    let mut server = SplitServer::new(split.server, config.momentum);
    server.set_codec(config.codec);
    if config.optimizer != crate::config::OptimizerKind::Sgd {
        server.set_optimizer(config.optimizer.build(config.momentum));
    }
    Ok((platforms, server, split.client_params, split.server_params))
}

impl<'t, T: Transport> SplitTrainer<'t, T> {
    /// Builds the trainer: identical `L1` replicas for each shard, the
    /// server suffix, and per-platform minibatch sizes from the
    /// configured policy.
    ///
    /// # Errors
    ///
    /// Returns configuration errors for invalid split points, shard
    /// counts, or empty shards.
    pub fn new(
        arch: &Architecture,
        config: SplitConfig,
        shards: Vec<InMemoryDataset>,
        test: InMemoryDataset,
        transport: &'t T,
    ) -> Result<Self> {
        config.validate().map_err(SplitError::Config)?;
        if transport.stats().snapshot().messages > 0 {
            return Err(SplitError::Config(
                "transport has already been used; accounting would be polluted".into(),
            ));
        }
        let (platforms, server, client_params, server_params) = build_actors(arch, &config, shards)?;
        Ok(SplitTrainer {
            config,
            platforms,
            server,
            transport,
            test,
            client_params,
            server_params,
        })
    }

    /// The platform actors (for inspection and privacy probes).
    pub fn platforms_mut(&mut self) -> &mut [Platform] {
        &mut self.platforms
    }

    /// The server actor.
    pub fn server_mut(&mut self) -> &mut SplitServer {
        &mut self.server
    }

    /// Evaluates the deployed model of every platform (its own `L1`
    /// composed with the shared server layers) on the test set and
    /// returns the mean accuracy.
    ///
    /// Evaluation happens out-of-band (no protocol traffic): it measures
    /// model quality, not communication.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors.
    pub fn evaluate(&mut self) -> Result<f32> {
        let _span = medsplit_telemetry::span("evaluate");
        const EVAL_BATCH: usize = 64;
        let mut total = 0.0;
        for platform in &mut self.platforms {
            let mut correct_weighted = 0.0;
            let mut seen = 0usize;
            let n = self.test.len();
            let mut start = 0;
            while start < n {
                let count = EVAL_BATCH.min(n - start);
                let idx: Vec<usize> = (start..start + count).collect();
                let (features, labels) = self.test.batch(&idx)?;
                let acts = platform.infer_l1(&features)?;
                let logits = self.server.infer(&acts)?;
                correct_weighted += accuracy(&logits, &labels)? * count as f32;
                seen += count;
                start += count;
            }
            total += correct_weighted / seen.max(1) as f32;
        }
        Ok(total / self.platforms.len() as f32)
    }

    /// Runs the configured number of rounds and returns the history.
    ///
    /// # Errors
    ///
    /// Propagates protocol, tensor and transport errors.
    pub fn run(&mut self) -> Result<TrainingHistory> {
        let mut records = Vec::with_capacity(self.config.rounds);
        for round in 0..self.config.rounds {
            let mut round_span = medsplit_telemetry::span_round("round", round as u64);
            let round_start = std::time::Instant::now();
            let lr = self.config.lr.lr_at(round);
            for p in &mut self.platforms {
                p.set_lr(lr);
            }
            self.server.set_lr(lr);

            let mean_loss = self.run_round(round as u64)?;
            self.charge_compute();
            if self.config.sync_due(round) {
                self.sync_l1(round as u64)?;
            }

            let eval_due = self.config.eval_every > 0 && (round + 1) % self.config.eval_every == 0;
            let accuracy = if eval_due { Some(self.evaluate()?) } else { None };
            let snap = self.transport.stats().snapshot();
            round_span.set_sim_s(snap.makespan_s);
            records.push(RoundRecord {
                round,
                lr,
                mean_loss,
                cumulative_bytes: snap.total_bytes,
                simulated_time_s: snap.makespan_s,
                wall_time_s: round_start.elapsed().as_secs_f64(),
                participants: self.platforms.len(),
                degraded: false,
                accuracy,
            });
        }
        let final_accuracy = match records.last().and_then(|r| r.accuracy) {
            Some(a) => a,
            None => {
                let a = self.evaluate()?;
                if let Some(last) = records.last_mut() {
                    last.accuracy = Some(a);
                }
                a
            }
        };
        Ok(TrainingHistory {
            method: "split".into(),
            records,
            final_accuracy,
            stats: self.transport.stats().snapshot(),
        })
    }

    /// One four-message protocol round; returns the mean platform loss.
    fn run_round(&mut self, round: u64) -> Result<f32> {
        let k = self.platforms.len();
        let mut losses = Vec::with_capacity(k);
        match self.config.scheduling {
            Scheduling::Aggregate => {
                // Step 1: every platform forwards L1 and transmits
                // activations.
                for p in &mut self.platforms {
                    let env = p.start_round(round)?;
                    self.transport.send(env)?;
                }
                // Step 2: server concatenates all platform batches, one forward.
                let acts: Vec<Envelope> = (0..k)
                    .map(|_| expect_msg(self.transport, NodeId::Server))
                    .collect::<Result<_>>()?;
                for env in self.server.aggregate_forward(&acts)? {
                    self.transport.send(env)?;
                }
                // Step 3: platforms compute local losses, transmit gradients.
                for p in &mut self.platforms {
                    let env = expect_msg(self.transport, p.node())?;
                    let (grads, loss) = p.handle_logits(&env)?;
                    losses.push(loss);
                    self.transport.send(grads)?;
                }
                // Step 4: server backward + update, cut gradients back.
                let grads: Vec<Envelope> = (0..k)
                    .map(|_| expect_msg(self.transport, NodeId::Server))
                    .collect::<Result<_>>()?;
                for env in self.server.aggregate_backward(&grads)? {
                    self.transport.send(env)?;
                }
                // Step 5: platforms backpropagate L1.
                for p in &mut self.platforms {
                    let env = expect_msg(self.transport, p.node())?;
                    p.handle_cut_grads(&env)?;
                }
            }
            Scheduling::RoundRobin => {
                // The server exchanges with one platform at a time, in
                // platform order; each platform transmits its activations
                // when its turn starts.
                for p in &mut self.platforms {
                    let env = p.start_round(round)?;
                    self.transport.send(env)?;
                    let acts = expect_msg(self.transport, NodeId::Server)?;
                    let logits = self.server.platform_forward(&acts)?;
                    self.transport.send(logits)?;
                    let env = expect_msg(self.transport, p.node())?;
                    let (grads, loss) = p.handle_logits(&env)?;
                    losses.push(loss);
                    self.transport.send(grads)?;
                    let genv = expect_msg(self.transport, NodeId::Server)?;
                    let cut = self.server.platform_backward(&genv)?;
                    self.transport.send(cut)?;
                    let cenv = expect_msg(self.transport, p.node())?;
                    p.handle_cut_grads(&cenv)?;
                }
            }
        }
        Ok(losses.iter().sum::<f32>() / losses.len().max(1) as f32)
    }

    /// Advances the simulated clocks for this round's local computation.
    fn charge_compute(&mut self) {
        let compute = self.config.compute;
        let stats = self.transport.stats();
        let mut total_batch = 0usize;
        for p in &self.platforms {
            let s = compute.seconds(compute.platform_s_per_msample, p.batch_size(), self.client_params);
            stats.advance_clock(p.node(), s);
            total_batch += p.batch_size();
        }
        let s = compute.seconds(compute.server_s_per_msample, total_batch, self.server_params);
        stats.advance_clock(NodeId::Server, s);
    }

    /// Runs the configured `L1` synchronisation (extension strategies).
    fn sync_l1(&mut self, round: u64) -> Result<()> {
        let k = self.platforms.len();
        // Platforms upload their L1 parameters via the server.
        for p in &mut self.platforms {
            let params = p.l1_parameters();
            self.transport.send(tensor_envelope(
                p.node(),
                NodeId::Server,
                round,
                MessageKind::L1Sync,
                &params,
            ))?;
        }
        let mut uploads: Vec<(usize, Tensor)> = Vec::with_capacity(k);
        for _ in 0..k {
            let env = expect_msg(self.transport, NodeId::Server)?;
            let pid = crate::messages::sender_platform(&env)?;
            uploads.push((pid, decode_tensor(&env, MessageKind::L1Sync)?));
        }
        uploads.sort_by_key(|(pid, _)| *pid);
        let outgoing: Vec<(usize, Tensor)> = match self.config.l1_sync {
            L1Sync::CommonInit => return Ok(()),
            L1Sync::PeriodicAverage { .. } => {
                // Weighted by shard size, as FedAvg does.
                let weights: Vec<f32> = self.platforms.iter().map(|p| p.shard_size() as f32).collect();
                let total: f32 = weights.iter().sum();
                let mut avg = Tensor::zeros(uploads[0].1.shape().clone());
                for ((_, t), w) in uploads.iter().zip(&weights) {
                    avg.axpy(w / total, t)?;
                }
                (0..k).map(|pid| (pid, avg.clone())).collect()
            }
            L1Sync::CyclicShare { .. } => {
                // Platform p adopts the parameters of its ring predecessor.
                (0..k)
                    .map(|pid| (pid, uploads[(pid + k - 1) % k].1.clone()))
                    .collect()
            }
        };
        for (pid, params) in &outgoing {
            self.transport.send(tensor_envelope(
                NodeId::Server,
                NodeId::Platform(*pid),
                round,
                MessageKind::L1Sync,
                params,
            ))?;
        }
        for p in &mut self.platforms {
            let env = expect_msg(self.transport, p.node())?;
            let params = decode_tensor(&env, MessageKind::L1Sync)?;
            p.set_l1_parameters(&params)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_data::{partition, MinibatchPolicy, Partition, SyntheticTabular};
    use medsplit_nn::{LrSchedule, MlpConfig};
    use medsplit_simnet::{MemoryTransport, StarTopology};

    fn arch() -> Architecture {
        Architecture::Mlp(MlpConfig {
            input_dim: 8,
            hidden: vec![16],
            num_classes: 3,
        })
    }

    fn setup(platforms: usize) -> (Vec<InMemoryDataset>, InMemoryDataset) {
        let gen = SyntheticTabular::new(3, 8, 0);
        let train = gen.generate(120).unwrap();
        let test = SyntheticTabular::new(3, 8, 0)
            .generate(150)
            .unwrap()
            .subset(&(120..150).collect::<Vec<_>>())
            .unwrap();
        let shards = partition(&train, platforms, &Partition::Iid, 1).unwrap();
        (shards, test)
    }

    fn config(rounds: usize, scheduling: Scheduling) -> SplitConfig {
        SplitConfig {
            scheduling,
            rounds,
            eval_every: rounds, // single eval at the end
            lr: LrSchedule::Constant(0.1),
            minibatch: MinibatchPolicy::Fixed(10),
            ..SplitConfig::default()
        }
    }

    #[test]
    fn training_improves_accuracy() {
        let (shards, test) = setup(3);
        let transport = MemoryTransport::new(StarTopology::new(3));
        let mut trainer = SplitTrainer::new(
            &arch(),
            config(60, Scheduling::Aggregate),
            shards,
            test,
            &transport,
        )
        .unwrap();
        let before = trainer.evaluate().unwrap();
        let history = trainer.run().unwrap();
        assert!(
            history.final_accuracy > before + 0.2,
            "accuracy {before} -> {}",
            history.final_accuracy
        );
        assert_eq!(history.records.len(), 60);
        assert!(history.stats.total_bytes > 0);
    }

    #[test]
    fn round_robin_also_learns() {
        let (shards, test) = setup(2);
        let transport = MemoryTransport::new(StarTopology::new(2));
        let mut trainer = SplitTrainer::new(
            &arch(),
            config(60, Scheduling::RoundRobin),
            shards,
            test,
            &transport,
        )
        .unwrap();
        let history = trainer.run().unwrap();
        assert!(
            history.final_accuracy > 0.6,
            "accuracy {}",
            history.final_accuracy
        );
    }

    #[test]
    fn four_message_kinds_and_counts() {
        let (shards, test) = setup(2);
        let transport = MemoryTransport::new(StarTopology::new(2));
        let mut trainer = SplitTrainer::new(
            &arch(),
            config(5, Scheduling::Aggregate),
            shards,
            test,
            &transport,
        )
        .unwrap();
        let history = trainer.run().unwrap();
        // 4 messages per platform per round, nothing else.
        assert_eq!(history.stats.messages, 4 * 2 * 5);
        for kind in [
            MessageKind::Activations,
            MessageKind::Logits,
            MessageKind::LogitGrads,
            MessageKind::CutGrads,
        ] {
            assert!(history.stats.bytes_of(kind) > 0, "{kind} missing");
        }
        assert_eq!(history.stats.bytes_of(MessageKind::ModelDown), 0);
        assert_eq!(history.stats.bytes_of(MessageKind::L1Sync), 0);
    }

    #[test]
    fn raw_data_never_crosses_the_wire() {
        // Privacy invariant: total uplink bytes per round per platform must
        // be activations+gradients, whose per-sample size is the L1 output,
        // not the input; and no message kind carries labels.
        let (shards, test) = setup(2);
        let transport = MemoryTransport::new(StarTopology::new(2));
        let mut trainer = SplitTrainer::new(
            &arch(),
            config(1, Scheduling::Aggregate),
            shards,
            test,
            &transport,
        )
        .unwrap();
        let history = trainer.run().unwrap();
        let act_bytes = history.stats.bytes_of(MessageKind::Activations);
        // 2 platforms × batch 10 × 16 activation floats (+ header/shape).
        let payload = medsplit_tensor::serialized_len(&medsplit_tensor::Shape::from([10usize, 16]));
        assert_eq!(act_bytes, 2 * (payload + medsplit_simnet::HEADER_BYTES) as u64);
    }

    #[test]
    fn periodic_average_sync_traffic_counted() {
        let (shards, test) = setup(2);
        let transport = MemoryTransport::new(StarTopology::new(2));
        let mut cfg = config(4, Scheduling::Aggregate);
        cfg.l1_sync = L1Sync::PeriodicAverage { every: 2 };
        let mut trainer = SplitTrainer::new(&arch(), cfg, shards, test, &transport).unwrap();
        let history = trainer.run().unwrap();
        assert!(history.stats.bytes_of(MessageKind::L1Sync) > 0);
        // After the last sync (round 3) both platforms have identical L1.
        let p0 = trainer.platforms_mut()[0].l1_parameters();
        let p1 = trainer.platforms_mut()[1].l1_parameters();
        assert_eq!(p0, p1);
    }

    #[test]
    fn cyclic_share_rotates_parameters() {
        let (shards, test) = setup(3);
        let transport = MemoryTransport::new(StarTopology::new(3));
        let mut cfg = config(1, Scheduling::Aggregate);
        cfg.l1_sync = L1Sync::CyclicShare { every: 1 };
        cfg.eval_every = 0;
        let mut trainer = SplitTrainer::new(&arch(), cfg, shards, test, &transport).unwrap();
        // Stamp distinguishable parameters before the round's sync.
        // (Run the round manually: capture params right before sync by
        // setting them after construction — instead we just verify the sync
        // traffic and that all three L1s are a permutation afterwards.)
        let before: Vec<Tensor> = (0..3)
            .map(|i| trainer.platforms_mut()[i].l1_parameters())
            .collect();
        let _ = before;
        let history = trainer.run().unwrap();
        assert!(history.stats.bytes_of(MessageKind::L1Sync) > 0);
    }

    #[test]
    fn config_validation() {
        let (shards, test) = setup(2);
        let transport = MemoryTransport::new(StarTopology::new(2));
        assert!(matches!(
            SplitTrainer::new(
                &arch(),
                config(1, Scheduling::Aggregate),
                vec![],
                test.clone(),
                &transport
            ),
            Err(SplitError::Config(_))
        ));
        // Dirty transport rejected.
        transport
            .send(Envelope::control(NodeId::Platform(0), NodeId::Server, 0))
            .unwrap();
        assert!(matches!(
            SplitTrainer::new(
                &arch(),
                config(1, Scheduling::Aggregate),
                shards,
                test,
                &transport
            ),
            Err(SplitError::Config(_))
        ));
    }

    #[test]
    fn adam_optimizer_also_learns() {
        use crate::config::OptimizerKind;
        let (shards, test) = setup(2);
        let transport = MemoryTransport::new(StarTopology::new(2));
        let mut cfg = config(50, Scheduling::Aggregate);
        cfg.optimizer = OptimizerKind::Adam;
        cfg.lr = medsplit_nn::LrSchedule::Constant(0.01);
        let mut trainer = SplitTrainer::new(&arch(), cfg, shards, test, &transport).unwrap();
        let history = trainer.run().unwrap();
        assert!(
            history.final_accuracy > 0.6,
            "Adam accuracy {}",
            history.final_accuracy
        );
    }

    #[test]
    fn f16_codec_halves_tensor_traffic_and_still_learns() {
        use crate::config::WireCodec;
        let (shards, test) = setup(2);
        let run = |codec: WireCodec| {
            let transport = MemoryTransport::new(StarTopology::new(2));
            let mut cfg = config(40, Scheduling::Aggregate);
            cfg.codec = codec;
            let mut trainer =
                SplitTrainer::new(&arch(), cfg, shards.clone(), test.clone(), &transport).unwrap();
            trainer.run().unwrap()
        };
        let exact = run(WireCodec::F32);
        let half = run(WireCodec::F16);
        // Payload bytes halve; headers (64 + shape) stay, so the total is a
        // bit more than half.
        assert!(half.stats.total_bytes < exact.stats.total_bytes * 3 / 5);
        assert!(half.stats.total_bytes > exact.stats.total_bytes * 2 / 5);
        // Accuracy is essentially unaffected by f16 rounding.
        assert!(
            half.final_accuracy > exact.final_accuracy - 0.1,
            "f16 {} vs f32 {}",
            half.final_accuracy,
            exact.final_accuracy
        );
    }

    #[test]
    fn int8_codec_quarters_tensor_traffic_and_still_learns() {
        use crate::config::WireCodec;
        let (shards, test) = setup(2);
        let run = |codec: WireCodec| {
            let transport = MemoryTransport::new(StarTopology::new(2));
            let mut cfg = config(40, Scheduling::Aggregate);
            cfg.codec = codec;
            let mut trainer =
                SplitTrainer::new(&arch(), cfg, shards.clone(), test.clone(), &transport).unwrap();
            trainer.run().unwrap()
        };
        let exact = run(WireCodec::F32);
        let quant = run(WireCodec::Int8);
        // Payload bytes quarter; headers (64 + shape + scale) stay, so the
        // total lands between the asymptotic 1/4 and the f16 ratio.
        assert!(
            quant.stats.total_bytes < exact.stats.total_bytes / 2,
            "int8 {} vs f32 {}",
            quant.stats.total_bytes,
            exact.stats.total_bytes
        );
        assert!(quant.stats.total_bytes > exact.stats.total_bytes / 5);
        // Per-tensor-scale quantisation keeps the model training.
        assert!(
            quant.final_accuracy > exact.final_accuracy - 0.15,
            "int8 {} vs f32 {}",
            quant.final_accuracy,
            exact.final_accuracy
        );
    }

    #[test]
    fn int8_codec_runs_are_bit_identical_on_replay() {
        use crate::config::WireCodec;
        let run = || {
            let (shards, test) = setup(2);
            let transport = MemoryTransport::new(StarTopology::new(2));
            let mut cfg = config(10, Scheduling::Aggregate);
            cfg.codec = WireCodec::Int8;
            let mut trainer = SplitTrainer::new(&arch(), cfg, shards, test, &transport).unwrap();
            trainer.run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_accuracy, b.final_accuracy);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn proportional_minibatch_sizes_applied() {
        let gen = SyntheticTabular::new(3, 8, 0);
        let train = gen.generate(200).unwrap();
        let shards = partition(&train, 2, &Partition::PowerLaw { alpha: 2.0 }, 0).unwrap();
        let test = gen.generate(30).unwrap();
        let sizes: Vec<usize> = shards.iter().map(InMemoryDataset::len).collect();
        let transport = MemoryTransport::new(StarTopology::new(2));
        let mut cfg = config(1, Scheduling::Aggregate);
        cfg.minibatch = MinibatchPolicy::Proportional { global: 40 };
        let expected = cfg.minibatch.sizes(&sizes);
        let mut trainer = SplitTrainer::new(&arch(), cfg, shards, test, &transport).unwrap();
        let actual: Vec<usize> = trainer.platforms_mut().iter().map(|p| p.batch_size()).collect();
        assert_eq!(actual, expected);
        assert!(
            actual[0] > actual[1],
            "larger shard gets larger minibatch: {actual:?}"
        );
    }
}
