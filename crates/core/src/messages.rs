//! Typed payload helpers: tensors in, envelopes out.

use medsplit_simnet::{Envelope, MessageKind, NodeId};
use medsplit_tensor::Tensor;

use crate::config::WireCodec;
use crate::error::{Result, SplitError};

/// Wraps a tensor as an envelope payload. The payload bytes are exactly
/// [`Tensor::to_bytes`], which is what the communication accounting
/// measures.
pub fn tensor_envelope(src: NodeId, dst: NodeId, round: u64, kind: MessageKind, tensor: &Tensor) -> Envelope {
    Envelope::new(src, dst, round, kind, tensor.to_bytes())
}

/// Like [`tensor_envelope`] but encoding the payload with the given wire
/// codec (`F16` halves the data bytes, `Int8` quarters them, both
/// lossily).
pub fn tensor_envelope_codec(
    src: NodeId,
    dst: NodeId,
    round: u64,
    kind: MessageKind,
    tensor: &Tensor,
    codec: WireCodec,
) -> Envelope {
    let payload = match codec {
        WireCodec::F32 => tensor.to_bytes(),
        WireCodec::F16 => tensor.to_bytes_f16(),
        WireCodec::Int8 => tensor.to_bytes_i8(),
    };
    Envelope::new(src, dst, round, kind, payload)
}

/// Decodes a tensor payload, checking the message kind first.
///
/// # Errors
///
/// Returns [`SplitError::Protocol`] on a kind mismatch and
/// [`SplitError::Tensor`] on a corrupt payload.
pub fn decode_tensor(env: &Envelope, expected: MessageKind) -> Result<Tensor> {
    if env.kind != expected {
        return Err(SplitError::Protocol(format!(
            "expected {expected} from {}, got {} (round {})",
            env.src, env.kind, env.round
        )));
    }
    Ok(Tensor::from_bytes(env.payload.clone())?)
}

/// The platform index a message came from.
///
/// # Errors
///
/// Returns [`SplitError::Protocol`] if the sender is the server.
pub fn sender_platform(env: &Envelope) -> Result<usize> {
    env.src
        .platform_index()
        .ok_or_else(|| SplitError::Protocol(format!("expected a platform sender, got {}", env.src)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        let env = tensor_envelope(
            NodeId::Platform(1),
            NodeId::Server,
            3,
            MessageKind::Activations,
            &t,
        );
        assert_eq!(env.round, 3);
        assert_eq!(env.payload.len(), medsplit_tensor::serialized_len(t.shape()));
        let back = decode_tensor(&env, MessageKind::Activations).unwrap();
        assert_eq!(back, t);
        assert_eq!(sender_platform(&env).unwrap(), 1);
    }

    #[test]
    fn kind_mismatch_is_protocol_error() {
        let t = Tensor::zeros([1]);
        let env = tensor_envelope(NodeId::Server, NodeId::Platform(0), 0, MessageKind::Logits, &t);
        let err = decode_tensor(&env, MessageKind::CutGrads).unwrap_err();
        assert!(matches!(err, SplitError::Protocol(_)));
        assert!(sender_platform(&env).is_err());
    }

    #[test]
    fn corrupt_payload_is_tensor_error() {
        let mut env = tensor_envelope(
            NodeId::Platform(0),
            NodeId::Server,
            0,
            MessageKind::Activations,
            &Tensor::zeros([4]),
        );
        env.payload = env.payload.slice(0..6);
        assert!(matches!(
            decode_tensor(&env, MessageKind::Activations),
            Err(SplitError::Tensor(_))
        ));
    }
}
