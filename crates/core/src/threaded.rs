//! Thread-per-node split training: the same actors as
//! [`crate::trainer::SplitTrainer`], but with every platform and the
//! server running concurrently on its own OS thread, synchronised only
//! through the transport — shaped like a real deployment.

use std::time::Duration;

use medsplit_data::InMemoryDataset;
use medsplit_nn::{accuracy, Architecture};
use medsplit_simnet::{recv_timeout_default, threaded::run_per_node, Envelope, NodeId, Transport};

use crate::config::{L1Sync, Scheduling, SplitConfig};
use crate::error::{Result, SplitError};
use crate::history::{RoundRecord, TrainingHistory};
use crate::platform::Platform;
use crate::server::SplitServer;
use crate::trainer::build_actors;

/// Shared, env-overridable blocking-receive timeout
/// (see [`medsplit_simnet::recv_timeout_default`]).
fn recv_timeout() -> Duration {
    recv_timeout_default()
}

enum NodeResult {
    Server(Box<SplitServer>),
    Platform(Box<Platform>, Vec<f32>),
}

fn server_loop<T: Transport>(
    mut server: SplitServer,
    config: &SplitConfig,
    platforms: usize,
    transport: &T,
) -> Result<NodeResult> {
    for round in 0..config.rounds {
        server.set_lr(config.lr.lr_at(round));
        let acts: Vec<Envelope> = (0..platforms)
            .map(|_| {
                transport
                    .recv_timeout(NodeId::Server, recv_timeout())
                    .map_err(SplitError::from)
            })
            .collect::<Result<_>>()?;
        for env in server.aggregate_forward(&acts)? {
            transport.send(env)?;
        }
        let grads: Vec<Envelope> = (0..platforms)
            .map(|_| {
                transport
                    .recv_timeout(NodeId::Server, recv_timeout())
                    .map_err(SplitError::from)
            })
            .collect::<Result<_>>()?;
        for env in server.aggregate_backward(&grads)? {
            transport.send(env)?;
        }
    }
    Ok(NodeResult::Server(Box::new(server)))
}

fn platform_loop<T: Transport>(
    mut platform: Platform,
    config: &SplitConfig,
    transport: &T,
) -> Result<NodeResult> {
    let node = platform.node();
    let mut losses = Vec::with_capacity(config.rounds);
    for round in 0..config.rounds {
        let _span = medsplit_telemetry::span_round("round", round as u64);
        platform.set_lr(config.lr.lr_at(round));
        let acts = platform.start_round(round as u64)?;
        transport.send(acts)?;
        let logits = transport.recv_timeout(node, recv_timeout())?;
        let (grads, loss) = platform.handle_logits(&logits)?;
        losses.push(loss);
        transport.send(grads)?;
        let cut = transport.recv_timeout(node, recv_timeout())?;
        platform.handle_cut_grads(&cut)?;
    }
    Ok(NodeResult::Platform(Box::new(platform), losses))
}

/// Trains with one OS thread per node and returns the history.
///
/// The actors and arithmetic are identical to the deterministic trainer;
/// with [`Scheduling::Aggregate`] the server's concatenation order is
/// fixed (sorted by platform id), so the learned parameters — and the
/// total byte count — are bit-identical to a sequential run with the same
/// configuration.
///
/// Per-round byte counts are not observable from inside the node threads,
/// so the records carry evenly interpolated cumulative bytes; the final
/// snapshot is exact.
///
/// # Errors
///
/// Returns configuration errors for unsupported settings (threaded mode
/// implements the paper-default `Aggregate` + `CommonInit` combination)
/// and propagates any node's protocol error.
pub fn train_threaded<T: Transport>(
    arch: &Architecture,
    config: SplitConfig,
    shards: Vec<InMemoryDataset>,
    test: InMemoryDataset,
    transport: &T,
) -> Result<TrainingHistory> {
    config.validate().map_err(SplitError::Config)?;
    if config.scheduling != Scheduling::Aggregate {
        return Err(SplitError::Config(
            "threaded mode implements Aggregate scheduling".into(),
        ));
    }
    if config.l1_sync != L1Sync::CommonInit {
        return Err(SplitError::Config(
            "threaded mode implements CommonInit L1 sync".into(),
        ));
    }
    let (platforms, server, _client_params, _server_params) = build_actors(arch, &config, shards)?;
    let k = platforms.len();

    type NodeFn<'a, T> = Box<dyn FnOnce(NodeId, &T) -> Result<NodeResult> + Send + 'a>;
    let mut nodes: Vec<(NodeId, NodeFn<'_, T>)> = Vec::with_capacity(k + 1);
    let cfg_server = config.clone();
    nodes.push((
        NodeId::Server,
        Box::new(move |_, t: &T| server_loop(server, &cfg_server, k, t)),
    ));
    for platform in platforms {
        let cfg = config.clone();
        nodes.push((
            platform.node(),
            Box::new(move |_, t: &T| platform_loop(platform, &cfg, t)),
        ));
    }

    let train_start = std::time::Instant::now();
    let results = run_per_node(transport, nodes);
    let train_wall_s = train_start.elapsed().as_secs_f64();

    let mut server_back: Option<Box<SplitServer>> = None;
    let mut platforms_back: Vec<(Box<Platform>, Vec<f32>)> = Vec::new();
    for (_, result) in results {
        match result? {
            NodeResult::Server(s) => server_back = Some(s),
            NodeResult::Platform(p, losses) => platforms_back.push((p, losses)),
        }
    }
    let mut server =
        *server_back.ok_or_else(|| SplitError::Protocol("server thread produced no result".into()))?;
    platforms_back.sort_by_key(|(p, _)| p.id());

    // Final evaluation: each platform's L1 composed with the server.
    let mut total_acc = 0.0;
    for (platform, _) in &mut platforms_back {
        let idx: Vec<usize> = (0..test.len()).collect();
        let (features, labels) = test.batch(&idx)?;
        let acts = platform.infer_l1(&features)?;
        let logits = server.infer(&acts)?;
        total_acc += accuracy(&logits, &labels)?;
    }
    let final_accuracy = total_acc / platforms_back.len() as f32;

    let snap = transport.stats().snapshot();
    let records: Vec<RoundRecord> = (0..config.rounds)
        .map(|round| {
            let mean_loss = platforms_back.iter().map(|(_, l)| l[round]).sum::<f32>() / k as f32;
            RoundRecord {
                round,
                lr: config.lr.lr_at(round),
                mean_loss,
                cumulative_bytes: snap.total_bytes * (round as u64 + 1) / config.rounds.max(1) as u64,
                simulated_time_s: snap.makespan_s * (round as f64 + 1.0) / config.rounds.max(1) as f64,
                // Rounds are not observable from inside the node threads
                // (see module docs), so wall time is amortised evenly too.
                wall_time_s: train_wall_s / config.rounds.max(1) as f64,
                participants: k,
                degraded: false,
                accuracy: if round + 1 == config.rounds {
                    Some(final_accuracy)
                } else {
                    None
                },
            }
        })
        .collect();

    Ok(TrainingHistory {
        method: "split_threaded".into(),
        records,
        final_accuracy,
        stats: snap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplitConfig;
    use crate::trainer::SplitTrainer;
    use medsplit_data::{partition, MinibatchPolicy, Partition, SyntheticTabular};
    use medsplit_nn::{LrSchedule, MlpConfig};
    use medsplit_simnet::{MemoryTransport, StarTopology};

    fn arch() -> Architecture {
        Architecture::Mlp(MlpConfig {
            input_dim: 6,
            hidden: vec![12],
            num_classes: 3,
        })
    }

    fn config(rounds: usize) -> SplitConfig {
        SplitConfig {
            rounds,
            eval_every: 0,
            lr: LrSchedule::Constant(0.1),
            minibatch: MinibatchPolicy::Fixed(8),
            ..SplitConfig::default()
        }
    }

    fn data(platforms: usize) -> (Vec<InMemoryDataset>, InMemoryDataset) {
        let all = SyntheticTabular::new(3, 6, 0).generate(120).unwrap();
        let train = all.subset(&(0..90).collect::<Vec<_>>()).unwrap();
        let test = all.subset(&(90..120).collect::<Vec<_>>()).unwrap();
        (partition(&train, platforms, &Partition::Iid, 2).unwrap(), test)
    }

    #[test]
    fn threaded_run_learns() {
        let (shards, test) = data(3);
        let transport = MemoryTransport::new(StarTopology::new(3));
        let history = train_threaded(&arch(), config(40), shards, test, &transport).unwrap();
        assert!(
            history.final_accuracy > 0.6,
            "accuracy {}",
            history.final_accuracy
        );
        assert_eq!(history.records.len(), 40);
    }

    #[test]
    fn threaded_matches_sequential_bytes_exactly() {
        let (shards, test) = data(2);
        let t1 = MemoryTransport::new(StarTopology::new(2));
        let h1 = train_threaded(&arch(), config(10), shards.clone(), test.clone(), &t1).unwrap();

        let t2 = MemoryTransport::new(StarTopology::new(2));
        let mut seq = SplitTrainer::new(&arch(), config(10), shards, test, &t2).unwrap();
        let h2 = seq.run().unwrap();

        assert_eq!(h1.stats.total_bytes, h2.stats.total_bytes);
        assert_eq!(h1.stats.messages, h2.stats.messages);
        // Learned function identical: same final accuracy.
        assert!((h1.final_accuracy - h2.final_accuracy).abs() < 1e-6);
        // Same per-round losses (determinism across drivers).
        for (a, b) in h1.records.iter().zip(&h2.records) {
            assert!(
                (a.mean_loss - b.mean_loss).abs() < 1e-6,
                "round {} loss {} vs {}",
                a.round,
                a.mean_loss,
                b.mean_loss
            );
        }
    }

    #[test]
    fn unsupported_modes_rejected() {
        let (shards, test) = data(2);
        let transport = MemoryTransport::new(StarTopology::new(2));
        let mut cfg = config(2);
        cfg.scheduling = Scheduling::RoundRobin;
        assert!(matches!(
            train_threaded(&arch(), cfg, shards.clone(), test.clone(), &transport),
            Err(SplitError::Config(_))
        ));
        let mut cfg2 = config(2);
        cfg2.l1_sync = L1Sync::PeriodicAverage { every: 1 };
        assert!(matches!(
            train_threaded(&arch(), cfg2, shards, test, &transport),
            Err(SplitError::Config(_))
        ));
    }
}
