//! Property-based tests for the split-protocol building blocks.

use medsplit_core::messages::{decode_tensor, tensor_envelope, tensor_envelope_codec};
use medsplit_core::{build_split, comm, resolve_split, SplitPoint, WireCodec};
use medsplit_nn::vectorize::parameter_vector;
use medsplit_nn::{Architecture, Layer, MlpConfig, Mode};
use medsplit_simnet::{MessageKind, NodeId};
use medsplit_tensor::{init::rng_from_seed, Tensor};
use proptest::prelude::*;

fn arb_mlp() -> impl Strategy<Value = Architecture> {
    (1usize..10, 1usize..10, 2usize..6).prop_map(|(h1, h2, classes)| {
        Architecture::Mlp(MlpConfig {
            input_dim: 4,
            hidden: vec![h1, h2],
            num_classes: classes,
        })
    })
}

proptest! {
    /// For every valid cut, the client replicas are identical and
    /// client+server parameters partition the full model.
    #[test]
    fn split_partitions_parameters(arch in arb_mlp(), at_sel in 0usize..5, platforms in 1usize..5, seed in 0u64..300) {
        let layers = arch.build(0).len();
        let at = 1 + at_sel % (layers - 1);
        let mut sm = build_split(&arch, SplitPoint::At(at), seed, platforms).unwrap();
        prop_assert_eq!(sm.clients.len(), platforms);
        prop_assert_eq!(sm.client_params + sm.server_params, arch.param_count());
        let v0 = parameter_vector(&mut sm.clients[0]);
        for c in &mut sm.clients[1..] {
            prop_assert_eq!(parameter_vector(c), v0.clone());
        }
        // Function preserved through the cut.
        let mut full = arch.build(seed);
        let mut rng = rng_from_seed(seed);
        let x = Tensor::rand_uniform([2, 4], -1.0, 1.0, &mut rng);
        let direct = full.forward(&x, Mode::Eval).unwrap();
        let mid = sm.clients[0].forward(&x, Mode::Eval).unwrap();
        let composed = sm.server.forward(&mid, Mode::Eval).unwrap();
        prop_assert!(direct.allclose(&composed, 1e-5));
    }

    /// Invalid cuts are rejected, valid ones resolved.
    #[test]
    fn cut_resolution(arch in arb_mlp(), at in 0usize..20) {
        let layers = arch.build(0).len();
        let res = resolve_split(&arch, SplitPoint::At(at));
        if at == 0 || at >= layers {
            prop_assert!(res.is_err());
        } else {
            prop_assert_eq!(res.unwrap(), at);
        }
        prop_assert_eq!(resolve_split(&arch, SplitPoint::Default).unwrap(), arch.default_split());
    }

    /// Envelope round trips are identity for f32 and bounded-error for f16.
    #[test]
    fn envelope_codec_roundtrip(rows in 1usize..6, cols in 1usize..6, seed in 0u64..300) {
        let mut rng = rng_from_seed(seed);
        let t = Tensor::rand_uniform([rows, cols], -10.0, 10.0, &mut rng);
        let exact = tensor_envelope(NodeId::Platform(0), NodeId::Server, 1, MessageKind::Activations, &t);
        prop_assert_eq!(decode_tensor(&exact, MessageKind::Activations).unwrap(), t.clone());

        let half = tensor_envelope_codec(NodeId::Platform(0), NodeId::Server, 1, MessageKind::Activations, &t, WireCodec::F16);
        prop_assert!(half.payload.len() < exact.payload.len());
        let back = decode_tensor(&half, MessageKind::Activations).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-6, "{} vs {}", a, b);
        }
    }

    /// Analytic split cost is additive over platforms and linear in batch.
    #[test]
    fn split_cost_additive(batches in prop::collection::vec(1usize..64, 1..6), act in 1usize..512, classes in 2usize..100) {
        let total = comm::split_round_bytes(&batches, &[act], classes);
        let sum: u64 = batches.iter().map(|&b| comm::split_round_bytes(&[b], &[act], classes)).sum();
        prop_assert_eq!(total, sum);
        // Strictly increasing in activation width.
        prop_assert!(comm::split_round_bytes(&batches, &[act + 1], classes) > total);
    }

    /// Model-exchange costs are linear in the platform count.
    #[test]
    fn model_exchange_cost_linear(platforms in 1usize..20, params in 1usize..2_000_000) {
        let one = comm::fedavg_round_bytes(1, params);
        prop_assert_eq!(comm::fedavg_round_bytes(platforms, params), one * platforms as u64);
        prop_assert_eq!(comm::sync_sgd_round_bytes(platforms, params), comm::fedavg_round_bytes(platforms, params));
    }
}
