//! Learning-rate schedules.

/// A learning-rate schedule: maps a global step index to a learning rate.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// The same rate forever.
    Constant(f32),
    /// Multiplies the base rate by `gamma` every `step_size` steps.
    StepDecay {
        /// Initial learning rate.
        base: f32,
        /// Steps between decays.
        step_size: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Cosine annealing from `base` to `min` over `total_steps`.
    Cosine {
        /// Initial learning rate.
        base: f32,
        /// Final learning rate.
        min: f32,
        /// Steps over which to anneal; later steps stay at `min`.
        total_steps: usize,
    },
    /// Linear warmup to `base` over `warmup` steps, constant afterwards.
    Warmup {
        /// Peak learning rate after warmup.
        base: f32,
        /// Number of warmup steps.
        warmup: usize,
    },
}

impl LrSchedule {
    /// The learning rate at `step` (0-based).
    pub fn lr_at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay {
                base,
                step_size,
                gamma,
            } => base * gamma.powi((step / step_size.max(1)) as i32),
            LrSchedule::Cosine {
                base,
                min,
                total_steps,
            } => {
                if total_steps == 0 || step >= total_steps {
                    min
                } else {
                    let progress = step as f32 / total_steps as f32;
                    min + 0.5 * (base - min) * (1.0 + (std::f32::consts::PI * progress).cos())
                }
            }
            LrSchedule::Warmup { base, warmup } => {
                if warmup == 0 || step >= warmup {
                    base
                } else {
                    base * (step + 1) as f32 / warmup as f32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant() {
        let s = LrSchedule::Constant(0.1);
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(1000), 0.1);
    }

    #[test]
    fn step_decay() {
        let s = LrSchedule::StepDecay {
            base: 1.0,
            step_size: 10,
            gamma: 0.5,
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(20), 0.25);
    }

    #[test]
    fn cosine_endpoints_and_monotonicity() {
        let s = LrSchedule::Cosine {
            base: 1.0,
            min: 0.1,
            total_steps: 100,
        };
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(100) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(10_000) - 0.1).abs() < 1e-6);
        let mut prev = s.lr_at(0);
        for step in 1..=100 {
            let cur = s.lr_at(step);
            assert!(cur <= prev + 1e-6, "not monotone at {step}");
            prev = cur;
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { base: 0.8, warmup: 4 };
        assert!((s.lr_at(0) - 0.2).abs() < 1e-6);
        assert!((s.lr_at(1) - 0.4).abs() < 1e-6);
        assert!((s.lr_at(3) - 0.8).abs() < 1e-6);
        assert_eq!(s.lr_at(4), 0.8);
        assert_eq!(LrSchedule::Warmup { base: 0.8, warmup: 0 }.lr_at(0), 0.8);
    }

    #[test]
    fn degenerate_params_do_not_panic() {
        assert_eq!(
            LrSchedule::StepDecay {
                base: 1.0,
                step_size: 0,
                gamma: 0.5
            }
            .lr_at(5),
            1.0 * 0.5f32.powi(5)
        );
        assert_eq!(
            LrSchedule::Cosine {
                base: 1.0,
                min: 0.0,
                total_steps: 0
            }
            .lr_at(0),
            0.0
        );
    }
}
