//! # medsplit-nn
//!
//! A small neural-network library with *explicit* forward and backward
//! passes, built on [`medsplit_tensor`]. No autograd tape: each
//! [`Layer`] caches what its own backward pass needs, which makes the
//! split-learning cut trivial — the platform calls `backward` on its
//! layers with the gradient tensor it received over the network, exactly
//! as the paper's flowchart describes.
//!
//! Provided here:
//! - layers: [`Dense`], [`Conv2d`], [`BatchNorm`], [`Activation`],
//!   [`MaxPool2d`], [`AvgPool2d`], [`GlobalAvgPool`], [`Flatten`],
//!   [`Dropout`], [`Residual`],
//! - the [`Sequential`] container with [`Sequential::split_off`] — the
//!   protocol's cut point,
//! - losses returning `(loss, grad)` pairs ([`loss`]),
//! - optimisers ([`Sgd`], [`Adam`]) and LR schedules ([`LrSchedule`]),
//! - parameter-vector utilities ([`vectorize`]) used by the federated
//!   baselines,
//! - the model zoo ([`models`]): VGG-16/11 + ResNet-18 at paper scale and
//!   `lite` variants for CPU training,
//! - numerical gradient checking ([`gradcheck`]) used throughout the
//!   tests.
//!
//! ```
//! use medsplit_nn::{Dense, Layer, Mode, Sequential, Activation};
//! use medsplit_tensor::{init, Tensor};
//!
//! let mut rng = init::rng_from_seed(0);
//! let mut net = Sequential::new("demo");
//! net.push(Dense::new(4, 16, &mut rng));
//! net.push(Activation::relu());
//! net.push(Dense::new(16, 2, &mut rng));
//! let y = net.forward(&Tensor::zeros([1, 4]), Mode::Eval)?;
//! assert_eq!(y.dims(), &[1, 2]);
//! # Ok::<(), medsplit_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
mod optim;
mod param;
mod schedule;
mod sequential;
pub mod vectorize;

pub use layer::{Layer, Mode};
pub use layers::activation::{Activation, ActivationKind};
pub use layers::batchnorm::BatchNorm;
pub use layers::conv2d::Conv2d;
pub use layers::dense::Dense;
pub use layers::dropout::Dropout;
pub use layers::pool::{AvgPool2d, Flatten, GlobalAvgPool, MaxPool2d};
pub use layers::residual::Residual;
pub use loss::{mse, softmax_cross_entropy, LossOutput};
pub use metrics::{accuracy, top_k_accuracy, ConfusionMatrix, RunningMean};
pub use models::{Architecture, MlpConfig, ResNetConfig, VggConfig};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use schedule::LrSchedule;
pub use sequential::Sequential;
