//! Numerical gradient checking for layers.
//!
//! Used pervasively by the test suite: every layer's analytic backward pass
//! is validated against central finite differences of its forward pass.

use medsplit_tensor::{Shape, Tensor};

use crate::layer::{Layer, Mode};

/// Deterministic pseudo-random values (no RNG state needed) used for the
/// probe input and the loss mask.
fn probe_values(len: usize, salt: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(salt.wrapping_mul(97003));
            ((h % 2000) as f32) / 1000.0 - 1.0
        })
        .collect()
}

/// Checks a layer's analytic gradients against central finite differences.
///
/// `make` must build a *fresh but identical* layer each call (same
/// parameter values); gradient checking evaluates the forward pass many
/// times and layers cache state.
///
/// The scalar loss is `dot(forward(x), mask)` for a fixed pseudo-random
/// `mask`, so the upstream gradient fed to `backward` is exactly `mask`.
/// Both the input gradient and every parameter gradient are compared at up
/// to `MAX_COORDS` coordinates each.
///
/// # Errors
///
/// Returns a human-readable description of the first mismatch, or of any
/// forward/backward failure.
pub fn check_layer<L: Layer>(
    make: impl Fn() -> L,
    input_dims: &[usize],
    eps: f32,
    tol: f32,
) -> Result<(), String> {
    const MAX_COORDS: usize = 24;

    let shape = Shape::from(input_dims);
    let x = Tensor::from_vec(probe_values(shape.numel(), 1), shape.clone()).map_err(|e| e.to_string())?;

    // Analytic pass.
    let mut layer = make();
    let y = layer
        .forward(&x, Mode::Train)
        .map_err(|e| format!("forward failed: {e}"))?;
    let mask = Tensor::from_vec(probe_values(y.numel(), 2), y.shape().clone()).map_err(|e| e.to_string())?;
    let gx = layer
        .backward(&mask)
        .map_err(|e| format!("backward failed: {e}"))?;
    let mut param_grads: Vec<(String, Vec<f32>)> = Vec::new();
    layer.visit_params(&mut |p| param_grads.push((p.name.clone(), p.grad.as_slice().to_vec())));

    // Loss evaluated with a fresh layer (so caches/running stats can't leak
    // between evaluations). `perturb` optionally shifts one parameter
    // coordinate: (param_index, coord, delta).
    let loss = |input: &Tensor, perturb: Option<(usize, usize, f32)>| -> Result<f32, String> {
        let mut l = make();
        if let Some((pi, ci, delta)) = perturb {
            let mut idx = 0;
            l.visit_params(&mut |p| {
                if idx == pi {
                    p.value.as_mut_slice()[ci] += delta;
                    p.bump_version();
                }
                idx += 1;
            });
        }
        let out = l.forward(input, Mode::Train).map_err(|e| e.to_string())?;
        out.dot(&mask).map_err(|e| e.to_string())
    };

    let coords = |n: usize| -> Vec<usize> {
        if n <= MAX_COORDS {
            (0..n).collect()
        } else {
            let stride = n / MAX_COORDS;
            (0..MAX_COORDS).map(|i| i * stride).collect()
        }
    };

    // Input gradient check.
    for ci in coords(x.numel()) {
        let mut xp = x.clone();
        xp.as_mut_slice()[ci] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[ci] -= eps;
        let num = (loss(&xp, None)? - loss(&xm, None)?) / (2.0 * eps);
        let ana = gx.as_slice()[ci];
        if (num - ana).abs() > tol * (1.0 + num.abs().max(ana.abs())) {
            return Err(format!(
                "input grad mismatch at {ci}: numerical {num} vs analytic {ana}"
            ));
        }
    }

    // Parameter gradient checks.
    for (pi, (name, grads)) in param_grads.iter().enumerate() {
        for ci in coords(grads.len()) {
            let num = (loss(&x, Some((pi, ci, eps)))? - loss(&x, Some((pi, ci, -eps)))?) / (2.0 * eps);
            let ana = grads[ci];
            if (num - ana).abs() > tol * (1.0 + num.abs().max(ana.abs())) {
                return Err(format!(
                    "param `{name}` grad mismatch at {ci}: numerical {num} vs analytic {ana}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use medsplit_tensor::Result as TResult;

    /// Correct layer: y = 3x.
    struct Triple;
    impl Layer for Triple {
        fn forward(&mut self, input: &Tensor, _m: Mode) -> TResult<Tensor> {
            Ok(input.scale(3.0))
        }
        fn backward(&mut self, g: &Tensor) -> TResult<Tensor> {
            Ok(g.scale(3.0))
        }
        fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
        fn describe(&self) -> String {
            "triple".into()
        }
    }

    /// Buggy layer: forward is 3x but backward claims 2x.
    struct WrongGrad;
    impl Layer for WrongGrad {
        fn forward(&mut self, input: &Tensor, _m: Mode) -> TResult<Tensor> {
            Ok(input.scale(3.0))
        }
        fn backward(&mut self, g: &Tensor) -> TResult<Tensor> {
            Ok(g.scale(2.0))
        }
        fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
        fn describe(&self) -> String {
            "wrong".into()
        }
    }

    #[test]
    fn accepts_correct_layer() {
        check_layer(|| Triple, &[3, 4], 1e-3, 1e-3).unwrap();
    }

    #[test]
    fn rejects_wrong_gradient() {
        let err = check_layer(|| WrongGrad, &[2, 2], 1e-3, 1e-3).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn probe_values_deterministic_and_varied() {
        let a = probe_values(100, 1);
        let b = probe_values(100, 1);
        assert_eq!(a, b);
        let c = probe_values(100, 2);
        assert_ne!(a, c);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
    }
}
