//! Classification metrics.

use medsplit_tensor::{Result, Tensor, TensorError};

/// Fraction of rows whose argmax matches the label.
///
/// # Errors
///
/// Returns shape errors for non-matrix logits or a length mismatch.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = logits.argmax_rows()?;
    if preds.len() != labels.len() {
        return Err(TensorError::LengthMismatch {
            expected: preds.len(),
            actual: labels.len(),
        });
    }
    if preds.is_empty() {
        return Ok(0.0);
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f32 / labels.len() as f32)
}

/// Fraction of rows whose label is among the `k` highest logits.
///
/// # Errors
///
/// Returns shape errors as for [`accuracy`].
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> Result<f32> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
            op: "top_k_accuracy",
        });
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(TensorError::LengthMismatch {
            expected: n,
            actual: labels.len(),
        });
    }
    if n == 0 {
        return Ok(0.0);
    }
    let data = logits.as_slice();
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &data[i * c..(i + 1) * c];
        if label >= c {
            return Err(TensorError::IndexOutOfBounds { index: label, dim: c });
        }
        let target = row[label];
        let better = row.iter().filter(|&&v| v > target).count();
        if better < k {
            correct += 1;
        }
    }
    Ok(correct as f32 / n as f32)
}

/// A running confusion matrix for a `k`-class problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one (true label, prediction) pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, pred: usize) {
        assert!(truth < self.classes && pred < self.classes, "label out of range");
        self.counts[truth * self.classes + pred] += 1;
    }

    /// Records a whole batch from logits.
    ///
    /// # Errors
    ///
    /// Returns shape errors as for [`accuracy`].
    pub fn record_batch(&mut self, logits: &Tensor, labels: &[usize]) -> Result<()> {
        let preds = logits.argmax_rows()?;
        if preds.len() != labels.len() {
            return Err(TensorError::LengthMismatch {
                expected: preds.len(),
                actual: labels.len(),
            });
        }
        for (&t, &p) in labels.iter().zip(&preds) {
            self.record(t, p);
        }
        Ok(())
    }

    /// Count for a (truth, prediction) cell.
    pub fn count(&self, truth: usize, pred: usize) -> u64 {
        self.counts[truth * self.classes + pred]
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 if empty).
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall; classes with no samples report 0.
    pub fn recalls(&self) -> Vec<f32> {
        (0..self.classes)
            .map(|i| {
                let row: u64 = (0..self.classes).map(|j| self.count(i, j)).sum();
                if row == 0 {
                    0.0
                } else {
                    self.count(i, i) as f32 / row as f32
                }
            })
            .collect()
    }
}

/// A simple running average.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// An empty average.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f32) {
        self.sum += value as f64;
        self.count += 1;
    }

    /// The current mean (0 if empty).
    pub fn mean(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum / self.count as f64) as f32
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        let logits = Tensor::from_vec(vec![2.0, 1.0, 0.0, 5.0, 1.0, 1.0], [3, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 0]).unwrap(), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0, 1]).unwrap(), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0, 1]).unwrap(), 1.0 / 3.0);
        assert!(accuracy(&logits, &[0, 0]).is_err());
    }

    #[test]
    fn top_k() {
        let logits = Tensor::from_vec(vec![3.0, 2.0, 1.0], [1, 3]).unwrap();
        assert_eq!(top_k_accuracy(&logits, &[2], 1).unwrap(), 0.0);
        assert_eq!(top_k_accuracy(&logits, &[2], 3).unwrap(), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[1], 2).unwrap(), 1.0);
        assert!(top_k_accuracy(&logits, &[5], 1).is_err());
    }

    #[test]
    fn confusion_matrix() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 2);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.accuracy(), 0.75);
        let recalls = cm.recalls();
        assert_eq!(recalls, vec![0.5, 1.0, 1.0]);
    }

    #[test]
    fn confusion_matrix_batch() {
        let mut cm = ConfusionMatrix::new(2);
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]).unwrap();
        cm.record_batch(&logits, &[0, 0]).unwrap();
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert!(cm.record_batch(&logits, &[0]).is_err());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn confusion_matrix_range_check() {
        ConfusionMatrix::new(2).record(2, 0);
    }

    #[test]
    fn running_mean() {
        let mut rm = RunningMean::new();
        assert_eq!(rm.mean(), 0.0);
        rm.push(1.0);
        rm.push(3.0);
        assert_eq!(rm.mean(), 2.0);
        assert_eq!(rm.count(), 2);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        let logits = Tensor::zeros([0, 3]);
        assert_eq!(accuracy(&logits, &[]).unwrap(), 0.0);
        assert_eq!(top_k_accuracy(&logits, &[], 1).unwrap(), 0.0);
    }
}
