//! Fully-connected layer.

use medsplit_tensor::{init, GemmPlan, Result, Tensor, TensorError};
use rand::Rng;

use crate::layer::{missing_cache, Layer, Mode};
use crate::param::Param;

/// A fully-connected (affine) layer: `y = x · Wᵀ + b`.
///
/// Input `[N, in]`, output `[N, out]`, weight `[out, in]`, bias `[out]`.
///
/// The weight's microkernel panels are prepacked into a cached
/// [`GemmPlan`] keyed on the parameter's version counter: eval/serve
/// never repacks after the first forward, training repacks once per
/// optimizer step, and results are bit-identical to the unplanned path.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
    plan: Option<GemmPlan>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-normal weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight = init::kaiming_normal([out_features, in_features], rng);
        Dense {
            weight: Param::new(weight, format!("dense{out_features}.weight")),
            bias: Param::new(Tensor::zeros([out_features]), format!("dense{out_features}.bias")),
            in_features,
            out_features,
            cached_input: None,
            plan: None,
        }
    }

    /// Creates a dense layer from explicit weight and bias values.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `weight` is not `[out, in]` with `bias`
    /// `[out]`.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Result<Self> {
        if weight.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: weight.rank(),
                op: "Dense::from_parts",
            });
        }
        let (out_features, in_features) = (weight.dims()[0], weight.dims()[1]);
        if bias.dims() != [out_features] {
            return Err(TensorError::LengthMismatch {
                expected: out_features,
                actual: bias.numel(),
            });
        }
        Ok(Dense {
            weight: Param::new(weight, format!("dense{out_features}.weight")),
            bias: Param::new(bias, format!("dense{out_features}.bias")),
            in_features,
            out_features,
            cached_input: None,
            plan: None,
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(TensorError::ShapeMismatch {
                lhs: input.shape().clone(),
                rhs: self.weight.value.shape().clone(),
                op: "Dense::forward",
            });
        }
        let plan = GemmPlan::ensure(&mut self.plan, &self.weight.value, self.weight.version())?;
        let out = plan.matmul_nt(input)?; // [N, out], cached panels
        let out = out.try_add(&self.bias.value)?; // broadcast bias over rows
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self.cached_input.as_ref().ok_or_else(|| missing_cache("Dense"))?;
        // dW = gᵀ · x  -> [out, in]
        let gw = grad_out.matmul_tn(input)?;
        self.weight.accumulate_grad(&gw);
        // db = column sums of g
        let gb = grad_out.sum_axis(0)?;
        self.bias.accumulate_grad(&gb);
        // dx = g · W -> [N, in], through the plan's cached backward
        // panels when current (always, in a forward→backward step);
        // fall back to the direct path if the weight moved since.
        match self
            .plan
            .as_mut()
            .filter(|p| p.generation() == self.weight.version())
        {
            Some(plan) => plan.matmul_nn(grad_out, &self.weight.value),
            None => grad_out.matmul(&self.weight.value),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn describe(&self) -> String {
        format!("dense({}->{})", self.in_features, self.out_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_tensor::init::rng_from_seed;

    #[test]
    fn forward_known_values() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let b = Tensor::from_vec(vec![0.5, -0.5], [2]).unwrap();
        let mut layer = Dense::from_parts(w, b).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0], [1, 3]).unwrap();
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[6.5, 14.5]);
    }

    #[test]
    fn forward_rejects_bad_input() {
        let mut rng = rng_from_seed(0);
        let mut layer = Dense::new(3, 2, &mut rng);
        assert!(layer.forward(&Tensor::ones([1, 4]), Mode::Train).is_err());
        assert!(layer.forward(&Tensor::ones([3]), Mode::Train).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = rng_from_seed(0);
        let mut layer = Dense::new(3, 2, &mut rng);
        assert!(layer.backward(&Tensor::ones([1, 2])).is_err());
    }

    #[test]
    fn backward_gradients_match_numerical() {
        let mut rng = rng_from_seed(1);
        let layer = Dense::new(4, 3, &mut rng);
        crate::gradcheck::check_layer(|| clone_dense(&layer), &[2, 4], 1e-2, 2e-2).unwrap();
    }

    fn clone_dense(l: &Dense) -> Dense {
        Dense::from_parts(l.weight.value.clone(), l.bias.value.clone()).unwrap()
    }

    #[test]
    fn param_visitation_order_stable() {
        let mut rng = rng_from_seed(2);
        let mut layer = Dense::new(2, 2, &mut rng);
        let mut names = Vec::new();
        layer.visit_params(&mut |p| names.push(p.name.clone()));
        assert_eq!(names.len(), 2);
        assert!(names[0].ends_with("weight"));
        assert!(names[1].ends_with("bias"));
        assert_eq!(layer.param_count(), 2 * 2 + 2);
    }

    #[test]
    fn from_parts_validation() {
        assert!(Dense::from_parts(Tensor::ones([4]), Tensor::ones([2])).is_err());
        assert!(Dense::from_parts(Tensor::ones([2, 3]), Tensor::ones([3])).is_err());
    }
}
