//! 2-D convolution layer.

use medsplit_tensor::ops::conv::{conv2d_backward, conv2d_backward_planned, conv2d_forward_planned};
use medsplit_tensor::{init, Conv2dSpec, ConvPlan, Result, Tensor, TensorError};
use rand::Rng;

use crate::layer::{missing_cache, Layer, Mode};
use crate::param::Param;

/// A 2-D convolution layer over `NCHW` tensors with `OIHW` filters.
///
/// The filter matrix is prepacked into a cached [`ConvPlan`] keyed on
/// the parameter's version counter; the forward pass runs the fused
/// im2col-into-packed-tiles lowering against those panels, and the
/// backward pass shares the plan's im2col geometry. Results are
/// bit-identical to the unplanned `conv2d_forward`/`conv2d_backward`
/// path.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
    cached_input: Option<Tensor>,
    plan: Option<ConvPlan>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal filters and zero bias.
    pub fn new(in_channels: usize, out_channels: usize, spec: Conv2dSpec, rng: &mut impl Rng) -> Self {
        let weight = init::kaiming_normal([out_channels, in_channels, spec.kernel_h, spec.kernel_w], rng);
        Conv2d {
            weight: Param::new(weight, format!("conv{out_channels}.weight")),
            bias: Param::new(Tensor::zeros([out_channels]), format!("conv{out_channels}.bias")),
            spec,
            in_channels,
            out_channels,
            cached_input: None,
            plan: None,
        }
    }

    /// Creates a convolution from explicit filter and bias values.
    ///
    /// # Errors
    ///
    /// Returns a shape error for non-`OIHW` weights or a bias length that
    /// does not match the output channel count.
    pub fn from_parts(weight: Tensor, bias: Tensor, spec: Conv2dSpec) -> Result<Self> {
        if weight.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: weight.rank(),
                op: "Conv2d::from_parts",
            });
        }
        let d = weight.dims();
        if d[2] != spec.kernel_h || d[3] != spec.kernel_w {
            return Err(TensorError::ShapeMismatch {
                lhs: weight.shape().clone(),
                rhs: medsplit_tensor::Shape::from([d[0], d[1], spec.kernel_h, spec.kernel_w]),
                op: "Conv2d::from_parts",
            });
        }
        if bias.numel() != d[0] {
            return Err(TensorError::LengthMismatch {
                expected: d[0],
                actual: bias.numel(),
            });
        }
        let (out_channels, in_channels) = (d[0], d[1]);
        Ok(Conv2d {
            weight: Param::new(weight, format!("conv{out_channels}.weight")),
            bias: Param::new(bias, format!("conv{out_channels}.bias")),
            spec,
            in_channels,
            out_channels,
            cached_input: None,
            plan: None,
        })
    }

    /// The convolution hyper-parameters.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let plan = ConvPlan::ensure(
            &mut self.plan,
            &self.weight.value,
            self.spec,
            self.weight.version(),
        )?;
        let out = conv2d_forward_planned(input, plan, Some(&self.bias.value))?;
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| missing_cache("Conv2d"))?;
        // The plan is current in any forward→backward step; fall back to
        // the unplanned path if the weight moved since the forward.
        let (gi, gw, gb) = match self
            .plan
            .as_mut()
            .filter(|p| p.generation() == self.weight.version())
        {
            Some(plan) => conv2d_backward_planned(input, &self.weight.value, grad_out, plan)?,
            None => conv2d_backward(input, &self.weight.value, grad_out, self.spec)?,
        };
        self.weight.accumulate_grad(&gw);
        self.bias.accumulate_grad(&gb);
        Ok(gi)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn describe(&self) -> String {
        format!(
            "conv2d({}->{}, {}x{}/s{}p{})",
            self.in_channels,
            self.out_channels,
            self.spec.kernel_h,
            self.spec.kernel_w,
            self.spec.stride,
            self.spec.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_tensor::init::rng_from_seed;

    #[test]
    fn forward_shape() {
        let mut rng = rng_from_seed(0);
        let mut conv = Conv2d::new(3, 8, Conv2dSpec::square(3, 1, 1), &mut rng);
        let x = Tensor::zeros([2, 3, 8, 8]);
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        assert_eq!(conv.param_count(), 8 * 3 * 9 + 8);
    }

    #[test]
    fn gradients_match_numerical() {
        let mut rng = rng_from_seed(3);
        let conv = Conv2d::new(2, 3, Conv2dSpec::square(3, 1, 1), &mut rng);
        let w = conv.weight.value.clone();
        let b = conv.bias.value.clone();
        let spec = conv.spec;
        crate::gradcheck::check_layer(
            move || Conv2d::from_parts(w.clone(), b.clone(), spec).unwrap(),
            &[2, 2, 5, 5],
            1e-2,
            3e-2,
        )
        .unwrap();
    }

    #[test]
    fn strided_conv_gradients_match_numerical() {
        let mut rng = rng_from_seed(7);
        let conv = Conv2d::new(2, 2, Conv2dSpec::square(3, 2, 1), &mut rng);
        let w = conv.weight.value.clone();
        let b = conv.bias.value.clone();
        let spec = conv.spec;
        crate::gradcheck::check_layer(
            move || Conv2d::from_parts(w.clone(), b.clone(), spec).unwrap(),
            &[1, 2, 6, 6],
            1e-2,
            3e-2,
        )
        .unwrap();
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = rng_from_seed(0);
        let mut conv = Conv2d::new(1, 1, Conv2dSpec::square(1, 1, 0), &mut rng);
        assert!(conv.backward(&Tensor::ones([1, 1, 1, 1])).is_err());
    }

    #[test]
    fn from_parts_validation() {
        let spec = Conv2dSpec::square(3, 1, 1);
        assert!(Conv2d::from_parts(Tensor::ones([2, 2]), Tensor::ones([2]), spec).is_err());
        assert!(Conv2d::from_parts(Tensor::ones([2, 1, 5, 5]), Tensor::ones([2]), spec).is_err());
        assert!(Conv2d::from_parts(Tensor::ones([2, 1, 3, 3]), Tensor::ones([3]), spec).is_err());
        assert!(Conv2d::from_parts(Tensor::ones([2, 1, 3, 3]), Tensor::ones([2]), spec).is_ok());
    }

    #[test]
    fn describe_mentions_geometry() {
        let mut rng = rng_from_seed(0);
        let conv = Conv2d::new(3, 16, Conv2dSpec::square(3, 2, 1), &mut rng);
        let d = conv.describe();
        assert!(d.contains("3->16"));
        assert!(d.contains("3x3"));
    }
}
