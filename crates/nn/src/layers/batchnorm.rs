//! Batch normalisation over features (`[N, C]`) or channels
//! (`[N, C, H, W]`).

use medsplit_tensor::{Result, Tensor, TensorError};

use crate::layer::{missing_cache, Layer, Mode};
use crate::param::Param;

/// Batch normalisation with learnable scale (`gamma`) and shift (`beta`)
/// and running statistics for evaluation mode.
///
/// For rank-2 inputs statistics are taken per feature over the batch; for
/// rank-4 (`NCHW`) inputs they are taken per channel over batch and space.
#[derive(Debug)]
pub struct BatchNorm {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    num_features: usize,
    /// Cached normalised activations from the training forward pass.
    cached_xhat: Option<Tensor>,
    /// Cached `1 / sqrt(var + eps)` per feature.
    cached_inv_std: Option<Vec<f32>>,
    /// Shape of the last training input.
    cached_dims: Option<Vec<usize>>,
}

/// Layout helper: interprets a rank-2 or rank-4 tensor as
/// `(groups, features, inner)` where statistics are per-feature over
/// `groups × inner` elements.
fn layout(dims: &[usize], num_features: usize, op: &'static str) -> Result<(usize, usize)> {
    match dims.len() {
        2 if dims[1] == num_features => Ok((dims[0], 1)),
        4 if dims[1] == num_features => Ok((dims[0], dims[2] * dims[3])),
        _ => Err(TensorError::ShapeMismatch {
            lhs: medsplit_tensor::Shape::from(dims),
            rhs: medsplit_tensor::Shape::from([num_features]),
            op,
        }),
    }
}

impl BatchNorm {
    /// Creates a batch-norm layer for `num_features` features/channels.
    pub fn new(num_features: usize) -> Self {
        BatchNorm {
            gamma: Param::new(Tensor::ones([num_features]), format!("bn{num_features}.gamma")),
            beta: Param::new(Tensor::zeros([num_features]), format!("bn{num_features}.beta")),
            running_mean: Tensor::zeros([num_features]),
            running_var: Tensor::ones([num_features]),
            momentum: 0.1,
            eps: 1e-5,
            num_features,
            cached_xhat: None,
            cached_inv_std: None,
            cached_dims: None,
        }
    }

    /// Number of normalised features/channels.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Current running mean (used in eval mode).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Current running variance (used in eval mode).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let dims = input.dims().to_vec();
        let (n, inner) = layout(&dims, self.num_features, "BatchNorm::forward")?;
        let c = self.num_features;
        let count = (n * inner) as f32;
        let src = input.as_slice();

        // Per-feature mean and variance to normalise with.
        let (mean, var): (Vec<f32>, Vec<f32>) = if mode == Mode::Train {
            let mut mean = vec![0.0f32; c];
            for g in 0..n {
                for (f, m) in mean.iter_mut().enumerate() {
                    let base = (g * c + f) * inner;
                    *m += src[base..base + inner].iter().sum::<f32>();
                }
            }
            for m in &mut mean {
                *m /= count;
            }
            let mut var = vec![0.0f32; c];
            for g in 0..n {
                for f in 0..c {
                    let base = (g * c + f) * inner;
                    for &v in &src[base..base + inner] {
                        let d = v - mean[f];
                        var[f] += d * d;
                    }
                }
            }
            for v in &mut var {
                *v /= count;
            }
            // Update running stats with exponential moving average.
            for f in 0..c {
                let rm = &mut self.running_mean.as_mut_slice()[f];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean[f];
                let rv = &mut self.running_var.as_mut_slice()[f];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var[f];
            }
            (mean, var)
        } else {
            (
                self.running_mean.as_slice().to_vec(),
                self.running_var.as_slice().to_vec(),
            )
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let gamma = self.gamma.value.as_slice();
        let beta = self.beta.value.as_slice();
        let mut out = Tensor::zeros(input.shape().clone());
        let mut xhat = Tensor::zeros(input.shape().clone());
        {
            let o = out.as_mut_slice();
            let xh = xhat.as_mut_slice();
            for g in 0..n {
                for f in 0..c {
                    let base = (g * c + f) * inner;
                    let (m, is, ga, be) = (mean[f], inv_std[f], gamma[f], beta[f]);
                    for i in base..base + inner {
                        let h = (src[i] - m) * is;
                        xh[i] = h;
                        o[i] = ga * h + be;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cached_xhat = Some(xhat);
            self.cached_inv_std = Some(inv_std);
            self.cached_dims = Some(dims);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let xhat = self
            .cached_xhat
            .as_ref()
            .ok_or_else(|| missing_cache("BatchNorm"))?;
        let inv_std = self
            .cached_inv_std
            .as_ref()
            .ok_or_else(|| missing_cache("BatchNorm"))?;
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or_else(|| missing_cache("BatchNorm"))?;
        if grad_out.dims() != &dims[..] {
            return Err(TensorError::ShapeMismatch {
                lhs: grad_out.shape().clone(),
                rhs: xhat.shape().clone(),
                op: "BatchNorm::backward",
            });
        }
        let (n, inner) = layout(dims, self.num_features, "BatchNorm::backward")?;
        let c = self.num_features;
        let count = (n * inner) as f32;
        let g = grad_out.as_slice();
        let xh = xhat.as_slice();
        let gamma = self.gamma.value.as_slice().to_vec();

        // dgamma[f] = Σ g·xhat, dbeta[f] = Σ g, plus the per-feature sums the
        // input gradient needs.
        let mut sum_g = vec![0.0f32; c];
        let mut sum_gx = vec![0.0f32; c];
        for grp in 0..n {
            for f in 0..c {
                let base = (grp * c + f) * inner;
                for i in base..base + inner {
                    sum_g[f] += g[i];
                    sum_gx[f] += g[i] * xh[i];
                }
            }
        }
        self.gamma
            .accumulate_grad(&Tensor::from_vec(sum_gx.clone(), [c])?);
        self.beta.accumulate_grad(&Tensor::from_vec(sum_g.clone(), [c])?);

        let mut grad_in = Tensor::zeros(grad_out.shape().clone());
        let gi = grad_in.as_mut_slice();
        for grp in 0..n {
            for f in 0..c {
                let base = (grp * c + f) * inner;
                let k = gamma[f] * inv_std[f];
                let mg = sum_g[f] / count;
                let mgx = sum_gx[f] / count;
                for i in base..base + inner {
                    gi[i] = k * (g[i] - mg - xh[i] * mgx);
                }
            }
        }
        Ok(grad_in)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn describe(&self) -> String {
        format!("batchnorm({})", self.num_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_tensor::init::rng_from_seed;

    #[test]
    fn normalises_batch_in_train_mode() {
        let mut bn = BatchNorm::new(2);
        let mut rng = rng_from_seed(0);
        let x = Tensor::rand_normal([64, 2], 5.0, 3.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        let (mean, var) = y.column_stats().unwrap();
        for f in 0..2 {
            assert!(mean.as_slice()[f].abs() < 1e-3, "mean {:?}", mean);
            assert!((var.as_slice()[f] - 1.0).abs() < 1e-2, "var {:?}", var);
        }
    }

    #[test]
    fn running_stats_converge_to_data_stats() {
        let mut bn = BatchNorm::new(1);
        let mut rng = rng_from_seed(1);
        for _ in 0..200 {
            let x = Tensor::rand_normal([32, 1], 2.0, 1.5, &mut rng);
            bn.forward(&x, Mode::Train).unwrap();
        }
        assert!((bn.running_mean().as_slice()[0] - 2.0).abs() < 0.3);
        assert!((bn.running_var().as_slice()[0] - 2.25).abs() < 0.6);
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        // Without any training, running stats are mean 0 / var 1, so eval is
        // identity up to eps.
        let x = Tensor::from_vec(vec![1.0, -1.0], [2, 1]).unwrap();
        let y = bn.forward(&x, Mode::Eval).unwrap();
        assert!(y.allclose(&x, 1e-3));
    }

    #[test]
    fn gradcheck_2d() {
        crate::gradcheck::check_layer(|| BatchNorm::new(3), &[4, 3], 1e-2, 3e-2).unwrap();
    }

    #[test]
    fn gradcheck_4d() {
        crate::gradcheck::check_layer(|| BatchNorm::new(2), &[2, 2, 3, 3], 1e-2, 3e-2).unwrap();
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let mut bn = BatchNorm::new(3);
        assert!(bn.forward(&Tensor::ones([2, 4]), Mode::Train).is_err());
        assert!(bn.forward(&Tensor::ones([2, 4, 2, 2]), Mode::Train).is_err());
        assert!(bn.forward(&Tensor::ones([6]), Mode::Train).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut bn = BatchNorm::new(2);
        assert!(bn.backward(&Tensor::ones([2, 2])).is_err());
    }

    #[test]
    fn param_count() {
        let mut bn = BatchNorm::new(8);
        assert_eq!(bn.param_count(), 16);
    }
}
