//! Pooling layers.

use medsplit_tensor::ops::pool::{
    avgpool2d_backward, avgpool2d_forward, global_avgpool, global_avgpool_backward, maxpool2d_backward,
    maxpool2d_forward,
};
use medsplit_tensor::{Conv2dSpec, Result, Shape, Tensor};

use crate::layer::{missing_cache, Layer, Mode};
use crate::param::Param;

/// 2-D max pooling.
#[derive(Debug)]
pub struct MaxPool2d {
    spec: Conv2dSpec,
    argmax: Option<Vec<usize>>,
    input_shape: Option<Shape>,
}

impl MaxPool2d {
    /// Creates a max-pool layer; `MaxPool2d::new(2)` is the common 2×2/2.
    pub fn new(kernel: usize) -> Self {
        MaxPool2d {
            spec: Conv2dSpec::square(kernel, kernel, 0),
            argmax: None,
            input_shape: None,
        }
    }

    /// Creates a max-pool layer with an explicit spec.
    pub fn with_spec(spec: Conv2dSpec) -> Self {
        MaxPool2d {
            spec,
            argmax: None,
            input_shape: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let fw = maxpool2d_forward(input, self.spec)?;
        if mode == Mode::Train {
            self.argmax = Some(fw.argmax);
            self.input_shape = Some(input.shape().clone());
        }
        Ok(fw.output)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let argmax = self.argmax.as_ref().ok_or_else(|| missing_cache("MaxPool2d"))?;
        let shape = self
            .input_shape
            .as_ref()
            .ok_or_else(|| missing_cache("MaxPool2d"))?;
        maxpool2d_backward(grad_out, argmax, shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        format!(
            "maxpool({}x{}/s{})",
            self.spec.kernel_h, self.spec.kernel_w, self.spec.stride
        )
    }
}

/// 2-D average pooling.
#[derive(Debug)]
pub struct AvgPool2d {
    spec: Conv2dSpec,
    input_shape: Option<Shape>,
}

impl AvgPool2d {
    /// Creates an average-pool layer; `AvgPool2d::new(2)` is 2×2/2.
    pub fn new(kernel: usize) -> Self {
        AvgPool2d {
            spec: Conv2dSpec::square(kernel, kernel, 0),
            input_shape: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = avgpool2d_forward(input, self.spec)?;
        if mode == Mode::Train {
            self.input_shape = Some(input.shape().clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .input_shape
            .as_ref()
            .ok_or_else(|| missing_cache("AvgPool2d"))?;
        avgpool2d_backward(grad_out, shape, self.spec)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        format!(
            "avgpool({}x{}/s{})",
            self.spec.kernel_h, self.spec.kernel_w, self.spec.stride
        )
    }
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    input_shape: Option<Shape>,
}

impl GlobalAvgPool {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = global_avgpool(input)?;
        if mode == Mode::Train {
            self.input_shape = Some(input.shape().clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .input_shape
            .as_ref()
            .ok_or_else(|| missing_cache("GlobalAvgPool"))?;
        global_avgpool_backward(grad_out, shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        "global_avgpool".into()
    }
}

/// Reshapes `[N, ...] -> [N, prod(...)]`.
#[derive(Debug, Default)]
pub struct Flatten {
    input_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let n = input.dims().first().copied().unwrap_or(1);
        let inner: usize = input.dims().iter().skip(1).product();
        if mode == Mode::Train {
            self.input_shape = Some(input.shape().clone());
        }
        input.reshape([n, inner])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .input_shape
            .as_ref()
            .ok_or_else(|| missing_cache("Flatten"))?;
        grad_out.reshape(shape.clone())
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        "flatten".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_roundtrip() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::arange(16).reshape([1, 1, 4, 4]).unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        let g = pool.backward(&Tensor::ones([1, 1, 2, 2])).unwrap();
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.sum(), 4.0);
    }

    #[test]
    fn avgpool_gradcheck() {
        crate::gradcheck::check_layer(|| AvgPool2d::new(2), &[1, 2, 4, 4], 1e-2, 1e-2).unwrap();
    }

    #[test]
    fn global_avgpool_gradcheck() {
        crate::gradcheck::check_layer(GlobalAvgPool::new, &[2, 3, 3, 3], 1e-2, 1e-2).unwrap();
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::arange(24).reshape([2, 3, 2, 2]).unwrap();
        let y = fl.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let g = fl.backward(&y).unwrap();
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn backward_before_forward_errors() {
        assert!(MaxPool2d::new(2).backward(&Tensor::ones([1])).is_err());
        assert!(AvgPool2d::new(2).backward(&Tensor::ones([1])).is_err());
        assert!(GlobalAvgPool::new().backward(&Tensor::ones([1])).is_err());
        assert!(Flatten::new().backward(&Tensor::ones([1])).is_err());
    }

    #[test]
    fn describe_all() {
        assert!(MaxPool2d::new(2).describe().contains("maxpool"));
        assert!(AvgPool2d::new(2).describe().contains("avgpool"));
        assert_eq!(GlobalAvgPool::new().describe(), "global_avgpool");
        assert_eq!(Flatten::new().describe(), "flatten");
    }
}
