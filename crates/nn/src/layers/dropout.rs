//! Inverted dropout.

use medsplit_tensor::{init::StdRng, Result, Tensor, TensorError};
use rand::Rng;
use rand::SeedableRng;

use crate::layer::{missing_cache, Layer, Mode};
use crate::param::Param;

/// Inverted dropout: in training mode each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation
/// mode is the identity.
///
/// The layer owns a seeded RNG so whole-model training runs are
/// reproducible.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and an RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1), got {p}"
        );
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Eval || self.p == 0.0 {
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..input.numel())
            .map(|_| if self.rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask_data, input.shape().clone())?;
        let out = input.try_mul(&mask)?;
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or_else(|| missing_cache("Dropout"))?;
        if grad_out.shape() != mask.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: grad_out.shape().clone(),
                rhs: mask.shape().clone(),
                op: "Dropout::backward",
            });
        }
        grad_out.try_mul(mask)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        format!("dropout({})", self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::arange(10);
        let y = d.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn zero_probability_is_identity_even_in_train() {
        let mut d = Dropout::new(0.0, 0);
        let x = Tensor::arange(10);
        assert_eq!(d.forward(&x, Mode::Train).unwrap(), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.5, 42);
        let x = Tensor::ones([10000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        // E[y] == 1 with inverted dropout.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Survivors are exactly scaled.
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones([1000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let g = d.backward(&Tensor::ones([1000])).unwrap();
        // Gradient zero exactly where output was zero.
        for (a, b) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
        assert!(d.backward(&Tensor::ones([5])).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut d1 = Dropout::new(0.3, 9);
        let mut d2 = Dropout::new(0.3, 9);
        let x = Tensor::ones([100]);
        assert_eq!(
            d1.forward(&x, Mode::Train).unwrap(),
            d2.forward(&x, Mode::Train).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_invalid_probability() {
        let _ = Dropout::new(1.0, 0);
    }
}
