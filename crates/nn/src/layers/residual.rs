//! Residual blocks (He et al. style) for the ResNet family.

use medsplit_tensor::{Result, Tensor};

use crate::layer::{missing_cache, Layer, Mode};
use crate::param::Param;
use crate::sequential::Sequential;

/// A residual block: `y = relu(main(x) + shortcut(x))`.
///
/// When `shortcut` is `None` the skip connection is the identity; a
/// projection `Sequential` (typically a strided 1×1 convolution plus batch
/// norm) handles shape changes between stages.
pub struct Residual {
    main: Sequential,
    shortcut: Option<Sequential>,
    /// Pre-activation sum cached for the ReLU derivative.
    cached_sum: Option<Tensor>,
}

impl Residual {
    /// Creates a residual block with an identity skip connection.
    pub fn new(main: Sequential) -> Self {
        Residual {
            main,
            shortcut: None,
            cached_sum: None,
        }
    }

    /// Creates a residual block with a projection skip connection.
    pub fn with_projection(main: Sequential, shortcut: Sequential) -> Self {
        Residual {
            main,
            shortcut: Some(shortcut),
            cached_sum: None,
        }
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let m = self.main.forward(input, mode)?;
        let s = match &mut self.shortcut {
            Some(proj) => proj.forward(input, mode)?,
            None => input.clone(),
        };
        let sum = m.try_add(&s)?;
        let out = sum.map(|x| x.max(0.0));
        if mode == Mode::Train {
            self.cached_sum = Some(sum);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let sum = self
            .cached_sum
            .as_ref()
            .ok_or_else(|| missing_cache("Residual"))?;
        // ReLU derivative at the block output.
        let g_sum = sum.zip_map(grad_out, |s, g| if s > 0.0 { g } else { 0.0 })?;
        let g_main = self.main.backward(&g_sum)?;
        let g_short = match &mut self.shortcut {
            Some(proj) => proj.backward(&g_sum)?,
            None => g_sum,
        };
        g_main.try_add(&g_short)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        if let Some(proj) = &mut self.shortcut {
            proj.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.main.visit_state(f);
        if let Some(proj) = &mut self.shortcut {
            proj.visit_state(f);
        }
    }

    fn describe(&self) -> String {
        match &self.shortcut {
            Some(p) => format!("residual[{} | proj {}]", self.main.describe(), p.describe()),
            None => format!("residual[{}]", self.main.describe()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::conv2d::Conv2d;
    use crate::layers::dense::Dense;
    use medsplit_tensor::init::rng_from_seed;
    use medsplit_tensor::Conv2dSpec;

    fn dense_block(seed: u64) -> Residual {
        let mut rng = rng_from_seed(seed);
        let mut main = Sequential::new("main");
        main.push(Dense::new(4, 4, &mut rng));
        Residual::new(main)
    }

    #[test]
    fn identity_skip_passes_signal() {
        // Zero main path -> y = relu(x).
        let zero_w = Tensor::zeros([4, 4]);
        let zero_b = Tensor::zeros([4]);
        let mut main = Sequential::new("main");
        main.push(Dense::from_parts(zero_w, zero_b).unwrap());
        let mut block = Residual::new(main);
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], [1, 4]).unwrap();
        let y = block.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn gradcheck_identity_skip() {
        crate::gradcheck::check_layer(|| dense_block(10), &[2, 4], 1e-2, 3e-2).unwrap();
    }

    #[test]
    fn gradcheck_projection_skip() {
        let make = || {
            let mut rng = rng_from_seed(11);
            let mut main = Sequential::new("main");
            main.push(Conv2d::new(2, 3, Conv2dSpec::square(3, 1, 1), &mut rng));
            let mut proj = Sequential::new("proj");
            proj.push(Conv2d::new(2, 3, Conv2dSpec::square(1, 1, 0), &mut rng));
            Residual::with_projection(main, proj)
        };
        crate::gradcheck::check_layer(make, &[1, 2, 4, 4], 1e-2, 3e-2).unwrap();
    }

    #[test]
    fn projection_handles_shape_change() {
        let mut rng = rng_from_seed(12);
        let mut main = Sequential::new("main");
        main.push(Conv2d::new(2, 4, Conv2dSpec::square(3, 2, 1), &mut rng));
        let mut proj = Sequential::new("proj");
        proj.push(Conv2d::new(2, 4, Conv2dSpec::square(1, 2, 0), &mut rng));
        let mut block = Residual::with_projection(main, proj);
        let x = Tensor::zeros([1, 2, 8, 8]);
        let y = block.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
        let g = block.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.dims(), &[1, 2, 8, 8]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut block = dense_block(13);
        assert!(block.backward(&Tensor::ones([1, 4])).is_err());
    }

    #[test]
    fn param_visiting_covers_both_paths() {
        let mut rng = rng_from_seed(14);
        let mut main = Sequential::new("main");
        main.push(Dense::new(2, 2, &mut rng));
        let mut proj = Sequential::new("proj");
        proj.push(Dense::new(2, 2, &mut rng));
        let mut block = Residual::with_projection(main, proj);
        assert_eq!(block.param_count(), 2 * (2 * 2 + 2));
        assert!(block.describe().contains("proj"));
    }
}
