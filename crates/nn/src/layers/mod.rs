//! Individual layer implementations.

pub mod activation;
pub mod batchnorm;
pub mod conv2d;
pub mod dense;
pub mod dropout;
pub mod pool;
pub mod residual;
