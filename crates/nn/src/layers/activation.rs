//! Pointwise activation layers.

use medsplit_tensor::{Result, Tensor};

use crate::layer::{missing_cache, Layer, Mode};
use crate::param::Param;

/// The supported pointwise nonlinearities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// `max(alpha * x, x)`.
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// A stateless-parameter, pointwise activation layer.
#[derive(Debug)]
pub struct Activation {
    kind: ActivationKind,
    /// Cached forward *output* (sufficient to compute every supported
    /// derivative, and cheaper than caching both input and output).
    cached_output: Option<Tensor>,
    /// Cached input, needed only for Leaky ReLU's derivative at the kink.
    cached_input: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation {
            kind,
            cached_output: None,
            cached_input: None,
        }
    }

    /// Convenience constructor for ReLU.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    fn apply(&self, x: f32) -> f32 {
        match self.kind {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::LeakyRelu(a) => {
                if x > 0.0 {
                    x
                } else {
                    a * x
                }
            }
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        // The ReLU family goes through the SIMD-dispatched tensor kernels;
        // the transcendental activations stay on the pool-parallel map.
        let out = match self.kind {
            ActivationKind::Relu => input.relu(),
            ActivationKind::LeakyRelu(a) => input.leaky_relu(a),
            _ => input.par_map(|x| self.apply(x)),
        };
        if mode == Mode::Train {
            self.cached_output = Some(out.clone());
            if matches!(self.kind, ActivationKind::LeakyRelu(_)) {
                self.cached_input = Some(input.clone());
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let out = self
            .cached_output
            .as_ref()
            .ok_or_else(|| missing_cache("Activation"))?;
        match self.kind {
            ActivationKind::Relu => out.relu_backward(grad_out),
            ActivationKind::LeakyRelu(a) => {
                let input = self
                    .cached_input
                    .as_ref()
                    .ok_or_else(|| missing_cache("LeakyRelu"))?;
                input.leaky_relu_backward(a, grad_out)
            }
            ActivationKind::Tanh => out.par_zip_map(grad_out, |y, g| g * (1.0 - y * y)),
            ActivationKind::Sigmoid => out.par_zip_map(grad_out, |y, g| g * y * (1.0 - y)),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        match self.kind {
            ActivationKind::Relu => "relu".into(),
            ActivationKind::LeakyRelu(a) => format!("leaky_relu({a})"),
            ActivationKind::Tanh => "tanh".into(),
            ActivationKind::Sigmoid => "sigmoid".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = Activation::relu();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], [3]).unwrap();
        let y = relu.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let g = relu.backward(&Tensor::ones([3])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_grad() {
        let mut s = Activation::new(ActivationKind::Sigmoid);
        let x = Tensor::from_vec(vec![0.0], [1]).unwrap();
        let y = s.forward(&x, Mode::Train).unwrap();
        assert!((y.item() - 0.5).abs() < 1e-6);
        let g = s.backward(&Tensor::ones([1])).unwrap();
        assert!((g.item() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradcheck() {
        crate::gradcheck::check_layer(|| Activation::new(ActivationKind::Tanh), &[2, 3], 1e-3, 1e-2).unwrap();
    }

    #[test]
    fn sigmoid_gradcheck() {
        crate::gradcheck::check_layer(|| Activation::new(ActivationKind::Sigmoid), &[2, 3], 1e-3, 1e-2)
            .unwrap();
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let mut l = Activation::new(ActivationKind::LeakyRelu(0.1));
        let x = Tensor::from_vec(vec![-10.0, 10.0], [2]).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[-1.0, 10.0]);
        let g = l.backward(&Tensor::ones([2])).unwrap();
        assert_eq!(g.as_slice(), &[0.1, 1.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut relu = Activation::relu();
        assert!(relu.backward(&Tensor::ones([1])).is_err());
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut relu = Activation::relu();
        let _ = relu.forward(&Tensor::ones([1]), Mode::Eval).unwrap();
        assert!(relu.backward(&Tensor::ones([1])).is_err());
    }
}
