//! Optimisers: SGD (with momentum/Nesterov/weight decay) and Adam.

use medsplit_tensor::Tensor;

use crate::layer::Layer;

/// An optimiser updates a model's parameters from their accumulated
/// gradients.
///
/// Per-parameter state (momentum buffers, Adam moments) is keyed by the
/// parameter's position in the model's stable visitation order, allocated
/// lazily on the first step.
pub trait Optimizer: Send {
    /// Applies one update and leaves the gradients untouched (call
    /// [`Layer::zero_grads`] afterwards, or use [`step_and_zero`](Optimizer::step_and_zero)).
    fn step(&mut self, model: &mut dyn Layer);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Convenience: step, then zero the gradients.
    fn step_and_zero(&mut self, model: &mut dyn Layer) {
        self.step(model);
        model.zero_grads();
    }
}

/// Stochastic gradient descent with optional momentum, Nesterov lookahead
/// and decoupled L2 weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    nesterov: bool,
    weight_decay: f32,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            nesterov: false,
            weight_decay: 0.0,
            velocities: Vec::new(),
        }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Enables Nesterov lookahead (requires momentum > 0 to matter).
    pub fn with_nesterov(mut self) -> Self {
        self.nesterov = true;
        self
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let nesterov = self.nesterov;
        let wd = self.weight_decay;
        let velocities = &mut self.velocities;
        model.visit_params(&mut |p| {
            if velocities.len() <= idx {
                velocities.push(Tensor::zeros(p.value.shape().clone()));
            }
            let v = &mut velocities[idx];
            debug_assert_eq!(v.shape(), p.value.shape(), "optimizer state shape drift");
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            let vel = v.as_mut_slice();
            for i in 0..value.len() {
                let g = grad[i] + wd * value[i];
                if momentum > 0.0 {
                    vel[i] = momentum * vel[i] + g;
                    let step = if nesterov { g + momentum * vel[i] } else { vel[i] };
                    value[i] -= lr * step;
                } else {
                    value[i] -= lr * g;
                }
            }
            p.bump_version();
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the standard defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Overrides the exponential-decay coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        model.visit_params(&mut |p| {
            if ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.shape().clone()));
                vs.push(Tensor::zeros(p.value.shape().clone()));
            }
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            let m = ms[idx].as_mut_slice();
            let v = vs[idx].as_mut_slice();
            for i in 0..value.len() {
                let g = grad[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                value[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            p.bump_version();
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use crate::layers::dense::Dense;
    use crate::loss::softmax_cross_entropy;
    use crate::sequential::Sequential;
    use medsplit_tensor::init::rng_from_seed;

    fn quadratic_layer(start: f32) -> Dense {
        // Single scalar weight, no bias contribution: y = w x.
        Dense::from_parts(Tensor::from_vec(vec![start], [1, 1]).unwrap(), Tensor::zeros([1])).unwrap()
    }

    /// Minimise (w - 3)² by feeding the gradient manually.
    fn converges<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        use crate::layer::Layer;
        let mut layer = quadratic_layer(0.0);
        for _ in 0..steps {
            let mut w = 0.0;
            layer.visit_params(&mut |p| {
                if p.name.ends_with("weight") {
                    w = p.value.as_slice()[0];
                }
            });
            layer.visit_params(&mut |p| {
                if p.name.ends_with("weight") {
                    p.grad.as_mut_slice()[0] = 2.0 * (w - 3.0);
                }
            });
            opt.step_and_zero(&mut layer);
        }
        let mut w = 0.0;
        layer.visit_params(&mut |p| {
            if p.name.ends_with("weight") {
                w = p.value.as_slice()[0];
            }
        });
        w
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let w = converges(Sgd::new(0.1), 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_minimises_quadratic() {
        let w = converges(Sgd::new(0.05).with_momentum(0.9), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn sgd_nesterov_minimises_quadratic() {
        let w = converges(Sgd::new(0.05).with_momentum(0.9).with_nesterov(), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_minimises_quadratic() {
        let w = converges(Adam::new(0.3), 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        use crate::layer::Layer;
        let mut layer = quadratic_layer(10.0);
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        // No data gradient: only decay acts.
        for _ in 0..50 {
            opt.step_and_zero(&mut layer);
        }
        let mut w = 10.0;
        layer.visit_params(&mut |p| {
            if p.name.ends_with("weight") {
                w = p.value.as_slice()[0];
            }
        });
        assert!(w.abs() < 1.0, "decay failed, w = {w}");
    }

    #[test]
    fn lr_getter_setter() {
        let mut s = Sgd::new(0.1);
        assert_eq!(s.learning_rate(), 0.1);
        s.set_learning_rate(0.01);
        assert_eq!(s.learning_rate(), 0.01);
        let mut a = Adam::new(0.001);
        a.set_learning_rate(0.1);
        assert_eq!(a.learning_rate(), 0.1);
    }

    /// End-to-end sanity: a small MLP fits a toy classification task.
    #[test]
    fn sgd_trains_mlp_on_separable_data() {
        use crate::layer::Layer;
        let mut rng = rng_from_seed(0);
        let mut model = Sequential::new("mlp");
        model.push(Dense::new(2, 16, &mut rng));
        model.push(crate::layers::activation::Activation::relu());
        model.push(Dense::new(16, 2, &mut rng));
        let mut opt = Sgd::new(0.5).with_momentum(0.9);

        // Two Gaussian blobs.
        let n = 64;
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let cx = if class == 0 { -1.0 } else { 1.0 };
            xs.push(cx + 0.3 * ((i * 7 % 13) as f32 / 13.0 - 0.5));
            xs.push(cx + 0.3 * ((i * 11 % 17) as f32 / 17.0 - 0.5));
            labels.push(class);
        }
        let x = Tensor::from_vec(xs, [n, 2]).unwrap();

        let mut last_loss = f32::INFINITY;
        for epoch in 0..60 {
            let logits = model.forward(&x, Mode::Train).unwrap();
            let out = softmax_cross_entropy(&logits, &labels).unwrap();
            model.backward(&out.grad).unwrap();
            opt.step_and_zero(&mut model);
            if epoch == 0 {
                last_loss = out.loss;
            }
        }
        let logits = model.forward(&x, Mode::Eval).unwrap();
        let final_loss = softmax_cross_entropy(&logits, &labels).unwrap().loss;
        assert!(final_loss < last_loss * 0.5, "loss {last_loss} -> {final_loss}");
        let preds = logits.argmax_rows().unwrap();
        let correct = preds.iter().zip(&labels).filter(|(a, b)| a == b).count();
        assert!(correct as f32 / n as f32 > 0.95, "accuracy {}/{n}", correct);
    }
}
