//! Flattening model parameters and gradients to single vectors.
//!
//! The federated baselines exchange whole models (FedAvg) or whole
//! gradients (synchronous SGD) over the network. Both are serialised as a
//! single flat tensor produced here; because
//! [`crate::Layer::visit_params`] produces a stable order
//! for a fixed architecture, `parameter_vector` ∘ `set_parameter_vector`
//! is the identity and two replicas of the same architecture can exchange
//! vectors safely.

use medsplit_tensor::{Result, Tensor, TensorError};

use crate::layer::Layer;

/// Concatenates every parameter value into one rank-1 tensor.
pub fn parameter_vector(layer: &mut dyn Layer) -> Tensor {
    let mut data = Vec::new();
    layer.visit_params(&mut |p| data.extend_from_slice(p.value.as_slice()));
    let n = data.len();
    Tensor::from_vec(data, [n]).expect("flat data matches its own length")
}

/// Concatenates every parameter gradient into one rank-1 tensor.
pub fn gradient_vector(layer: &mut dyn Layer) -> Tensor {
    let mut data = Vec::new();
    layer.visit_params(&mut |p| data.extend_from_slice(p.grad.as_slice()));
    let n = data.len();
    Tensor::from_vec(data, [n]).expect("flat data matches its own length")
}

/// Writes a flat vector back into the model's parameter values, in
/// visitation order.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if the vector length differs
/// from the model's parameter count.
pub fn set_parameter_vector(layer: &mut dyn Layer, vector: &Tensor) -> Result<()> {
    let expected = layer.param_count();
    if vector.numel() != expected {
        return Err(TensorError::LengthMismatch {
            expected,
            actual: vector.numel(),
        });
    }
    let data = vector.as_slice();
    let mut offset = 0;
    layer.visit_params(&mut |p| {
        let n = p.numel();
        p.value.as_mut_slice().copy_from_slice(&data[offset..offset + n]);
        p.bump_version();
        offset += n;
    });
    Ok(())
}

/// Number of non-trainable state scalars (batch-norm running statistics).
pub fn state_count(layer: &mut dyn Layer) -> usize {
    let mut n = 0;
    layer.visit_state(&mut |t| n += t.numel());
    n
}

/// Concatenates every parameter value *and* every non-trainable state
/// tensor into one rank-1 tensor: the full model snapshot that
/// model-exchange protocols (FedAvg, sync-SGD) put on the wire.
pub fn snapshot_vector(layer: &mut dyn Layer) -> Tensor {
    let mut data = Vec::new();
    layer.visit_params(&mut |p| data.extend_from_slice(p.value.as_slice()));
    layer.visit_state(&mut |t| data.extend_from_slice(t.as_slice()));
    let n = data.len();
    Tensor::from_vec(data, [n]).expect("flat data matches its own length")
}

/// Writes a snapshot produced by [`snapshot_vector`] back into the model
/// (parameters first, then state, in visitation order).
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on a length mismatch.
pub fn load_snapshot_vector(layer: &mut dyn Layer, vector: &Tensor) -> Result<()> {
    let expected = layer.param_count() + state_count(layer);
    if vector.numel() != expected {
        return Err(TensorError::LengthMismatch {
            expected,
            actual: vector.numel(),
        });
    }
    let data = vector.as_slice();
    let mut offset = 0;
    layer.visit_params(&mut |p| {
        let n = p.numel();
        p.value.as_mut_slice().copy_from_slice(&data[offset..offset + n]);
        p.bump_version();
        offset += n;
    });
    layer.visit_state(&mut |t| {
        let n = t.numel();
        t.as_mut_slice().copy_from_slice(&data[offset..offset + n]);
        offset += n;
    });
    Ok(())
}

/// Concatenates the non-trainable state tensors into one rank-1 tensor.
pub fn state_vector(layer: &mut dyn Layer) -> Tensor {
    let mut data = Vec::new();
    layer.visit_state(&mut |t| data.extend_from_slice(t.as_slice()));
    let n = data.len();
    Tensor::from_vec(data, [n]).expect("flat data matches its own length")
}

/// Writes a flat vector back into the non-trainable state tensors.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on a length mismatch.
pub fn set_state_vector(layer: &mut dyn Layer, vector: &Tensor) -> Result<()> {
    let expected = state_count(layer);
    if vector.numel() != expected {
        return Err(TensorError::LengthMismatch {
            expected,
            actual: vector.numel(),
        });
    }
    let data = vector.as_slice();
    let mut offset = 0;
    layer.visit_state(&mut |t| {
        let n = t.numel();
        t.as_mut_slice().copy_from_slice(&data[offset..offset + n]);
        offset += n;
    });
    Ok(())
}

/// FNV-1a digest over the bit patterns of every parameter *and* state
/// scalar, in visitation order. Two models agree on this digest iff their
/// snapshots are bit-identical, so fleet replicas can verify a restored
/// weight version (or a handed-off session's pinned model) without
/// shipping the whole vector again.
pub fn parameter_digest(layer: &mut dyn Layer) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut fold = |values: &[f32]| {
        for v in values {
            for byte in v.to_bits().to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
    };
    layer.visit_params(&mut |p| fold(p.value.as_slice()));
    layer.visit_state(&mut |t| fold(t.as_slice()));
    hash
}

/// Applies a flat update `value -= lr * update` across all parameters, in
/// visitation order — used by the synchronous-SGD server.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on a length mismatch.
pub fn apply_flat_update(layer: &mut dyn Layer, update: &Tensor, lr: f32) -> Result<()> {
    let expected = layer.param_count();
    if update.numel() != expected {
        return Err(TensorError::LengthMismatch {
            expected,
            actual: update.numel(),
        });
    }
    let data = update.as_slice();
    let mut offset = 0;
    layer.visit_params(&mut |p| {
        let n = p.numel();
        for (v, &u) in p.value.as_mut_slice().iter_mut().zip(&data[offset..offset + n]) {
            *v -= lr * u;
        }
        p.bump_version();
        offset += n;
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::activation::Activation;
    use crate::layers::dense::Dense;
    use crate::sequential::Sequential;
    use medsplit_tensor::init::rng_from_seed;

    fn model(seed: u64) -> Sequential {
        let mut rng = rng_from_seed(seed);
        let mut s = Sequential::new("m");
        s.push(Dense::new(3, 5, &mut rng));
        s.push(Activation::relu());
        s.push(Dense::new(5, 2, &mut rng));
        s
    }

    #[test]
    fn roundtrip_is_identity() {
        let mut m = model(0);
        let v = parameter_vector(&mut m);
        assert_eq!(v.numel(), m.param_count());
        let mut m2 = model(99); // different values, same architecture
        set_parameter_vector(&mut m2, &v).unwrap();
        let v2 = parameter_vector(&mut m2);
        assert_eq!(v, v2);
    }

    #[test]
    fn set_rejects_wrong_length() {
        let mut m = model(1);
        assert!(set_parameter_vector(&mut m, &Tensor::ones([3])).is_err());
        assert!(apply_flat_update(&mut m, &Tensor::ones([3]), 0.1).is_err());
    }

    #[test]
    fn transferring_parameters_transfers_function() {
        use crate::layer::{Layer, Mode};
        let mut a = model(2);
        let mut b = model(3);
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.9], [1, 3]).unwrap();
        let ya = a.forward(&x, Mode::Eval).unwrap();
        let yb_before = b.forward(&x, Mode::Eval).unwrap();
        assert!(!ya.allclose(&yb_before, 1e-6));
        let v = parameter_vector(&mut a);
        set_parameter_vector(&mut b, &v).unwrap();
        let yb_after = b.forward(&x, Mode::Eval).unwrap();
        assert!(ya.allclose(&yb_after, 1e-6));
    }

    #[test]
    fn gradient_vector_matches_grads() {
        use crate::layer::{Layer, Mode};
        let mut m = model(4);
        let x = Tensor::ones([2, 3]);
        let y = m.forward(&x, Mode::Train).unwrap();
        m.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let g = gradient_vector(&mut m);
        assert_eq!(g.numel(), m.param_count());
        assert!(g.norm_sq() > 0.0);
        m.zero_grads();
        assert_eq!(gradient_vector(&mut m).norm_sq(), 0.0);
    }

    #[test]
    fn snapshot_includes_batchnorm_state() {
        use crate::layer::{Layer, Mode};
        use crate::layers::batchnorm::BatchNorm;
        let mk = || {
            let mut rng = rng_from_seed(6);
            let mut s = Sequential::new("bn");
            s.push(Dense::new(3, 4, &mut rng));
            s.push(BatchNorm::new(4));
            s
        };
        let mut m = mk();
        assert_eq!(state_count(&mut m), 8); // running mean + var
                                            // Train a step so running stats move away from their defaults.
        let x = Tensor::from_vec((0..12).map(|i| i as f32).collect(), [4, 3]).unwrap();
        let _ = m.forward(&x, Mode::Train).unwrap();
        let snap = snapshot_vector(&mut m);
        assert_eq!(snap.numel(), m.param_count() + 8);

        let mut fresh = mk();
        load_snapshot_vector(&mut fresh, &snap).unwrap();
        // Eval outputs now match exactly (running stats transferred).
        let ya = m.forward(&x, Mode::Eval).unwrap();
        let yb = fresh.forward(&x, Mode::Eval).unwrap();
        assert!(ya.allclose(&yb, 1e-6));
        assert!(load_snapshot_vector(&mut fresh, &Tensor::ones([3])).is_err());
    }

    #[test]
    fn state_vector_roundtrip() {
        use crate::layers::batchnorm::BatchNorm;
        let mut s = Sequential::new("bn");
        s.push(BatchNorm::new(2));
        let v = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]).unwrap();
        set_state_vector(&mut s, &v).unwrap();
        assert_eq!(state_vector(&mut s), v);
        assert!(set_state_vector(&mut s, &Tensor::ones([5])).is_err());
        // A state-less model has an empty state vector.
        let mut m = model(9);
        assert_eq!(state_count(&mut m), 0);
        assert_eq!(state_vector(&mut m).numel(), 0);
    }

    #[test]
    fn parameter_digest_tracks_snapshot_identity() {
        let mut a = model(7);
        let mut b = model(7);
        assert_eq!(parameter_digest(&mut a), parameter_digest(&mut b));
        let mut c = model(8);
        assert_ne!(parameter_digest(&mut a), parameter_digest(&mut c));
        // Loading a's snapshot into c makes the digests agree again.
        let snap = snapshot_vector(&mut a);
        load_snapshot_vector(&mut c, &snap).unwrap();
        assert_eq!(parameter_digest(&mut a), parameter_digest(&mut c));
    }

    #[test]
    fn flat_update_is_sgd_step() {
        let mut m = model(5);
        let before = parameter_vector(&mut m);
        let update = Tensor::ones([before.numel()]);
        apply_flat_update(&mut m, &update, 0.1).unwrap();
        let after = parameter_vector(&mut m);
        let diff = before.try_sub(&after).unwrap();
        assert!(diff.allclose(&Tensor::full([before.numel()], 0.1), 1e-6));
    }
}
