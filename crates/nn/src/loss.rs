//! Loss functions.
//!
//! Losses return both the scalar loss and the gradient with respect to the
//! logits, because in the split protocol the *platform* computes the loss
//! (it owns the labels) and transmits exactly this gradient back to the
//! server — message 3 of the paper's four-message round.

use medsplit_tensor::{Result, Tensor, TensorError};

/// Result of a loss evaluation: the mean loss and the gradient w.r.t. the
/// predictions.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// `d loss / d predictions`, same shape as the predictions.
    pub grad: Tensor,
}

/// Softmax cross-entropy over integer class labels.
///
/// `logits` is `[N, K]`; `labels` holds `N` class indices `< K`. The
/// returned gradient is `(softmax(logits) - onehot(labels)) / N`.
///
/// # Errors
///
/// Returns shape errors for rank ≠ 2 logits, a label count ≠ `N`, or any
/// out-of-range label.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
            op: "softmax_cross_entropy",
        });
    }
    let (n, k) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(TensorError::LengthMismatch {
            expected: n,
            actual: labels.len(),
        });
    }
    let log_probs = logits.log_softmax_rows()?;
    let mut grad = log_probs.exp(); // softmax
    let mut loss = 0.0f32;
    let g = grad.as_mut_slice();
    for (i, &label) in labels.iter().enumerate() {
        if label >= k {
            return Err(TensorError::IndexOutOfBounds { index: label, dim: k });
        }
        loss -= log_probs.as_slice()[i * k + label];
        g[i * k + label] -= 1.0;
    }
    let inv_n = 1.0 / n as f32;
    grad.scale_inplace(inv_n);
    Ok(LossOutput {
        loss: loss * inv_n,
        grad,
    })
}

/// Mean squared error between predictions and targets of the same shape.
/// The gradient is `2 (pred - target) / numel`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> Result<LossOutput> {
    if pred.shape() != target.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: pred.shape().clone(),
            rhs: target.shape().clone(),
            op: "mse",
        });
    }
    let diff = pred.try_sub(target)?;
    let n = pred.numel().max(1) as f32;
    let loss = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    Ok(LossOutput { loss, grad })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        // Uniform logits over K classes -> loss = ln K.
        let logits = Tensor::zeros([2, 4]);
        let out = softmax_cross_entropy(&logits, &[0, 3]).unwrap();
        assert!((out.loss - 4.0f32.ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for i in 0..2 {
            let row_sum: f32 = out.grad.row(i).unwrap().sum();
            assert!(row_sum.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_confident_correct_prediction() {
        let logits = Tensor::from_vec(vec![10.0, -10.0], [1, 2]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(out.loss < 1e-3);
        assert!(out.grad.as_slice()[0].abs() < 1e-3);
    }

    #[test]
    fn cross_entropy_grad_matches_numerical() {
        let logits = Tensor::from_vec(vec![0.5, -0.3, 1.2, -0.7, 0.1, 0.9], [2, 3]).unwrap();
        let labels = [2usize, 0];
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-2;
        for ci in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[ci] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[ci] -= eps;
            let num = (softmax_cross_entropy(&lp, &labels).unwrap().loss
                - softmax_cross_entropy(&lm, &labels).unwrap().loss)
                / (2.0 * eps);
            let ana = out.grad.as_slice()[ci];
            assert!((num - ana).abs() < 1e-3, "coord {ci}: {num} vs {ana}");
        }
    }

    #[test]
    fn cross_entropy_validation() {
        assert!(softmax_cross_entropy(&Tensor::zeros([4]), &[0]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros([2, 3]), &[0]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros([2, 3]), &[0, 5]).is_err());
    }

    #[test]
    fn mse_known_values() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let target = Tensor::from_vec(vec![0.0, 0.0], [2]).unwrap();
        let out = mse(&pred, &target).unwrap();
        assert!((out.loss - 2.5).abs() < 1e-6);
        assert_eq!(out.grad.as_slice(), &[1.0, 2.0]);
        assert!(mse(&pred, &Tensor::zeros([3])).is_err());
    }

    #[test]
    fn mse_zero_at_optimum() {
        let t = Tensor::arange(5);
        let out = mse(&t, &t).unwrap();
        assert_eq!(out.loss, 0.0);
        assert_eq!(out.grad.norm(), 0.0);
    }
}
