//! Multi-layer perceptrons.

use medsplit_tensor::init::rng_from_seed;

use crate::layers::activation::Activation;
use crate::layers::dense::Dense;
use crate::sequential::Sequential;

/// Configuration of a plain MLP classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpConfig {
    /// Input feature count.
    pub input_dim: usize,
    /// Hidden layer widths, in order.
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
}

impl MlpConfig {
    /// A small default MLP for tabular experiments.
    pub fn small(input_dim: usize, num_classes: usize) -> Self {
        MlpConfig {
            input_dim,
            hidden: vec![64, 32],
            num_classes,
        }
    }

    /// Builds the network deterministically from a seed.
    ///
    /// Layer layout: `[dense, relu] × hidden.len(), dense` — so the paper's
    /// split point (keep the first hidden layer on the platform) is layer
    /// index 2, as reported by [`default_split`](Self::default_split).
    pub fn build(&self, seed: u64) -> Sequential {
        let mut rng = rng_from_seed(seed);
        let mut model = Sequential::new("mlp");
        let mut prev = self.input_dim;
        for &width in &self.hidden {
            model.push(Dense::new(prev, width, &mut rng));
            model.push(Activation::relu());
            prev = width;
        }
        model.push(Dense::new(prev, self.num_classes, &mut rng));
        model
    }

    /// Layer index of the paper's cut: just after the first hidden layer's
    /// activation (or after the only dense layer if there are no hidden
    /// layers).
    pub fn default_split(&self) -> usize {
        if self.hidden.is_empty() {
            1
        } else {
            2
        }
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        let mut total = 0;
        let mut prev = self.input_dim;
        for &w in &self.hidden {
            total += prev * w + w;
            prev = w;
        }
        total + prev * self.num_classes + self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Mode};
    use medsplit_tensor::Tensor;

    #[test]
    fn builds_expected_layers() {
        let cfg = MlpConfig {
            input_dim: 10,
            hidden: vec![20, 30],
            num_classes: 5,
        };
        let mut model = cfg.build(0);
        assert_eq!(model.len(), 5);
        let y = model.forward(&Tensor::zeros([2, 10]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 5]);
        assert_eq!(model.param_count(), cfg.param_count());
    }

    #[test]
    fn param_count_formula() {
        let cfg = MlpConfig {
            input_dim: 4,
            hidden: vec![8],
            num_classes: 3,
        };
        assert_eq!(cfg.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn deterministic_build() {
        let cfg = MlpConfig::small(6, 2);
        let mut a = cfg.build(7);
        let mut b = cfg.build(7);
        let va = crate::vectorize::parameter_vector(&mut a);
        let vb = crate::vectorize::parameter_vector(&mut b);
        assert_eq!(va, vb);
        let mut c = cfg.build(8);
        assert_ne!(va, crate::vectorize::parameter_vector(&mut c));
    }

    #[test]
    fn default_split_is_after_first_hidden() {
        let cfg = MlpConfig::small(6, 2);
        assert_eq!(cfg.default_split(), 2);
        let mut model = cfg.build(0);
        let server = model.split_off(cfg.default_split());
        assert_eq!(model.layer_summaries(), vec!["dense(6->64)", "relu"]);
        assert!(server.layer_summaries()[0].contains("64->32"));
    }

    #[test]
    fn no_hidden_layers() {
        let cfg = MlpConfig {
            input_dim: 3,
            hidden: vec![],
            num_classes: 2,
        };
        let mut model = cfg.build(0);
        assert_eq!(model.len(), 1);
        assert_eq!(cfg.default_split(), 1);
        assert_eq!(model.param_count(), 3 * 2 + 2);
    }
}
