//! ResNet-family networks (He et al.) with basic residual blocks for
//! CIFAR-shaped inputs.

use medsplit_tensor::init::rng_from_seed;
use medsplit_tensor::Conv2dSpec;
use rand::Rng;

use crate::layers::activation::Activation;
use crate::layers::batchnorm::BatchNorm;
use crate::layers::conv2d::Conv2d;
use crate::layers::dense::Dense;
use crate::layers::pool::GlobalAvgPool;
use crate::layers::residual::Residual;
use crate::sequential::Sequential;

/// Configuration of a ResNet: a stem convolution, stages of basic residual
/// blocks (3×3 + 3×3), global average pooling and a linear classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Stem / first-stage width.
    pub base_width: usize,
    /// Residual blocks per stage; stage `i` has width `base_width << i`
    /// and downsamples by 2 at its first block (except stage 0).
    pub blocks: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
    /// Input channels.
    pub input_channels: usize,
    /// Input spatial size.
    pub input_hw: usize,
}

impl ResNetConfig {
    /// Full ResNet-18 adapted to 32×32 inputs (3×3 stem, no initial
    /// max-pool, widths 64/128/256/512 with two blocks each).
    pub fn resnet18(num_classes: usize) -> Self {
        ResNetConfig {
            base_width: 64,
            blocks: vec![2, 2, 2, 2],
            num_classes,
            input_channels: 3,
            input_hw: 32,
        }
    }

    /// A width-scaled ResNet trainable on CPU in seconds.
    ///
    /// The deepest stage gets two blocks so the parameter count dominates
    /// the cut activation size, preserving the full-size ResNet-18
    /// relationship that Fig. 4's bandwidth comparison depends on.
    pub fn lite(num_classes: usize) -> Self {
        ResNetConfig {
            base_width: 8,
            blocks: vec![1, 1, 2],
            num_classes,
            input_channels: 3,
            input_hw: 16,
        }
    }

    fn basic_block(in_ch: usize, out_ch: usize, stride: usize, rng: &mut impl Rng) -> Residual {
        let mut main = Sequential::new("block");
        main.push(Conv2d::new(in_ch, out_ch, Conv2dSpec::square(3, stride, 1), rng));
        main.push(BatchNorm::new(out_ch));
        main.push(Activation::relu());
        main.push(Conv2d::new(out_ch, out_ch, Conv2dSpec::square(3, 1, 1), rng));
        main.push(BatchNorm::new(out_ch));
        if stride != 1 || in_ch != out_ch {
            let mut proj = Sequential::new("proj");
            proj.push(Conv2d::new(in_ch, out_ch, Conv2dSpec::square(1, stride, 0), rng));
            proj.push(BatchNorm::new(out_ch));
            Residual::with_projection(main, proj)
        } else {
            Residual::new(main)
        }
    }

    /// Builds the network deterministically from a seed.
    ///
    /// Layer layout: `[stem conv, bn, relu, block*, global_avgpool,
    /// dense]`; the paper's split keeps the stem (layers `0..3`) on the
    /// platform.
    pub fn build(&self, seed: u64) -> Sequential {
        let mut rng = rng_from_seed(seed);
        let mut model = Sequential::new("resnet");
        model.push(Conv2d::new(
            self.input_channels,
            self.base_width,
            Conv2dSpec::square(3, 1, 1),
            &mut rng,
        ));
        model.push(BatchNorm::new(self.base_width));
        model.push(Activation::relu());
        let mut channels = self.base_width;
        for (stage, &count) in self.blocks.iter().enumerate() {
            let width = self.base_width << stage;
            for b in 0..count {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                model.push(Self::basic_block(channels, width, stride, &mut rng));
                channels = width;
            }
        }
        model.push(GlobalAvgPool::new());
        model.push(Dense::new(channels, self.num_classes, &mut rng));
        model
    }

    /// Layer index of the paper's cut: after the stem conv+bn+relu.
    pub fn default_split(&self) -> usize {
        3
    }

    /// Per-sample element count of the activation at the default split.
    pub fn cut_activation_numel(&self) -> usize {
        self.base_width * self.input_hw * self.input_hw
    }

    /// Total number of trainable parameters, computed analytically.
    pub fn param_count(&self) -> usize {
        let mut total = self.base_width * self.input_channels * 9 + self.base_width + 2 * self.base_width;
        let mut channels = self.base_width;
        for (stage, &count) in self.blocks.iter().enumerate() {
            let width = self.base_width << stage;
            for b in 0..count {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                // conv1 + bn1 + conv2 + bn2
                total += width * channels * 9 + width + 2 * width;
                total += width * width * 9 + width + 2 * width;
                if stride != 1 || channels != width {
                    total += width * channels + width + 2 * width; // 1x1 proj + bn
                }
                channels = width;
            }
        }
        total + channels * self.num_classes + self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Mode};
    use medsplit_tensor::Tensor;

    #[test]
    fn resnet18_param_count_is_full_scale() {
        let n = ResNetConfig::resnet18(10).param_count();
        // ResNet-18 (CIFAR variant): ~11M parameters.
        assert!(n > 10_500_000 && n < 12_000_000, "param count {n}");
    }

    #[test]
    fn analytic_param_count_matches_built_model() {
        let cfg = ResNetConfig::lite(10);
        let mut model = cfg.build(0);
        assert_eq!(model.param_count(), cfg.param_count());
    }

    #[test]
    fn lite_forward_shapes() {
        let cfg = ResNetConfig::lite(7);
        let mut model = cfg.build(1);
        let y = model.forward(&Tensor::zeros([2, 3, 16, 16]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 7]);
    }

    #[test]
    fn split_keeps_stem_on_platform() {
        let cfg = ResNetConfig::lite(10);
        let mut model = cfg.build(2);
        let server = model.split_off(cfg.default_split());
        assert_eq!(model.layer_summaries().len(), 3);
        assert!(model.layer_summaries()[0].starts_with("conv2d(3->8"));
        assert!(server.layer_summaries()[0].starts_with("residual"));
        // Cut activation matches the analytic count.
        let acts = model.forward(&Tensor::zeros([1, 3, 16, 16]), Mode::Eval).unwrap();
        assert_eq!(acts.numel(), cfg.cut_activation_numel());
    }

    #[test]
    fn downsampling_between_stages() {
        let cfg = ResNetConfig {
            base_width: 4,
            blocks: vec![1, 1],
            num_classes: 3,
            input_channels: 3,
            input_hw: 8,
        };
        let mut model = cfg.build(3);
        let y = model.forward(&Tensor::zeros([1, 3, 8, 8]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 3]);
        assert_eq!(model.param_count(), cfg.param_count());
    }

    #[test]
    fn backward_through_whole_network() {
        let cfg = ResNetConfig::lite(4);
        let mut model = cfg.build(4);
        let mut rng = medsplit_tensor::init::rng_from_seed(0);
        let x = Tensor::rand_normal([2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let y = model.forward(&x, Mode::Train).unwrap();
        let g = model.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape(), x.shape());
        let mut nonzero = false;
        model.visit_params(&mut |p| nonzero |= p.grad.norm_sq() > 0.0);
        assert!(nonzero);
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        use crate::loss::softmax_cross_entropy;
        use crate::optim::{Optimizer, Sgd};
        let cfg = ResNetConfig::lite(3);
        let mut model = cfg.build(5);
        let mut rng = medsplit_tensor::init::rng_from_seed(1);
        let x = Tensor::rand_normal([3, 3, 16, 16], 0.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2];
        let out1 = softmax_cross_entropy(&model.forward(&x, Mode::Train).unwrap(), &labels).unwrap();
        model.backward(&out1.grad).unwrap();
        Sgd::new(0.05).step_and_zero(&mut model);
        let out2 = softmax_cross_entropy(&model.forward(&x, Mode::Train).unwrap(), &labels).unwrap();
        assert!(out2.loss < out1.loss, "{} -> {}", out1.loss, out2.loss);
    }
}
