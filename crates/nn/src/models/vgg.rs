//! VGG-family convolutional networks (Simonyan & Zisserman) for
//! CIFAR-shaped inputs.

use medsplit_tensor::init::rng_from_seed;
use medsplit_tensor::Conv2dSpec;

use crate::layers::activation::Activation;
use crate::layers::batchnorm::BatchNorm;
use crate::layers::conv2d::Conv2d;
use crate::layers::dense::Dense;
use crate::layers::pool::{Flatten, MaxPool2d};
use crate::sequential::Sequential;

/// Configuration of a VGG-style network: stages of same-resolution 3×3
/// convolutions separated by 2×2 max-pooling, then dense classifier
/// layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VggConfig {
    /// Convolution widths per stage; a 2×2 max-pool follows each stage.
    pub stages: Vec<Vec<usize>>,
    /// Hidden widths of the classifier head.
    pub classifier: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
    /// Input channels (3 for CIFAR-like RGB).
    pub input_channels: usize,
    /// Input spatial size (32 for CIFAR-like inputs).
    pub input_hw: usize,
    /// Whether to insert batch normalisation after each convolution.
    pub batchnorm: bool,
}

impl VggConfig {
    /// Full VGG-16 (configuration "D") adapted to 32×32 inputs, as the
    /// paper trains on CIFAR. Used for analytic communication accounting.
    pub fn vgg16(num_classes: usize) -> Self {
        VggConfig {
            stages: vec![
                vec![64, 64],
                vec![128, 128],
                vec![256, 256, 256],
                vec![512, 512, 512],
                vec![512, 512, 512],
            ],
            classifier: vec![512, 512],
            num_classes,
            input_channels: 3,
            input_hw: 32,
            batchnorm: true,
        }
    }

    /// Full VGG-11 (configuration "A") for 32×32 inputs.
    pub fn vgg11(num_classes: usize) -> Self {
        VggConfig {
            stages: vec![
                vec![64],
                vec![128],
                vec![256, 256],
                vec![512, 512],
                vec![512, 512],
            ],
            classifier: vec![512],
            num_classes,
            input_channels: 3,
            input_hw: 32,
            batchnorm: true,
        }
    }

    /// A width-scaled VGG trainable on CPU in seconds, keeping the family
    /// shape (three stages of 3×3 convolutions + pooling, dense head).
    ///
    /// The head is kept deliberately wide relative to the first
    /// convolution so the full model is an order of magnitude larger than
    /// the cut activation — the same parameter/activation relationship the
    /// full-size VGG-16 has, which Fig. 4's bandwidth comparison depends
    /// on.
    pub fn lite(num_classes: usize) -> Self {
        VggConfig {
            stages: vec![vec![8], vec![16], vec![32]],
            classifier: vec![256, 128],
            num_classes,
            input_channels: 3,
            input_hw: 16,
            batchnorm: true,
        }
    }

    /// Builds the network deterministically from a seed.
    pub fn build(&self, seed: u64) -> Sequential {
        let mut rng = rng_from_seed(seed);
        let mut model = Sequential::new("vgg");
        let mut channels = self.input_channels;
        for stage in &self.stages {
            for &width in stage {
                model.push(Conv2d::new(
                    channels,
                    width,
                    Conv2dSpec::square(3, 1, 1),
                    &mut rng,
                ));
                if self.batchnorm {
                    model.push(BatchNorm::new(width));
                }
                model.push(Activation::relu());
                channels = width;
            }
            model.push(MaxPool2d::new(2));
        }
        model.push(Flatten::new());
        let spatial = self.input_hw >> self.stages.len();
        let mut features = channels * spatial * spatial;
        for &width in &self.classifier {
            model.push(Dense::new(features, width, &mut rng));
            model.push(Activation::relu());
            features = width;
        }
        model.push(Dense::new(features, self.num_classes, &mut rng));
        model
    }

    /// Layer index of the paper's cut: after the first
    /// conv(+bn)+relu group, so the platform holds exactly the first
    /// hidden layer.
    pub fn default_split(&self) -> usize {
        if self.batchnorm {
            3
        } else {
            2
        }
    }

    /// Total number of trainable parameters (convolutions + batchnorm +
    /// classifier), computed analytically.
    pub fn param_count(&self) -> usize {
        let mut total = 0usize;
        let mut channels = self.input_channels;
        for stage in &self.stages {
            for &width in stage {
                total += width * channels * 9 + width; // conv weight + bias
                if self.batchnorm {
                    total += 2 * width; // gamma + beta
                }
                channels = width;
            }
        }
        let spatial = self.input_hw >> self.stages.len();
        let mut features = channels * spatial * spatial;
        for &width in &self.classifier {
            total += features * width + width;
            features = width;
        }
        total + features * self.num_classes + self.num_classes
    }

    /// Per-sample element count of the activation at the default split
    /// (the "smashed data" the platform transmits): the first convolution
    /// preserves spatial size, so it is `stages[0][0] × H × W`.
    pub fn cut_activation_numel(&self) -> usize {
        self.stages[0][0] * self.input_hw * self.input_hw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Mode};
    use medsplit_tensor::Tensor;

    #[test]
    fn vgg16_param_count_is_full_scale() {
        let cfg = VggConfig::vgg16(10);
        let n = cfg.param_count();
        // VGG-16 on 32x32 with 512-wide head: ~15M parameters.
        assert!(n > 14_000_000 && n < 16_500_000, "param count {n}");
    }

    #[test]
    fn analytic_param_count_matches_built_model() {
        for cfg in [VggConfig::lite(10), VggConfig::lite(100)] {
            let mut model = cfg.build(0);
            assert_eq!(model.param_count(), cfg.param_count());
        }
    }

    #[test]
    fn lite_forward_shapes() {
        let cfg = VggConfig::lite(10);
        let mut model = cfg.build(1);
        let x = Tensor::zeros([2, 3, 16, 16]);
        let y = model.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn split_holds_first_conv_block() {
        let cfg = VggConfig::lite(10);
        let mut model = cfg.build(2);
        let server = model.split_off(cfg.default_split());
        let client_layers = model.layer_summaries();
        assert_eq!(client_layers.len(), 3);
        assert!(client_layers[0].starts_with("conv2d(3->8"));
        assert!(client_layers[1].starts_with("batchnorm"));
        assert_eq!(client_layers[2], "relu");
        assert!(!server.is_empty());
    }

    #[test]
    fn cut_activation_matches_forward() {
        let cfg = VggConfig::lite(10);
        let mut model = cfg.build(3);
        let _server = model.split_off(cfg.default_split());
        let x = Tensor::zeros([1, 3, 16, 16]);
        let acts = model.forward(&x, Mode::Eval).unwrap();
        assert_eq!(acts.numel(), cfg.cut_activation_numel());
    }

    #[test]
    fn vgg11_has_fewer_params_than_vgg16() {
        assert!(VggConfig::vgg11(10).param_count() < VggConfig::vgg16(10).param_count());
    }

    #[test]
    fn no_batchnorm_variant() {
        let mut cfg = VggConfig::lite(10);
        cfg.batchnorm = false;
        assert_eq!(cfg.default_split(), 2);
        let mut model = cfg.build(4);
        assert_eq!(model.param_count(), cfg.param_count());
        let y = model.forward(&Tensor::zeros([1, 3, 16, 16]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn trainable_end_to_end_one_step() {
        use crate::loss::softmax_cross_entropy;
        use crate::optim::{Optimizer, Sgd};
        let cfg = VggConfig::lite(4);
        let mut model = cfg.build(5);
        let mut rng = medsplit_tensor::init::rng_from_seed(0);
        let x = Tensor::rand_normal([4, 3, 16, 16], 0.0, 1.0, &mut rng);
        let logits = model.forward(&x, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!(out.loss.is_finite());
        model.backward(&out.grad).unwrap();
        let mut opt = Sgd::new(0.01);
        opt.step_and_zero(&mut model);
        let logits2 = model.forward(&x, Mode::Train).unwrap();
        let out2 = softmax_cross_entropy(&logits2, &[0, 1, 2, 3]).unwrap();
        assert!(out2.loss < out.loss, "loss {} -> {}", out.loss, out2.loss);
    }
}
