//! Model zoo: the architectures the paper evaluates (VGG, ResNet) plus
//! MLPs for tabular ablations, in both *paper-size* and *lite* (CPU-
//! trainable) configurations.

pub mod mlp;
pub mod resnet;
pub mod vgg;

pub use mlp::MlpConfig;
pub use resnet::ResNetConfig;
pub use vgg::VggConfig;

use crate::sequential::Sequential;

/// A uniform handle over every architecture family, used by trainers and
/// the benchmark harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Architecture {
    /// Multi-layer perceptron.
    Mlp(MlpConfig),
    /// VGG-style convolutional network.
    Vgg(VggConfig),
    /// ResNet with basic blocks.
    ResNet(ResNetConfig),
}

impl Architecture {
    /// Builds the network deterministically from a seed.
    pub fn build(&self, seed: u64) -> Sequential {
        match self {
            Architecture::Mlp(c) => c.build(seed),
            Architecture::Vgg(c) => c.build(seed),
            Architecture::ResNet(c) => c.build(seed),
        }
    }

    /// The paper's default split index for this architecture.
    pub fn default_split(&self) -> usize {
        match self {
            Architecture::Mlp(c) => c.default_split(),
            Architecture::Vgg(c) => c.default_split(),
            Architecture::ResNet(c) => c.default_split(),
        }
    }

    /// Per-sample input dimensions (excluding the batch axis).
    pub fn input_dims(&self) -> Vec<usize> {
        match self {
            Architecture::Mlp(c) => vec![c.input_dim],
            Architecture::Vgg(c) => vec![c.input_channels, c.input_hw, c.input_hw],
            Architecture::ResNet(c) => vec![c.input_channels, c.input_hw, c.input_hw],
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        match self {
            Architecture::Mlp(c) => c.num_classes,
            Architecture::Vgg(c) => c.num_classes,
            Architecture::ResNet(c) => c.num_classes,
        }
    }

    /// Analytic parameter count.
    pub fn param_count(&self) -> usize {
        match self {
            Architecture::Mlp(c) => c.param_count(),
            Architecture::Vgg(c) => c.param_count(),
            Architecture::ResNet(c) => c.param_count(),
        }
    }

    /// Short name for reports ("vgg", "resnet", "mlp").
    pub fn family(&self) -> &'static str {
        match self {
            Architecture::Mlp(_) => "mlp",
            Architecture::Vgg(_) => "vgg",
            Architecture::ResNet(_) => "resnet",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Mode};
    use medsplit_tensor::Tensor;

    #[test]
    fn architecture_dispatch_consistency() {
        let archs = [
            Architecture::Mlp(MlpConfig::small(8, 3)),
            Architecture::Vgg(VggConfig::lite(3)),
            Architecture::ResNet(ResNetConfig::lite(3)),
        ];
        for arch in archs {
            let mut model = arch.build(0);
            assert_eq!(model.param_count(), arch.param_count(), "{}", arch.family());
            let mut dims = vec![2];
            dims.extend(arch.input_dims());
            let y = model.forward(&Tensor::zeros(dims), Mode::Eval).unwrap();
            assert_eq!(y.dims(), &[2, arch.num_classes()]);
            assert!(arch.default_split() > 0 && arch.default_split() < model.len() + 1);
        }
    }

    #[test]
    fn family_names() {
        assert_eq!(Architecture::Mlp(MlpConfig::small(2, 2)).family(), "mlp");
        assert_eq!(Architecture::Vgg(VggConfig::lite(2)).family(), "vgg");
        assert_eq!(Architecture::ResNet(ResNetConfig::lite(2)).family(), "resnet");
    }
}
