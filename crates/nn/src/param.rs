//! Trainable parameters: a value tensor paired with its gradient.

use medsplit_tensor::Tensor;

/// A trainable parameter: the value and its accumulated gradient.
///
/// Layers own their `Param`s; optimisers and the distributed protocols reach
/// them through [`Layer::visit_params`](crate::Layer::visit_params), which
/// guarantees a stable visitation order for a fixed architecture — the
/// property the parameter-vector (de)serialisation in [`crate::vectorize`]
/// relies on.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient, always the same shape as `value`.
    pub grad: Tensor,
    /// Human-readable name (`"conv1.weight"`, ...) for debugging.
    pub name: String,
    /// Version counter, bumped by every code path that mutates `value`
    /// (optimizer steps, snapshot restores, flat-vector writes). Layers
    /// compare it against their cached execution plan's generation to
    /// decide whether prepacked weight panels are still current.
    version: u64,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(value: Tensor, name: impl Into<String>) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            value,
            grad,
            name: name.into(),
            version: 0,
        }
    }

    /// Number of scalar entries.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// The current value version. Monotonically increasing; two reads
    /// returning the same number guarantee `value` was not touched by a
    /// version-disciplined writer in between.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Records that `value` was mutated. Every code path that writes
    /// `value` must call this so cached execution plans repack.
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Accumulates `g` into the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different shape than the parameter.
    pub fn accumulate_grad(&mut self, g: &Tensor) {
        self.grad
            .add_assign(g)
            .expect("gradient shape matches parameter shape");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones([2, 3]), "w");
        assert_eq!(p.grad.as_slice(), &[0.0; 6]);
        assert_eq!(p.numel(), 6);
        assert_eq!(p.name, "w");
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new(Tensor::zeros([2]), "b");
        p.accumulate_grad(&Tensor::ones([2]));
        p.accumulate_grad(&Tensor::ones([2]));
        assert_eq!(p.grad.as_slice(), &[2.0, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "gradient shape")]
    fn accumulate_wrong_shape_panics() {
        let mut p = Param::new(Tensor::zeros([2]), "b");
        p.accumulate_grad(&Tensor::ones([3]));
    }
}
