//! The [`Layer`] trait: stateful forward/backward building blocks.

use medsplit_tensor::{Result, Tensor};

use crate::param::Param;

/// Whether a forward pass is part of training or evaluation.
///
/// Training mode enables dropout masks, uses batch statistics in batch
/// normalisation (and updates the running statistics), and caches the
/// intermediate values the backward pass needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: stochastic regularisers active, activations cached.
    Train,
    /// Inference: deterministic, running statistics used.
    Eval,
}

/// A differentiable network module with explicit forward and backward
/// passes.
///
/// Layers are *stateful*: `forward` caches whatever the subsequent
/// `backward` call needs (inputs, masks, pooling indices), and `backward`
/// both accumulates parameter gradients and returns the gradient with
/// respect to the layer's input. This mirrors how the split-learning
/// protocol operates — the platform calls `backward` on `L1` with the cut
/// gradient it received from the server.
///
/// The trait is object-safe; models are built as `Vec<Box<dyn Layer>>`.
pub trait Layer: Send {
    /// Computes the layer output.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if the input shape is incompatible.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Backpropagates `grad_out` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the input of the most recent `forward` call.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `grad_out` does not match the cached
    /// forward shapes, or if `forward` was never called.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Visits every trainable parameter in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every *non-trainable* state tensor (e.g. batch-norm running
    /// statistics) in a stable order. Layers without such state need not
    /// override this.
    ///
    /// Model-exchange protocols (FedAvg, synchronous SGD) must transfer
    /// this state along with the parameters, or an averaged/global model
    /// would normalise with stale statistics at inference time.
    fn visit_state(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}

    /// A short human-readable description, e.g. `"dense(128->10)"`.
    fn describe(&self) -> String;

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Zeroes every parameter gradient.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// Error helper: the uniform "backward before forward" failure.
pub(crate) fn missing_cache(op: &'static str) -> medsplit_tensor::TensorError {
    medsplit_tensor::TensorError::Numerical(format!("`{op}`: backward called before forward"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal scaling layer used to exercise the default methods.
    struct Doubler;

    impl Layer for Doubler {
        fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
            Ok(input.scale(2.0))
        }
        fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
            Ok(grad_out.scale(2.0))
        }
        fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
        fn describe(&self) -> String {
            "doubler".into()
        }
    }

    #[test]
    fn default_methods() {
        let mut d = Doubler;
        assert_eq!(d.param_count(), 0);
        d.zero_grads(); // no-op, must not panic
        let out = d.forward(&Tensor::ones([2]), Mode::Eval).unwrap();
        assert_eq!(out.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn layer_is_object_safe() {
        let mut boxed: Box<dyn Layer> = Box::new(Doubler);
        assert_eq!(boxed.describe(), "doubler");
        let g = boxed.backward(&Tensor::ones([1])).unwrap();
        assert_eq!(g.as_slice(), &[2.0]);
    }
}
