//! Sequential container and the split point used by the protocol.

use medsplit_tensor::{Result, Tensor};

use crate::layer::{Layer, Mode};
use crate::param::Param;

/// An ordered chain of layers, itself a [`Layer`].
///
/// `Sequential` is the unit of *splitting* in the medsplit protocol: a full
/// network is built once, then [`split_off`](Sequential::split_off)
/// separates the platform-side prefix (the paper's `L1`) from the
/// server-side suffix (`L2..Lk`).
///
/// ```
/// use medsplit_nn::{Activation, Dense, Layer, Mode, Sequential};
/// use medsplit_tensor::{init, Tensor};
///
/// let mut rng = init::rng_from_seed(0);
/// let mut model = Sequential::new("mlp");
/// model.push(Dense::new(4, 8, &mut rng));
/// model.push(Activation::relu());
/// model.push(Dense::new(8, 2, &mut rng));
///
/// let server_part = model.split_off(2); // model keeps dense+relu
/// assert_eq!(model.len(), 2);
/// assert_eq!(server_part.len(), 1);
/// ```
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
    /// Mode of the most recent forward pass (defaults to [`Mode::Train`]).
    mode: Mode,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential {
            name: name.into(),
            layers: Vec::new(),
            mode: Mode::Train,
        }
    }

    /// The mode of the most recent [`forward`](Layer::forward) call
    /// ([`Mode::Train`] before any forward has run). Inference entry
    /// points use this to restore the prior mode after a temporary
    /// eval-mode forward.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Overrides the recorded mode (used to restore the pre-inference
    /// mode after an eval-mode forward).
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Appends a layer. Returns `&mut self` for chaining.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The container's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Splits the network at layer index `at`: `self` keeps layers
    /// `[0, at)` and the returned network owns `[at, len)`.
    ///
    /// This is the cut of the split-learning protocol — `at == 1` (after
    /// the first hidden layer block) reproduces the paper's placement.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Sequential {
        assert!(
            at <= self.layers.len(),
            "split index {at} exceeds {} layers",
            self.layers.len()
        );
        let tail = self.layers.split_off(at);
        Sequential {
            name: format!("{}[{}..]", self.name, at),
            layers: tail,
            mode: self.mode,
        }
    }

    /// Per-layer descriptions, in order.
    pub fn layer_summaries(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.describe()).collect()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.mode = mode;
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_state(f);
        }
    }

    fn describe(&self) -> String {
        format!("{}[{}]", self.name, self.layer_summaries().join(" -> "))
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("name", &self.name)
            .field("layers", &self.layer_summaries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::activation::Activation;
    use crate::layers::dense::Dense;
    use medsplit_tensor::init::rng_from_seed;

    fn mlp(seed: u64) -> Sequential {
        let mut rng = rng_from_seed(seed);
        let mut s = Sequential::new("mlp");
        s.push(Dense::new(4, 8, &mut rng));
        s.push(Activation::relu());
        s.push(Dense::new(8, 3, &mut rng));
        s
    }

    #[test]
    fn forward_chains_layers() {
        let mut m = mlp(0);
        let x = Tensor::ones([2, 4]);
        let y = m.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn backward_returns_input_gradient() {
        let mut m = mlp(1);
        let x = Tensor::ones([2, 4]);
        let y = m.forward(&x, Mode::Train).unwrap();
        let g = m.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.dims(), &[2, 4]);
    }

    #[test]
    fn split_preserves_function() {
        // full(x) == server(client(x)) when split anywhere.
        for at in 0..=3 {
            let mut full = mlp(2);
            let mut client = mlp(2);
            let mut server = client.split_off(at);
            let x = Tensor::from_vec((0..8).map(|i| i as f32 * 0.1).collect(), [2, 4]).unwrap();
            let direct = full.forward(&x, Mode::Eval).unwrap();
            let mid = client.forward(&x, Mode::Eval).unwrap();
            let composed = server.forward(&mid, Mode::Eval).unwrap();
            assert!(direct.allclose(&composed, 1e-6), "split at {at} changed function");
        }
    }

    #[test]
    fn split_backward_composes() {
        let mut full = mlp(3);
        let mut client = mlp(3);
        let mut server = client.split_off(1);
        let x = Tensor::from_vec((0..8).map(|i| (i as f32 - 4.0) * 0.3).collect(), [2, 4]).unwrap();

        let y_full = full.forward(&x, Mode::Train).unwrap();
        let g_out = Tensor::ones(y_full.shape().clone());
        let g_full = full.backward(&g_out).unwrap();

        let acts = client.forward(&x, Mode::Train).unwrap();
        let _ = server.forward(&acts, Mode::Train).unwrap();
        let g_cut = server.backward(&g_out).unwrap();
        let g_split = client.backward(&g_cut).unwrap();

        assert!(g_full.allclose(&g_split, 1e-5));
    }

    #[test]
    fn param_count_sums_layers() {
        let mut m = mlp(4);
        assert_eq!(m.param_count(), (4 * 8 + 8) + (8 * 3 + 3));
        let server = m.split_off(2);
        let mut server = server;
        assert_eq!(m.param_count(), 4 * 8 + 8);
        assert_eq!(server.param_count(), 8 * 3 + 3);
    }

    #[test]
    #[should_panic(expected = "split index")]
    fn split_out_of_range_panics() {
        let mut m = mlp(5);
        let _ = m.split_off(9);
    }

    #[test]
    fn describe_and_debug() {
        let m = mlp(6);
        assert!(m.describe().contains("dense(4->8)"));
        assert!(format!("{m:?}").contains("mlp"));
        assert_eq!(m.layer_summaries().len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn mode_tracks_last_forward() {
        let mut m = mlp(8);
        assert_eq!(m.mode(), Mode::Train);
        m.forward(&Tensor::ones([1, 4]), Mode::Eval).unwrap();
        assert_eq!(m.mode(), Mode::Eval);
        m.forward(&Tensor::ones([1, 4]), Mode::Train).unwrap();
        assert_eq!(m.mode(), Mode::Train);
        m.set_mode(Mode::Eval);
        assert_eq!(m.mode(), Mode::Eval);
        // split_off inherits the recorded mode.
        let tail = m.split_off(1);
        assert_eq!(tail.mode(), Mode::Eval);
    }

    #[test]
    fn zero_grads_resets_all() {
        let mut m = mlp(7);
        let x = Tensor::ones([1, 4]);
        let y = m.forward(&x, Mode::Train).unwrap();
        m.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let mut nonzero = 0;
        m.visit_params(&mut |p| {
            if p.grad.norm_sq() > 0.0 {
                nonzero += 1;
            }
        });
        assert!(nonzero > 0);
        m.zero_grads();
        m.visit_params(&mut |p| assert_eq!(p.grad.norm_sq(), 0.0));
    }
}
