//! Property-based tests for the neural-network layer library.

use medsplit_nn::vectorize::{parameter_vector, set_parameter_vector};
use medsplit_nn::{
    softmax_cross_entropy, Activation, ActivationKind, Dense, Layer, LrSchedule, MlpConfig, Mode,
};
use medsplit_tensor::{init::rng_from_seed, Tensor};
use proptest::prelude::*;

proptest! {
    /// Random dense layers pass the numerical gradient check.
    #[test]
    fn dense_gradcheck_random_sizes(inputs in 1usize..6, outputs in 1usize..6, batch in 1usize..4, seed in 0u64..500) {
        let make = move || {
            let mut rng = rng_from_seed(seed);
            Dense::new(inputs, outputs, &mut rng)
        };
        medsplit_nn::gradcheck::check_layer(make, &[batch, inputs], 1e-2, 3e-2).unwrap();
    }

    /// Every activation kind passes the gradient check (away from kinks).
    #[test]
    fn activation_gradcheck(kind_sel in 0usize..3, batch in 1usize..4, width in 1usize..6) {
        let kind = match kind_sel {
            0 => ActivationKind::Tanh,
            1 => ActivationKind::Sigmoid,
            _ => ActivationKind::LeakyRelu(0.2),
        };
        medsplit_nn::gradcheck::check_layer(move || Activation::new(kind), &[batch, width], 1e-3, 2e-2).unwrap();
    }

    /// Cross-entropy loss is non-negative, and its gradient rows sum to ~0.
    #[test]
    fn cross_entropy_invariants(batch in 1usize..6, classes in 2usize..8, seed in 0u64..500) {
        let mut rng = rng_from_seed(seed);
        let logits = Tensor::rand_uniform([batch, classes], -5.0, 5.0, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|i| (i * 7 + seed as usize) % classes).collect();
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        prop_assert!(out.loss >= 0.0);
        for i in 0..batch {
            let s: f32 = out.grad.row(i).unwrap().sum();
            prop_assert!(s.abs() < 1e-5, "row {} sums to {}", i, s);
        }
        // Loss ≤ worst case: -(min logit - max logit) + ln K.
        let bound = (logits.max() - logits.min()) + (classes as f32).ln();
        prop_assert!(out.loss <= bound + 1e-4);
    }

    /// Splitting an MLP at any interior index preserves the function.
    #[test]
    fn split_anywhere_preserves_function(h1 in 1usize..8, h2 in 1usize..8, at_sel in 0usize..5, seed in 0u64..500) {
        let cfg = MlpConfig { input_dim: 3, hidden: vec![h1, h2], num_classes: 2 };
        let mut full = cfg.build(seed);
        let n_layers = full.len();
        let at = 1 + at_sel % (n_layers - 1);
        let mut client = cfg.build(seed);
        let mut server = client.split_off(at);
        let mut rng = rng_from_seed(seed);
        let x = Tensor::rand_uniform([2, 3], -1.0, 1.0, &mut rng);
        let direct = full.forward(&x, Mode::Eval).unwrap();
        let composed = server.forward(&client.forward(&x, Mode::Eval).unwrap(), Mode::Eval).unwrap();
        prop_assert!(direct.allclose(&composed, 1e-5));
    }

    /// Parameter-vector transfer moves the exact function between replicas.
    #[test]
    fn parameter_transfer_is_exact(h in 1usize..10, seed_a in 0u64..200, seed_b in 200u64..400) {
        let cfg = MlpConfig { input_dim: 4, hidden: vec![h], num_classes: 3 };
        let mut a = cfg.build(seed_a);
        let mut b = cfg.build(seed_b);
        let v = parameter_vector(&mut a);
        set_parameter_vector(&mut b, &v).unwrap();
        let mut rng = rng_from_seed(seed_a ^ seed_b);
        let x = Tensor::rand_uniform([3, 4], -2.0, 2.0, &mut rng);
        let ya = a.forward(&x, Mode::Eval).unwrap();
        let yb = b.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(ya, yb);
    }

    /// LR schedules never produce negative rates and respect their base.
    #[test]
    fn schedules_are_sane(base in 0.001f32..1.0, step in 0usize..10_000) {
        for schedule in [
            LrSchedule::Constant(base),
            LrSchedule::StepDecay { base, step_size: 100, gamma: 0.5 },
            LrSchedule::Cosine { base, min: base * 0.01, total_steps: 1000 },
            LrSchedule::Warmup { base, warmup: 50 },
        ] {
            let lr = schedule.lr_at(step);
            prop_assert!(lr >= 0.0, "{schedule:?} gave {lr}");
            prop_assert!(lr <= base * 1.0001, "{schedule:?} exceeded base: {lr}");
        }
    }

    /// One SGD step on a random model strictly decreases a local
    /// quadratic-ish objective for a small enough learning rate.
    #[test]
    fn sgd_step_decreases_loss(seed in 0u64..300) {
        use medsplit_nn::{Optimizer, Sgd};
        let cfg = MlpConfig { input_dim: 5, hidden: vec![8], num_classes: 3 };
        let mut model = cfg.build(seed);
        let mut rng = rng_from_seed(seed);
        let x = Tensor::rand_uniform([6, 5], -1.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0, 1, 2];
        let out1 = softmax_cross_entropy(&model.forward(&x, Mode::Train).unwrap(), &labels).unwrap();
        model.backward(&out1.grad).unwrap();
        Sgd::new(0.01).step_and_zero(&mut model);
        let out2 = softmax_cross_entropy(&model.forward(&x, Mode::Train).unwrap(), &labels).unwrap();
        prop_assert!(out2.loss <= out1.loss + 1e-5, "{} -> {}", out1.loss, out2.loss);
    }
}

/// Sequential backward after a fresh forward always matches shapes.
#[test]
fn backward_shape_contract() {
    let cfg = MlpConfig {
        input_dim: 7,
        hidden: vec![5, 3],
        num_classes: 2,
    };
    let mut model = cfg.build(0);
    let x = Tensor::zeros([4, 7]);
    let y = model.forward(&x, Mode::Train).unwrap();
    let g = model.backward(&Tensor::ones(y.shape().clone())).unwrap();
    assert_eq!(g.shape(), x.shape());
}
