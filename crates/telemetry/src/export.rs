//! Trace and metric exporters: JSONL dump/parse (hand-rolled, std-only),
//! a Prometheus-style text dump, and a human-readable aggregate table.
//!
//! ## JSONL schema
//!
//! One flat JSON object per line, discriminated by a `"t"` field:
//!
//! ```text
//! {"t":"span","name":"gemm","tid":2,"id":17,"parent":16,"start_ns":1200,"dur_ns":540,"round":3,"sim_s":1.25}
//! {"t":"counter","name":"net.bytes.activations","value":1048576}
//! {"t":"gauge","name":"scratch.allocated_bytes","value":262144.0}
//! {"t":"hist","name":"serve.batch_size","bounds":[1,2,4],"buckets":[0,3,1,0],"count":4,"sum":11}
//! ```
//!
//! `parent`, `round`, and `sim_s` are omitted when absent. The parser
//! accepts the same schema back (unknown fields are ignored), so a trace
//! written by one process can be aggregated by `trace_report` in another.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;

use crate::metrics::{snapshot_metrics, MetricSnapshot};
use crate::span::{drain_spans, SpanRecord};

/// Everything a trace file holds: spans plus metric snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Finished spans, in file order.
    pub spans: Vec<SpanRecord>,
    /// Metric snapshots, in file order.
    pub metrics: Vec<MetricSnapshot>,
}

impl Trace {
    /// Captures the current process state: drains all buffered spans and
    /// snapshots all registered metrics.
    pub fn capture() -> Trace {
        Trace {
            spans: drain_spans(),
            metrics: snapshot_metrics(),
        }
    }

    /// Sum of all values of counters whose name starts with `prefix`.
    pub fn counter_total(&self, prefix: &str) -> u64 {
        self.metrics
            .iter()
            .filter_map(|m| match m {
                MetricSnapshot::Counter { name, value } if name.starts_with(prefix) => Some(*value),
                _ => None,
            })
            .sum()
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialises a trace to JSONL (one object per line, spans first).
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for s in &trace.spans {
        let _ = write!(
            out,
            "{{\"t\":\"span\",\"name\":\"{}\",\"tid\":{},\"id\":{},",
            escape_json(&s.name),
            s.tid,
            s.id
        );
        if let Some(p) = s.parent {
            let _ = write!(out, "\"parent\":{p},");
        }
        let _ = write!(out, "\"start_ns\":{},\"dur_ns\":{}", s.start_ns, s.dur_ns);
        if let Some(r) = s.round {
            let _ = write!(out, ",\"round\":{r}");
        }
        if let Some(sim) = s.sim_s {
            let _ = write!(out, ",\"sim_s\":{}", fmt_f64(sim));
        }
        out.push_str("}\n");
    }
    for m in &trace.metrics {
        match m {
            MetricSnapshot::Counter { name, value } => {
                let _ = writeln!(
                    out,
                    "{{\"t\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                    escape_json(name)
                );
            }
            MetricSnapshot::Gauge { name, value } => {
                let _ = writeln!(
                    out,
                    "{{\"t\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                    escape_json(name),
                    fmt_f64(*value)
                );
            }
            MetricSnapshot::Histogram {
                name,
                bounds,
                buckets,
                count,
                sum,
            } => {
                let bounds_s: Vec<String> = bounds.iter().map(|b| fmt_f64(*b)).collect();
                let buckets_s: Vec<String> = buckets.iter().map(|b| b.to_string()).collect();
                let _ = writeln!(
                    out,
                    "{{\"t\":\"hist\",\"name\":\"{}\",\"bounds\":[{}],\"buckets\":[{}],\"count\":{count},\"sum\":{}}}",
                    escape_json(name),
                    bounds_s.join(","),
                    buckets_s.join(","),
                    fmt_f64(*sum)
                );
            }
        }
    }
    out
}

/// A parsed flat-JSON value (the subset the trace schema needs).
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(f64),
    Str(String),
    Arr(Vec<f64>),
}

impl Val {
    fn as_u64(&self) -> Option<u64> {
        match self {
            Val::Num(n) => Some(*n as u64),
            _ => None,
        }
    }
    fn as_f64(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (string, number, and numeric-array values
/// only — the full trace schema). Returns `None` on malformed input.
fn parse_flat_object(line: &str) -> Option<HashMap<String, Val>> {
    let bytes = line.trim().as_bytes();
    if bytes.first() != Some(&b'{') || bytes.last() != Some(&b'}') {
        return None;
    }
    let mut out = HashMap::new();
    let mut i = 1usize;
    let end = bytes.len() - 1;
    let skip_ws = |i: &mut usize| {
        while *i < end && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    loop {
        skip_ws(&mut i);
        if i >= end {
            break;
        }
        // Key.
        if bytes[i] != b'"' {
            return None;
        }
        i += 1;
        let key_start = i;
        while i < end && bytes[i] != b'"' {
            if bytes[i] == b'\\' {
                i += 1;
            }
            i += 1;
        }
        let key = unescape(&line[key_start..i])?;
        i += 1; // closing quote
        skip_ws(&mut i);
        if i >= end || bytes[i] != b':' {
            return None;
        }
        i += 1;
        skip_ws(&mut i);
        // Value.
        let val = if bytes[i] == b'"' {
            i += 1;
            let vs = i;
            while i < end && bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            let v = Val::Str(unescape(&line[vs..i])?);
            i += 1;
            v
        } else if bytes[i] == b'[' {
            i += 1;
            let vs = i;
            while i < end && bytes[i] != b']' {
                i += 1;
            }
            let body = line[vs..i].trim();
            let mut arr = Vec::new();
            if !body.is_empty() {
                for part in body.split(',') {
                    arr.push(part.trim().parse::<f64>().ok()?);
                }
            }
            i += 1;
            Val::Arr(arr)
        } else {
            let vs = i;
            while i < end && bytes[i] != b',' {
                i += 1;
            }
            let body = line[vs..i].trim();
            if body == "null" {
                // Tolerated, but the writer never emits it; skip the key.
                skip_ws(&mut i);
                if i < end && bytes[i] == b',' {
                    i += 1;
                }
                continue;
            }
            Val::Num(body.parse::<f64>().ok()?)
        };
        out.insert(key, val);
        skip_ws(&mut i);
        if i < end && bytes[i] == b',' {
            i += 1;
        }
    }
    Some(out)
}

fn unescape(s: &str) -> Option<String> {
    if !s.contains('\\') {
        return Some(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            other => out.push(other),
        }
    }
    Some(out)
}

/// Parses a JSONL trace produced by [`to_jsonl`]. Malformed or unknown
/// lines are skipped rather than failing the whole file.
pub fn from_jsonl(text: &str) -> Trace {
    let mut trace = Trace::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(obj) = parse_flat_object(line) else {
            continue;
        };
        let Some(t) = obj.get("t").and_then(Val::as_str) else {
            continue;
        };
        let name = match obj.get("name").and_then(Val::as_str) {
            Some(n) => n.to_owned(),
            None => continue,
        };
        match t {
            "span" => {
                trace.spans.push(SpanRecord {
                    name,
                    tid: obj.get("tid").and_then(Val::as_u64).unwrap_or(0),
                    id: obj.get("id").and_then(Val::as_u64).unwrap_or(0),
                    parent: obj.get("parent").and_then(Val::as_u64),
                    start_ns: obj.get("start_ns").and_then(Val::as_u64).unwrap_or(0),
                    dur_ns: obj.get("dur_ns").and_then(Val::as_u64).unwrap_or(0),
                    round: obj.get("round").and_then(Val::as_u64),
                    sim_s: obj.get("sim_s").and_then(Val::as_f64),
                });
            }
            "counter" => {
                trace.metrics.push(MetricSnapshot::Counter {
                    name,
                    value: obj.get("value").and_then(Val::as_u64).unwrap_or(0),
                });
            }
            "gauge" => {
                trace.metrics.push(MetricSnapshot::Gauge {
                    name,
                    value: obj.get("value").and_then(Val::as_f64).unwrap_or(0.0),
                });
            }
            "hist" => {
                let bounds = match obj.get("bounds") {
                    Some(Val::Arr(a)) => a.clone(),
                    _ => Vec::new(),
                };
                let buckets = match obj.get("buckets") {
                    Some(Val::Arr(a)) => a.iter().map(|v| *v as u64).collect(),
                    _ => Vec::new(),
                };
                trace.metrics.push(MetricSnapshot::Histogram {
                    name,
                    bounds,
                    buckets,
                    count: obj.get("count").and_then(Val::as_u64).unwrap_or(0),
                    sum: obj.get("sum").and_then(Val::as_f64).unwrap_or(0.0),
                });
            }
            _ => {}
        }
    }
    trace
}

/// Renders the metric snapshots in a Prometheus-style text format
/// (`name value`, histograms as `name_bucket{le="..."} count` series).
pub fn to_prometheus(trace: &Trace) -> String {
    let sanitize = |name: &str| name.replace(['.', '-', '/'], "_");
    let mut out = String::new();
    for m in &trace.metrics {
        match m {
            MetricSnapshot::Counter { name, value } => {
                let n = sanitize(name);
                let _ = writeln!(out, "# TYPE {n} counter");
                let _ = writeln!(out, "{n} {value}");
            }
            MetricSnapshot::Gauge { name, value } => {
                let n = sanitize(name);
                let _ = writeln!(out, "# TYPE {n} gauge");
                let _ = writeln!(out, "{n} {value}");
            }
            MetricSnapshot::Histogram {
                name,
                bounds,
                buckets,
                count,
                sum,
            } => {
                let n = sanitize(name);
                let _ = writeln!(out, "# TYPE {n} histogram");
                let mut cumulative = 0u64;
                for (bound, bucket) in bounds.iter().zip(buckets.iter()) {
                    cumulative += bucket;
                    let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {count}");
                let _ = writeln!(out, "{n}_sum {sum}");
                let _ = writeln!(out, "{n}_count {count}");
            }
        }
    }
    out
}

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAggregate {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of span durations (includes time spent in child spans).
    pub total_ns: u64,
    /// Sum of durations minus time covered by direct child spans.
    pub self_ns: u64,
}

/// Aggregates spans by name: call count, total time, and self time
/// (total minus the duration of direct children), sorted by descending
/// self time.
pub fn aggregate_spans(spans: &[SpanRecord]) -> Vec<SpanAggregate> {
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_ns.entry(p).or_default() += s.dur_ns;
        }
    }
    let mut agg: HashMap<&str, SpanAggregate> = HashMap::new();
    for s in spans {
        let e = agg.entry(&s.name).or_insert_with(|| SpanAggregate {
            name: s.name.clone(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
        });
        e.count += 1;
        e.total_ns += s.dur_ns;
        e.self_ns += s.dur_ns.saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
    }
    let mut out: Vec<SpanAggregate> = agg.into_values().collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    out
}

/// Renders the aggregate table as aligned human-readable text.
pub fn aggregate_table(spans: &[SpanRecord]) -> String {
    let aggs = aggregate_spans(spans);
    let total_self: u64 = aggs.iter().map(|a| a.self_ns).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>12} {:>12} {:>7}",
        "span", "calls", "total_ms", "self_ms", "self%"
    );
    for a in &aggs {
        let share = if total_self > 0 {
            100.0 * a.self_ns as f64 / total_self as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>12.3} {:>12.3} {:>6.1}%",
            a.name,
            a.count,
            a.total_ns as f64 / 1e6,
            a.self_ns as f64 / 1e6,
            share
        );
    }
    out
}

/// Writes a trace as JSONL to `path`.
pub fn write_jsonl(trace: &Trace, path: &Path) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(to_jsonl(trace).as_bytes())?;
    w.flush()
}

/// Captures the process trace and writes it to the file named by
/// `MEDSPLIT_TRACE_FILE` (default `trace.jsonl` in the working
/// directory). Does nothing and returns `Ok(None)` when telemetry is
/// disabled; otherwise returns the path written.
pub fn write_configured() -> std::io::Result<Option<std::path::PathBuf>> {
    if !crate::enabled() {
        return Ok(None);
    }
    let path = std::env::var("MEDSPLIT_TRACE_FILE").unwrap_or_else(|_| "trace.jsonl".to_owned());
    let path = std::path::PathBuf::from(path);
    write_jsonl(&Trace::capture(), &path)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            spans: vec![
                SpanRecord {
                    name: "round".into(),
                    tid: 0,
                    id: 1,
                    parent: None,
                    start_ns: 100,
                    dur_ns: 1000,
                    round: Some(0),
                    sim_s: Some(2.5),
                },
                SpanRecord {
                    name: "gemm".into(),
                    tid: 0,
                    id: 2,
                    parent: Some(1),
                    start_ns: 200,
                    dur_ns: 400,
                    round: None,
                    sim_s: None,
                },
            ],
            metrics: vec![
                MetricSnapshot::Counter {
                    name: "net.bytes.activations".into(),
                    value: 4096,
                },
                MetricSnapshot::Gauge {
                    name: "scratch.allocated_bytes".into(),
                    value: 1024.0,
                },
                MetricSnapshot::Histogram {
                    name: "serve.batch_size".into(),
                    bounds: vec![1.0, 4.0],
                    buckets: vec![1, 2, 0],
                    count: 3,
                    sum: 7.0,
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let trace = sample_trace();
        let text = to_jsonl(&trace);
        let parsed = from_jsonl(&text);
        assert_eq!(parsed, trace);
    }

    #[test]
    fn parser_skips_malformed_and_unknown_lines() {
        let text = "not json\n{\"t\":\"mystery\",\"name\":\"x\"}\n\n{\"t\":\"counter\",\"name\":\"ok\",\"value\":7}\n";
        let parsed = from_jsonl(text);
        assert_eq!(parsed.spans.len(), 0);
        assert_eq!(
            parsed.metrics,
            vec![MetricSnapshot::Counter {
                name: "ok".into(),
                value: 7
            }]
        );
    }

    #[test]
    fn aggregate_computes_self_time() {
        let trace = sample_trace();
        let aggs = aggregate_spans(&trace.spans);
        let round = aggs.iter().find(|a| a.name == "round").unwrap();
        let gemm = aggs.iter().find(|a| a.name == "gemm").unwrap();
        assert_eq!(round.total_ns, 1000);
        assert_eq!(round.self_ns, 600, "child gemm time subtracted");
        assert_eq!(gemm.self_ns, 400);
        let table = aggregate_table(&trace.spans);
        assert!(table.contains("round"));
        assert!(table.contains("gemm"));
    }

    #[test]
    fn prometheus_export_has_expected_series() {
        let text = to_prometheus(&sample_trace());
        assert!(text.contains("net_bytes_activations 4096"));
        assert!(text.contains("# TYPE serve_batch_size histogram"));
        assert!(text.contains("serve_batch_size_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("serve_batch_size_sum 7"));
    }

    #[test]
    fn counter_total_sums_by_prefix() {
        let mut trace = sample_trace();
        trace.metrics.push(MetricSnapshot::Counter {
            name: "net.bytes.logits".into(),
            value: 1000,
        });
        assert_eq!(trace.counter_total("net.bytes."), 5096);
        assert_eq!(trace.counter_total("net.msgs."), 0);
    }
}
