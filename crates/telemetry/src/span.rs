//! The span tracer: scoped enter/exit guards recording monotonic host
//! time, buffered per thread and drained into a global collector.
//!
//! Design points:
//!
//! - **Off by default, near-zero cost when off.** [`span`] checks one
//!   relaxed atomic and returns an inert guard without reading the clock
//!   when tracing is disabled, so instrumented builds stay bit-identical
//!   and effectively free. Tracing is enabled by `MEDSPLIT_TRACE=1` in
//!   the environment (resolved lazily, once) or programmatically with
//!   [`set_enabled`] (tests, the smoke harness).
//! - **Thread-local buffering.** Each thread pushes finished spans into
//!   its own buffer, registered with a global collector on first use.
//!   The hot path never touches a shared lock (the per-thread mutex is
//!   only ever contended by [`drain_spans`]), so worker-pool kernels can
//!   emit spans without serialising on each other.
//! - **Nesting by guard scope.** The thread-local current-span cell makes
//!   every span a child of the span whose guard encloses it on the same
//!   thread; guards restore the parent on drop, including during
//!   unwinding.
//! - **Passive observation only.** Spans read clocks and write buffers;
//!   they never touch RNGs, model state, or the simulated network, which
//!   is what makes the on/off determinism guarantee trivial to uphold.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

const UNRESOLVED: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Tri-state enable flag: unresolved until the first check reads the
/// `MEDSPLIT_TRACE` environment variable.
static ENABLED: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// Monotone span-id source (0 is never handed out, so parent ids can use
/// 0 as "none" on the wire).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Monotone thread-id source for trace output (dense small integers, not
/// OS thread ids).
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// The instant all span timestamps are relative to (first enabled use).
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Whether tracing is currently enabled.
///
/// Resolved from `MEDSPLIT_TRACE` (truthy values: `1`, `true`, `on`) on
/// first call; [`set_enabled`] overrides it at any time.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => resolve_from_env(),
    }
}

#[cold]
fn resolve_from_env() -> bool {
    let on = std::env::var("MEDSPLIT_TRACE")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false);
    ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Turns tracing on or off for the whole process (overrides the
/// environment). Spans already buffered are kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// One finished span, as recorded (and as parsed back from JSONL).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (a small fixed taxonomy: `round`, `l1_forward`, ...).
    pub name: String,
    /// Dense trace-local thread id.
    pub tid: u64,
    /// Unique span id (process-wide).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (monotonic host time).
    pub dur_ns: u64,
    /// Optional protocol-round annotation.
    pub round: Option<u64>,
    /// Optional simulated-clock annotation in seconds.
    pub sim_s: Option<f64>,
}

/// A per-thread span buffer registered with the global collector.
struct ThreadBuf {
    tid: u64,
    records: Mutex<Vec<SpanRecord>>,
}

fn collector() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static COLLECTOR: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// This thread's buffer; registered with the collector on first span.
    static LOCAL: Arc<ThreadBuf> = {
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            records: Mutex::new(Vec::new()),
        });
        collector().lock().expect("collector poisoned").push(Arc::clone(&buf));
        buf
    };

    /// Innermost live span on this thread (the parent of new spans).
    static CURRENT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Live data of an active span guard.
struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    round: Option<u64>,
    sim_s: Option<f64>,
}

/// RAII guard: the span runs from construction to drop. Inert (`None`)
/// when tracing is disabled at construction time.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

/// Enters a span. The returned guard records the span when dropped;
/// bind it (`let _span = ...`) so it lives to the end of the scope.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    enter(name, None)
}

/// Enters a span annotated with a protocol round index.
#[inline]
pub fn span_round(name: &'static str, round: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    enter(name, Some(round))
}

fn enter(name: &'static str, round: Option<u64>) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.replace(Some(id)));
    // Touch the epoch before reading `start` so `start >= epoch` holds.
    let _ = epoch();
    SpanGuard {
        inner: Some(ActiveSpan {
            name,
            id,
            parent,
            start: Instant::now(),
            round,
            sim_s: None,
        }),
    }
}

impl SpanGuard {
    /// Annotates the span with a simulated-clock reading (seconds).
    pub fn set_sim_s(&mut self, sim_s: f64) {
        if let Some(a) = &mut self.inner {
            a.sim_s = Some(sim_s);
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.inner.take() else { return };
        let dur_ns = a.start.elapsed().as_nanos() as u64;
        let start_ns = a.start.saturating_duration_since(epoch()).as_nanos() as u64;
        CURRENT.with(|c| c.set(a.parent));
        LOCAL.with(|buf| {
            buf.records
                .lock()
                .expect("span buffer poisoned")
                .push(SpanRecord {
                    name: a.name.to_owned(),
                    tid: buf.tid,
                    id: a.id,
                    parent: a.parent,
                    start_ns,
                    dur_ns,
                    round: a.round,
                    sim_s: a.sim_s,
                });
        });
    }
}

/// Takes every buffered span from every thread, sorted by start time.
/// Buffers are left empty; spans still live (guards not yet dropped) are
/// not included.
pub fn drain_spans() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for buf in collector().lock().expect("collector poisoned").iter() {
        out.append(&mut buf.records.lock().expect("span buffer poisoned"));
    }
    out.sort_by_key(|r| (r.start_ns, r.id));
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Serialises tests that toggle the global enable flag.
    pub(crate) static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = LOCK.lock().unwrap();
        set_enabled(false);
        let _ = drain_spans();
        {
            let _s = span("never");
        }
        assert!(drain_spans().iter().all(|r| r.name != "never"));
    }

    #[test]
    fn nesting_links_parents_on_one_thread() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        let _ = drain_spans();
        {
            let _outer = span_round("t_outer", 3);
            {
                let _inner = span("t_inner");
            }
            {
                let mut second = span("t_inner2");
                second.set_sim_s(1.5);
            }
        }
        set_enabled(false);
        let spans = drain_spans();
        let outer = spans.iter().find(|r| r.name == "t_outer").unwrap();
        let inner = spans.iter().find(|r| r.name == "t_inner").unwrap();
        let inner2 = spans.iter().find(|r| r.name == "t_inner2").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner2.parent, Some(outer.id));
        assert_eq!(outer.round, Some(3));
        assert_eq!(inner2.sim_s, Some(1.5));
        assert!(outer.dur_ns >= inner.dur_ns);
        // Parent restored: a sibling after the nest has the same parent.
        assert_ne!(inner.id, inner2.id);
    }

    #[test]
    fn spans_from_other_threads_have_own_tid_and_no_cross_parent() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        let _ = drain_spans();
        let main_tid = {
            let _s = span("t_main");
            drop(_s);
            drain_spans().pop().unwrap().tid
        };
        let handle = std::thread::spawn(|| {
            let _outer = span("t_worker_outer");
            let _inner = span("t_worker_inner");
        });
        handle.join().unwrap();
        set_enabled(false);
        let spans = drain_spans();
        let outer = spans.iter().find(|r| r.name == "t_worker_outer").unwrap();
        let inner = spans.iter().find(|r| r.name == "t_worker_inner").unwrap();
        assert_ne!(outer.tid, main_tid, "worker thread gets its own tid");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None, "no cross-thread parenting");
    }
}
