//! Workspace-wide telemetry: tracing spans, a metrics registry, and
//! trace exporters — the observability substrate for the split-learning
//! stack.
//!
//! The paper's evaluation is an observability claim (accuracy per
//! transmitted byte); this crate generalises the repo's fragmented
//! accounting into one substrate that attributes wall time and bytes to
//! protocol phases and kernels:
//!
//! - [`span`] / [`span_round`] — RAII scoped spans with thread-local
//!   nesting, buffered per thread and drained via [`drain_spans`].
//! - [`counter_add`] / [`gauge_set`] / [`histogram_observe`] — named
//!   atomic metrics in a global registry, snapshotted via
//!   [`snapshot_metrics`].
//! - [`Trace`] with [`to_jsonl`] / [`from_jsonl`] / [`to_prometheus`] /
//!   [`aggregate_table`] — exporters for offline analysis
//!   (`trace_report` in `medsplit-bench`).
//! - [`percentile`] — the workspace's single nearest-rank percentile
//!   implementation (also used by `serve::metrics`).
//!
//! Everything is **off by default**: until `MEDSPLIT_TRACE=1` is set (or
//! [`set_enabled`]`(true)` is called) every instrumentation point is one
//! relaxed atomic load, and results are bit-identical to an
//! uninstrumented build. `MEDSPLIT_TRACE_FILE` names the JSONL output
//! for [`write_configured`].
//!
//! ```
//! medsplit_telemetry::set_enabled(true);
//! {
//!     let mut round = medsplit_telemetry::span_round("round", 0);
//!     round.set_sim_s(1.25);
//!     let _fwd = medsplit_telemetry::span("l1_forward");
//!     medsplit_telemetry::counter_add("net.bytes.activations", 4096);
//! }
//! medsplit_telemetry::set_enabled(false);
//! let trace = medsplit_telemetry::Trace::capture();
//! assert!(trace.spans.iter().any(|s| s.name == "round"));
//! ```

#![warn(missing_docs)]

mod export;
mod metrics;
mod span;

pub use export::{
    aggregate_spans, aggregate_table, from_jsonl, to_jsonl, to_prometheus, write_configured, write_jsonl,
    SpanAggregate, Trace,
};
pub use metrics::{
    counter_add, counter_add_labeled, gauge_set, gauge_set_max, histogram_observe, percentile, reset_metrics,
    snapshot_metrics, Counter, Gauge, Histogram, Metric, MetricSnapshot,
};
pub use span::{drain_spans, enabled, set_enabled, span, span_round, SpanGuard, SpanRecord};
