//! The metrics registry: named atomic counters, gauges, and fixed-bucket
//! histograms, plus the workspace's one nearest-rank percentile helper.
//!
//! Metrics share the tracer's enable gate ([`crate::enabled`]): when
//! tracing is off every write path is a single relaxed atomic load and an
//! early return, so instrumented hot loops (kernels, transport) cost
//! nothing measurable in normal runs.
//!
//! The registry is keyed by name in a `BTreeMap` so exports are stable and
//! sorted; lookups take a short global lock, so callers on hot paths
//! should either rely on the disabled early-out or cache the
//! [`std::sync::Arc`] handle returned by the `register_*` functions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::span::enabled;

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// Uses the classic nearest-rank definition: `rank = ceil(p/100 * n)`
/// clamped to `[1, n]`, returning `sorted[rank - 1]`. `p = 0` therefore
/// selects the first element and `p = 100` the last. Returns 0.0 for an
/// empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current counter value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value / max gauge storing an `f64` as raw bits.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge to `v` (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if `v` exceeds the current value.
    #[inline]
    pub fn set_max(&self, v: f64) {
        if !enabled() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self
                .bits
                .compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current gauge value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: counts per upper-bound bucket plus a final
/// overflow bucket, a total count, and a running sum.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending inclusive upper bounds; values above the last bound land
    /// in the overflow bucket.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket at the end.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum of observed values, stored as f64 bits and updated by
    /// CAS (observation rates here never make this a bottleneck).
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation (no-op while telemetry is disabled).
    pub fn observe(&self, v: f64) {
        if !enabled() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The configured bucket upper bounds (ascending).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// One registered metric.
#[derive(Debug)]
pub enum Metric {
    /// A monotonically increasing counter.
    Counter(Counter),
    /// A last-value / max gauge.
    Gauge(Gauge),
    /// A fixed-bucket histogram.
    Histogram(Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<String, Arc<Metric>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Arc<Metric>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn register(name: &str, make: impl FnOnce() -> Metric) -> Arc<Metric> {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    Arc::clone(reg.entry(name.to_owned()).or_insert_with(|| Arc::new(make())))
}

/// Adds `n` to the counter named `name` (registers it on first use).
pub fn counter_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let m = register(name, || Metric::Counter(Counter::default()));
    if let Metric::Counter(c) = &*m {
        c.add(n);
    }
}

/// Adds `n` to the counter named `name.label` (registers it on first
/// use). A thin convenience over [`counter_add`] for per-replica /
/// per-tenant fan-out ("fleet.served" + "replica-2" →
/// "fleet.served.replica-2"): the label lands in the metric name, so
/// labelled series sort together in exports.
pub fn counter_add_labeled(name: &str, label: &str, n: u64) {
    if !enabled() {
        return;
    }
    counter_add(&format!("{name}.{label}"), n);
}

/// Sets the gauge named `name` to `v` (registers it on first use).
pub fn gauge_set(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    let m = register(name, || Metric::Gauge(Gauge::default()));
    if let Metric::Gauge(g) = &*m {
        g.set(v);
    }
}

/// Raises the gauge named `name` to at least `v` (registers it on first
/// use).
pub fn gauge_set_max(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    let m = register(name, || Metric::Gauge(Gauge::default()));
    if let Metric::Gauge(g) = &*m {
        g.set_max(v);
    }
}

/// Records `v` into the histogram named `name`, creating it with `bounds`
/// on first use (later calls ignore `bounds`).
pub fn histogram_observe(name: &str, bounds: &[f64], v: f64) {
    if !enabled() {
        return;
    }
    let m = register(name, || Metric::Histogram(Histogram::new(bounds.to_vec())));
    if let Metric::Histogram(h) = &*m {
        h.observe(v);
    }
}

/// A point-in-time copy of one metric's state, for export.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter {
        /// Metric name.
        name: String,
        /// Counter value.
        value: u64,
    },
    /// Gauge value.
    Gauge {
        /// Metric name.
        name: String,
        /// Gauge value.
        value: f64,
    },
    /// Histogram state.
    Histogram {
        /// Metric name.
        name: String,
        /// Bucket upper bounds (ascending).
        bounds: Vec<f64>,
        /// Per-bucket counts; final entry is the overflow bucket.
        buckets: Vec<u64>,
        /// Total observation count.
        count: u64,
        /// Sum of observed values.
        sum: f64,
    },
}

impl MetricSnapshot {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. }
            | MetricSnapshot::Gauge { name, .. }
            | MetricSnapshot::Histogram { name, .. } => name,
        }
    }
}

/// Snapshots every registered metric, sorted by name.
pub fn snapshot_metrics() -> Vec<MetricSnapshot> {
    let reg = registry().lock().expect("metrics registry poisoned");
    reg.iter()
        .map(|(name, m)| match &**m {
            Metric::Counter(c) => MetricSnapshot::Counter {
                name: name.clone(),
                value: c.get(),
            },
            Metric::Gauge(g) => MetricSnapshot::Gauge {
                name: name.clone(),
                value: g.get(),
            },
            Metric::Histogram(h) => MetricSnapshot::Histogram {
                name: name.clone(),
                bounds: h.bounds().to_vec(),
                buckets: h.bucket_counts(),
                count: h.count(),
                sum: h.sum(),
            },
        })
        .collect()
}

/// Removes every registered metric (test / smoke-harness support).
pub fn reset_metrics() {
    registry().lock().expect("metrics registry poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::set_enabled;
    use crate::span::tests::LOCK;

    #[test]
    fn percentile_edge_cases() {
        // Empty input.
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Single sample: every percentile returns it, including p=0.
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 100.0), 7.0);
        // p=0 clamps to the first element.
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        // Nearest rank: p50 of 4 samples is the 2nd.
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 75.0), 3.0);
        assert_eq!(percentile(&v, 76.0), 4.0);
        // Ties: repeated values are returned as-is.
        let t = [1.0, 5.0, 5.0, 5.0, 9.0];
        assert_eq!(percentile(&t, 40.0), 5.0);
        assert_eq!(percentile(&t, 60.0), 5.0);
        assert_eq!(percentile(&t, 80.0), 5.0);
    }

    #[test]
    fn counters_gauges_histograms_register_and_accumulate() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        reset_metrics();
        counter_add("t.counter", 2);
        counter_add("t.counter", 3);
        gauge_set("t.gauge", 1.5);
        gauge_set_max("t.gauge", 0.5); // lower: ignored
        gauge_set_max("t.gauge", 2.5); // higher: taken
        histogram_observe("t.hist", &[1.0, 10.0], 0.5);
        histogram_observe("t.hist", &[1.0, 10.0], 1.0); // boundary: first bucket
        histogram_observe("t.hist", &[1.0, 10.0], 5.0);
        histogram_observe("t.hist", &[1.0, 10.0], 99.0); // overflow
        set_enabled(false);
        let snaps = snapshot_metrics();
        assert_eq!(
            snaps[0],
            MetricSnapshot::Counter {
                name: "t.counter".into(),
                value: 5
            }
        );
        assert_eq!(
            snaps[1],
            MetricSnapshot::Gauge {
                name: "t.gauge".into(),
                value: 2.5
            }
        );
        match &snaps[2] {
            MetricSnapshot::Histogram {
                name,
                bounds,
                buckets,
                count,
                sum,
            } => {
                assert_eq!(name, "t.hist");
                assert_eq!(bounds, &[1.0, 10.0]);
                assert_eq!(buckets, &[2, 1, 1]);
                assert_eq!(*count, 4);
                assert!((sum - 105.5).abs() < 1e-9);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        reset_metrics();
    }

    #[test]
    fn labeled_counters_land_in_distinct_series() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        reset_metrics();
        counter_add_labeled("fleet.served", "replica-0", 2);
        counter_add_labeled("fleet.served", "replica-1", 3);
        counter_add_labeled("fleet.served", "replica-0", 1);
        set_enabled(false);
        let snaps = snapshot_metrics();
        assert_eq!(
            snaps[0],
            MetricSnapshot::Counter {
                name: "fleet.served.replica-0".into(),
                value: 3
            }
        );
        assert_eq!(
            snaps[1],
            MetricSnapshot::Counter {
                name: "fleet.served.replica-1".into(),
                value: 3
            }
        );
        reset_metrics();
    }

    #[test]
    fn disabled_metrics_do_not_accumulate() {
        let _g = LOCK.lock().unwrap();
        set_enabled(false);
        reset_metrics();
        counter_add("t.off", 10);
        gauge_set("t.off.g", 3.0);
        histogram_observe("t.off.h", &[1.0], 2.0);
        assert!(snapshot_metrics().is_empty());
    }
}
