//! Property-based tests for dataset generation, partitioning and
//! sampling.

use medsplit_data::{partition, BatchSampler, MinibatchPolicy, Partition, SyntheticImages, SyntheticTabular};
use proptest::prelude::*;

proptest! {
    /// Every partition mode conserves every sample exactly once and never
    /// creates an empty shard.
    #[test]
    fn partition_conserves_samples(n in 20usize..120, k in 1usize..6, mode_sel in 0usize..3, seed in 0u64..300) {
        let ds = SyntheticTabular::new(4, 3, seed).generate(n).unwrap();
        let mode = match mode_sel {
            0 => Partition::Iid,
            1 => Partition::PowerLaw { alpha: 1.5 },
            _ => Partition::Dirichlet { alpha: 0.5 },
        };
        prop_assume!(k <= n);
        let shards = partition(&ds, k, &mode, seed).unwrap();
        prop_assert_eq!(shards.len(), k);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, n);
        prop_assert!(shards.iter().all(|s| !s.is_empty()));
        // Class histograms also sum to the global histogram.
        let global = ds.class_histogram();
        let mut acc = vec![0usize; global.len()];
        for s in &shards {
            for (a, b) in acc.iter_mut().zip(s.class_histogram()) {
                *a += b;
            }
        }
        prop_assert_eq!(acc, global);
    }

    /// Proportional minibatches sum close to the requested global batch
    /// and never starve a platform.
    #[test]
    fn proportional_minibatch_invariants(sizes in prop::collection::vec(1usize..500, 1..8), global in 2usize..128) {
        let policy = MinibatchPolicy::Proportional { global };
        let batches = policy.sizes(&sizes);
        prop_assert_eq!(batches.len(), sizes.len());
        for (b, n) in batches.iter().zip(&sizes) {
            prop_assert!(*b >= 1, "starved platform");
            prop_assert!(b <= n, "batch larger than shard");
        }
        // Allocation roughly follows shares: no platform exceeds its
        // proportional share by more than 1 + rounding.
        let total: usize = sizes.iter().sum();
        for (b, n) in batches.iter().zip(&sizes) {
            let share = global as f64 * *n as f64 / total as f64;
            prop_assert!((*b as f64) <= share.ceil() + 1.0, "batch {} vs share {}", b, share);
        }
    }

    /// A sampler visits every index exactly once per epoch.
    #[test]
    fn sampler_covers_each_epoch(n in 2usize..60, batch in 1usize..12, seed in 0u64..300) {
        prop_assume!(batch <= n && n % batch == 0);
        let mut s = BatchSampler::new(n, batch, seed);
        let mut seen = vec![0usize; n];
        for _ in 0..(n / batch) {
            for i in s.next_batch() {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    /// Image generation is shape-correct and label-balanced for any size.
    #[test]
    fn image_generation_invariants(classes in 2usize..12, n_mult in 1usize..6, seed in 0u64..200) {
        let n = classes * n_mult;
        let ds = SyntheticImages::lite(classes, seed).generate(n).unwrap();
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(ds.sample_dims(), &[3, 16, 16]);
        let hist = ds.class_histogram();
        prop_assert!(hist.iter().all(|&c| c == n_mult), "{hist:?}");
        prop_assert!(ds.features().as_slice().iter().all(|v| v.is_finite()));
    }

    /// Subset then batch equals batch of mapped indices.
    #[test]
    fn subset_consistency(n in 10usize..50, seed in 0u64..200) {
        let ds = SyntheticTabular::new(3, 4, seed).generate(n).unwrap();
        let idx: Vec<usize> = (0..n).step_by(3).collect();
        let sub = ds.subset(&idx).unwrap();
        let (direct, labels_direct) = ds.batch(&idx).unwrap();
        let all: Vec<usize> = (0..sub.len()).collect();
        let (via_sub, labels_sub) = sub.batch(&all).unwrap();
        prop_assert_eq!(direct, via_sub);
        prop_assert_eq!(labels_direct, labels_sub);
    }
}
