//! Image augmentation for `NCHW` batches.

use medsplit_tensor::{Result, Tensor, TensorError};
use rand::Rng;

fn check_nchw(t: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if t.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.rank(),
            op,
        });
    }
    let d = t.dims();
    Ok((d[0], d[1], d[2], d[3]))
}

/// Horizontally flips each image with probability `p`.
///
/// # Errors
///
/// Returns a rank error for non-`NCHW` input.
pub fn random_horizontal_flip(batch: &Tensor, p: f32, rng: &mut impl Rng) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(batch, "random_horizontal_flip")?;
    let mut out = batch.clone();
    let data = out.as_mut_slice();
    for i in 0..n {
        if rng.gen::<f32>() >= p {
            continue;
        }
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            for y in 0..h {
                let row = base + y * w;
                data[row..row + w].reverse();
            }
        }
    }
    Ok(out)
}

/// Pads each image by `pad` zeros on all sides and crops a random
/// `H×W` window back out (the standard CIFAR augmentation).
///
/// # Errors
///
/// Returns a rank error for non-`NCHW` input.
pub fn random_crop(batch: &Tensor, pad: usize, rng: &mut impl Rng) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(batch, "random_crop")?;
    if pad == 0 {
        return Ok(batch.clone());
    }
    let src = batch.as_slice();
    let mut out = Tensor::zeros(batch.shape().clone());
    let dst = out.as_mut_slice();
    for i in 0..n {
        // Offset of the crop window inside the padded image.
        let oy = rng.gen_range(0..=2 * pad) as isize - pad as isize;
        let ox = rng.gen_range(0..=2 * pad) as isize - pad as isize;
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            for y in 0..h {
                let sy = y as isize + oy;
                if sy < 0 || sy >= h as isize {
                    continue; // stays zero
                }
                for x in 0..w {
                    let sx = x as isize + ox;
                    if sx < 0 || sx >= w as isize {
                        continue;
                    }
                    dst[base + y * w + x] = src[base + sy as usize * w + sx as usize];
                }
            }
        }
    }
    Ok(out)
}

/// Adds i.i.d. uniform noise in `[-sigma, sigma]` to every pixel.
///
/// # Errors
///
/// Never fails for finite inputs; returns tensor errors otherwise.
pub fn add_noise(batch: &Tensor, sigma: f32, rng: &mut impl Rng) -> Result<Tensor> {
    let mut out = batch.clone();
    for v in out.as_mut_slice() {
        *v += sigma * (rng.gen::<f32>() * 2.0 - 1.0);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsplit_tensor::init::rng_from_seed;

    #[test]
    fn flip_probability_one_reverses_rows() {
        let mut rng = rng_from_seed(0);
        let batch = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]).unwrap();
        let flipped = random_horizontal_flip(&batch, 1.0, &mut rng).unwrap();
        assert_eq!(flipped.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
        // Flip twice = identity.
        let twice = random_horizontal_flip(&flipped, 1.0, &mut rng).unwrap();
        assert_eq!(twice, batch);
    }

    #[test]
    fn flip_probability_zero_is_identity() {
        let mut rng = rng_from_seed(1);
        let batch = Tensor::arange(8).reshape([2, 1, 2, 2]).unwrap();
        assert_eq!(random_horizontal_flip(&batch, 0.0, &mut rng).unwrap(), batch);
    }

    #[test]
    fn crop_zero_pad_is_identity() {
        let mut rng = rng_from_seed(2);
        let batch = Tensor::arange(16).reshape([1, 1, 4, 4]).unwrap();
        assert_eq!(random_crop(&batch, 0, &mut rng).unwrap(), batch);
    }

    #[test]
    fn crop_preserves_shape_and_values_subset() {
        let mut rng = rng_from_seed(3);
        let batch = Tensor::ones([2, 3, 8, 8]);
        let cropped = random_crop(&batch, 2, &mut rng).unwrap();
        assert_eq!(cropped.shape(), batch.shape());
        // Values are either original (1.0) or zero padding.
        assert!(cropped.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        // Most of the image survives.
        assert!(cropped.sum() > 0.5 * batch.sum());
    }

    #[test]
    fn noise_is_bounded() {
        let mut rng = rng_from_seed(4);
        let batch = Tensor::zeros([1, 1, 4, 4]);
        let noisy = add_noise(&batch, 0.1, &mut rng).unwrap();
        assert!(noisy.as_slice().iter().all(|&v| v.abs() <= 0.1));
        assert!(noisy.norm() > 0.0);
    }

    #[test]
    fn rank_validation() {
        let mut rng = rng_from_seed(5);
        assert!(random_horizontal_flip(&Tensor::ones([2, 2]), 1.0, &mut rng).is_err());
        assert!(random_crop(&Tensor::ones([2, 2]), 1, &mut rng).is_err());
    }
}
