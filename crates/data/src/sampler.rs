//! Minibatch sampling, including the paper's proportional minibatch
//! policy for data-imbalance mitigation.

use medsplit_tensor::init::{rng_from_seed, StdRng};
use rand::seq::SliceRandom;

use crate::dataset::InMemoryDataset;

/// How per-platform minibatch sizes are chosen.
///
/// The paper (§II, last paragraph): *"the minibatch size in each platform
/// can be adjusted as the proportion of the amount of local data in each
/// platform"* — that is [`Proportional`](MinibatchPolicy::Proportional).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinibatchPolicy {
    /// Every platform uses the same minibatch size.
    Fixed(usize),
    /// Platform `k` uses `s_k = max(1, round(global · n_k / Σ n))`, so one
    /// global round touches each shard proportionally to its size.
    Proportional {
        /// Total minibatch size across all platforms per round.
        global: usize,
    },
}

impl MinibatchPolicy {
    /// Computes the per-platform minibatch sizes for shards of the given
    /// sizes. Each is at least 1 and no larger than its shard.
    pub fn sizes(&self, shard_sizes: &[usize]) -> Vec<usize> {
        match *self {
            MinibatchPolicy::Fixed(s) => shard_sizes.iter().map(|&n| s.max(1).min(n.max(1))).collect(),
            MinibatchPolicy::Proportional { global } => {
                let total: usize = shard_sizes.iter().sum();
                shard_sizes
                    .iter()
                    .map(|&n| {
                        let share = (global as f64 * n as f64 / total.max(1) as f64).round() as usize;
                        share.max(1).min(n.max(1))
                    })
                    .collect()
            }
        }
    }
}

/// An epoch-based shuffled minibatch sampler over one platform's shard.
///
/// Yields index batches; reshuffles at each epoch boundary. Deterministic
/// for a given seed.
#[derive(Debug)]
pub struct BatchSampler {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    epoch: usize,
    rng: StdRng,
}

impl BatchSampler {
    /// Creates a sampler over `n` samples with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, seed: u64) -> Self {
        assert!(n > 0, "cannot sample from an empty shard");
        assert!(batch_size > 0, "batch size must be positive");
        let mut rng = rng_from_seed(seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        BatchSampler {
            order,
            batch_size: batch_size.min(n),
            cursor: 0,
            epoch: 0,
            rng,
        }
    }

    /// The effective batch size (clamped to the shard size).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of completed epochs.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Returns the next batch of indices, wrapping (and reshuffling) at
    /// epoch boundaries. Every returned batch has exactly `batch_size`
    /// elements.
    pub fn next_batch(&mut self) -> Vec<usize> {
        let n = self.order.len();
        if self.cursor + self.batch_size > n {
            self.order.shuffle(&mut self.rng);
            self.cursor = 0;
            self.epoch += 1;
        }
        let batch = self.order[self.cursor..self.cursor + self.batch_size].to_vec();
        self.cursor += self.batch_size;
        batch
    }

    /// Fetches the next batch directly from a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the sampler was built for a different dataset size.
    pub fn next_from(&mut self, dataset: &InMemoryDataset) -> (medsplit_tensor::Tensor, Vec<usize>) {
        assert_eq!(dataset.len(), self.order.len(), "sampler/dataset size mismatch");
        let idx = self.next_batch();
        dataset.batch(&idx).expect("indices in range by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticTabular;

    #[test]
    fn fixed_policy_clamps() {
        let p = MinibatchPolicy::Fixed(32);
        assert_eq!(p.sizes(&[100, 10, 40]), vec![32, 10, 32]);
    }

    #[test]
    fn proportional_policy_matches_paper_formula() {
        let p = MinibatchPolicy::Proportional { global: 64 };
        let sizes = p.sizes(&[600, 300, 100]);
        assert_eq!(sizes, vec![38, 19, 6]);
        // Proportionality: sizes ≈ global · share.
        let total: usize = sizes.iter().sum();
        assert!((total as i64 - 64).abs() <= 2);
    }

    #[test]
    fn proportional_policy_never_starves() {
        let p = MinibatchPolicy::Proportional { global: 8 };
        let sizes = p.sizes(&[1000, 1]);
        assert_eq!(sizes[1], 1, "tiny platform must still participate");
        assert!(sizes[0] >= 7);
    }

    #[test]
    fn sampler_covers_every_index_each_epoch() {
        let mut s = BatchSampler::new(10, 5, 0);
        let mut seen: Vec<usize> = Vec::new();
        seen.extend(s.next_batch());
        seen.extend(s.next_batch());
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(s.epoch(), 0);
        let _ = s.next_batch();
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn sampler_handles_non_divisible_sizes() {
        let mut s = BatchSampler::new(7, 3, 1);
        for _ in 0..10 {
            assert_eq!(s.next_batch().len(), 3);
        }
    }

    #[test]
    fn sampler_clamps_batch_to_shard() {
        let s = BatchSampler::new(3, 10, 2);
        assert_eq!(s.batch_size(), 3);
    }

    #[test]
    fn sampler_deterministic() {
        let mut a = BatchSampler::new(20, 4, 3);
        let mut b = BatchSampler::new(20, 4, 3);
        for _ in 0..8 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    #[should_panic(expected = "empty shard")]
    fn sampler_rejects_empty() {
        let _ = BatchSampler::new(0, 1, 0);
    }

    #[test]
    fn next_from_returns_matching_batch() {
        let ds = SyntheticTabular::new(2, 3, 0).generate(10).unwrap();
        let mut s = BatchSampler::new(10, 4, 5);
        let (f, l) = s.next_from(&ds);
        assert_eq!(f.dims(), &[4, 3]);
        assert_eq!(l.len(), 4);
    }
}
