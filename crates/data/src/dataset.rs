//! In-memory labelled datasets.

use medsplit_tensor::{Result, Tensor, TensorError};

/// A labelled, in-memory dataset: one big feature tensor whose leading
/// axis is the sample index, plus integer class labels.
///
/// This is the unit the partitioner splits across platforms; each platform
/// ends up owning its own `InMemoryDataset` (the "local data" of the
/// paper) that never leaves it.
#[derive(Debug, Clone, PartialEq)]
pub struct InMemoryDataset {
    features: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl InMemoryDataset {
    /// Creates a dataset.
    ///
    /// # Errors
    ///
    /// Returns a length error if `labels.len()` does not match the leading
    /// dimension of `features`, or an index error if any label is `>=
    /// num_classes`.
    pub fn new(features: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Self> {
        let n = features.dims().first().copied().unwrap_or(0);
        if labels.len() != n {
            return Err(TensorError::LengthMismatch {
                expected: n,
                actual: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(TensorError::IndexOutOfBounds {
                index: bad,
                dim: num_classes,
            });
        }
        Ok(InMemoryDataset {
            features,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The full feature tensor (leading axis = sample).
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-sample feature dimensions (without the batch axis).
    pub fn sample_dims(&self) -> &[usize] {
        &self.features.dims()[1..]
    }

    /// Gathers the samples at `indices` into a `(features, labels)` batch.
    ///
    /// # Errors
    ///
    /// Returns an index error for out-of-range indices.
    pub fn batch(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>)> {
        let feats = self.features.index_select0(indices)?;
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Ok((feats, labels))
    }

    /// Builds a new dataset from a subset of sample indices.
    ///
    /// # Errors
    ///
    /// Returns an index error for out-of-range indices.
    pub fn subset(&self, indices: &[usize]) -> Result<InMemoryDataset> {
        let (features, labels) = self.batch(indices)?;
        InMemoryDataset::new(features, labels, self.num_classes)
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> InMemoryDataset {
        let features = Tensor::arange(12).reshape([4, 3]).unwrap();
        InMemoryDataset::new(features, vec![0, 1, 0, 2], 3).unwrap()
    }

    #[test]
    fn construction_validation() {
        let f = Tensor::zeros([3, 2]);
        assert!(InMemoryDataset::new(f.clone(), vec![0, 1], 2).is_err()); // wrong len
        assert!(InMemoryDataset::new(f.clone(), vec![0, 1, 2], 2).is_err()); // label oob
        assert!(InMemoryDataset::new(f, vec![0, 1, 1], 2).is_ok());
    }

    #[test]
    fn batch_gathers_rows() {
        let d = toy();
        let (f, l) = d.batch(&[2, 0]).unwrap();
        assert_eq!(f.dims(), &[2, 3]);
        assert_eq!(f.as_slice(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
        assert_eq!(l, vec![0, 0]);
        assert!(d.batch(&[9]).is_err());
    }

    #[test]
    fn subset_is_self_contained() {
        let d = toy();
        let s = d.subset(&[1, 3]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[1, 2]);
        assert_eq!(s.num_classes(), 3);
        assert_eq!(s.sample_dims(), &[3]);
    }

    #[test]
    fn histogram() {
        let d = toy();
        assert_eq!(d.class_histogram(), vec![2, 1, 1]);
        assert!(!d.is_empty());
        assert_eq!(d.len(), 4);
    }
}
