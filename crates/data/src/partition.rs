//! Partitioning a dataset across geo-distributed platforms.
//!
//! The paper's setting: each medical platform owns a disjoint shard of the
//! global data, with potentially very different shard sizes (the
//! data-imbalance problem §II) and, realistically, different class mixes
//! (non-IID). This module provides IID sharding, Dirichlet non-IID
//! sharding, and power-law size imbalance — all conserving every sample
//! exactly once.

use medsplit_tensor::{init::rng_from_seed, Result, TensorError};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::InMemoryDataset;

/// How the global dataset is distributed across platforms.
#[derive(Debug, Clone, PartialEq)]
pub enum Partition {
    /// Uniform random shards of (nearly) equal size.
    Iid,
    /// Shard sizes proportional to `k^-alpha` (platform `k`, 1-based) —
    /// the paper's "amount of data in each platform is not equal".
    PowerLaw {
        /// Power-law exponent; 0 = equal sizes, larger = more skew.
        alpha: f32,
    },
    /// Class mixture per platform drawn from a Dirichlet distribution;
    /// small `alpha` = highly non-IID label skew.
    Dirichlet {
        /// Dirichlet concentration parameter.
        alpha: f32,
    },
}

/// Splits `dataset` into `platforms` disjoint shards according to `how`.
///
/// Every sample lands in exactly one shard and every shard is non-empty
/// (sizes are clamped so no platform starves, which would deadlock a
/// training round).
///
/// # Errors
///
/// Returns a tensor error if `platforms == 0` or `platforms >
/// dataset.len()`.
pub fn partition(
    dataset: &InMemoryDataset,
    platforms: usize,
    how: &Partition,
    seed: u64,
) -> Result<Vec<InMemoryDataset>> {
    if platforms == 0 || platforms > dataset.len() {
        return Err(TensorError::Numerical(format!(
            "cannot split {} samples across {platforms} platforms",
            dataset.len()
        )));
    }
    let mut rng = rng_from_seed(seed);
    let n = dataset.len();
    let assignment: Vec<Vec<usize>> = match how {
        Partition::Iid => {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            chunk_by_sizes(&idx, &equal_sizes(n, platforms))
        }
        Partition::PowerLaw { alpha } => {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            chunk_by_sizes(&idx, &power_law_sizes(n, platforms, *alpha))
        }
        Partition::Dirichlet { alpha } => dirichlet_assignment(dataset, platforms, *alpha, &mut rng),
    };
    assignment.iter().map(|idx| dataset.subset(idx)).collect()
}

/// Nearly-equal sizes summing to `n`.
fn equal_sizes(n: usize, k: usize) -> Vec<usize> {
    let base = n / k;
    let rem = n % k;
    (0..k).map(|i| base + usize::from(i < rem)).collect()
}

/// Sizes proportional to `(i+1)^-alpha`, each at least 1, summing to `n`.
pub(crate) fn power_law_sizes(n: usize, k: usize, alpha: f32) -> Vec<usize> {
    let weights: Vec<f64> = (0..k).map(|i| ((i + 1) as f64).powf(-alpha as f64)).collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * n as f64).floor() as usize)
        .collect();
    for s in &mut sizes {
        *s = (*s).max(1);
    }
    // Fix the rounding drift on the largest shard.
    let assigned: usize = sizes.iter().sum();
    if assigned > n {
        let mut over = assigned - n;
        for s in sizes.iter_mut() {
            let take = (*s - 1).min(over);
            *s -= take;
            over -= take;
            if over == 0 {
                break;
            }
        }
    } else {
        sizes[0] += n - assigned;
    }
    sizes
}

fn chunk_by_sizes(idx: &[usize], sizes: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::with_capacity(sizes.len());
    let mut start = 0;
    for &s in sizes {
        out.push(idx[start..start + s].to_vec());
        start += s;
    }
    out
}

/// Samples a Dirichlet(alpha) vector via normalised Gamma draws
/// (Marsaglia–Tsang would be overkill; for alpha values used here a
/// simple rejection-free approximation over exponentials suffices when
/// alpha is small, so we use the standard sum-of-Gammas with
/// Johnk/Best-style sampling for alpha < 1 and shape-shift for alpha >= 1).
fn sample_gamma(alpha: f32, rng: &mut impl Rng) -> f64 {
    let a = alpha as f64;
    if a < 1.0 {
        // Johnk's method boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f64 = rng.gen::<f64>().max(1e-12);
        return sample_gamma(alpha + 1.0, rng) * u.powf(1.0 / a);
    }
    // Marsaglia & Tsang.
    let d = a - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = {
            // Box–Muller normal.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(1e-12);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

fn dirichlet_assignment(
    dataset: &InMemoryDataset,
    platforms: usize,
    alpha: f32,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    let classes = dataset.num_classes();
    // Group sample indices by class, shuffled.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for (i, &l) in dataset.labels().iter().enumerate() {
        by_class[l].push(i);
    }
    for c in &mut by_class {
        c.shuffle(rng);
    }
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); platforms];
    for class_idx in by_class {
        if class_idx.is_empty() {
            continue;
        }
        // Dirichlet proportions for this class across platforms.
        let gammas: Vec<f64> = (0..platforms)
            .map(|_| sample_gamma(alpha, rng).max(1e-12))
            .collect();
        let total: f64 = gammas.iter().sum();
        let mut start = 0usize;
        for (p, g) in gammas.iter().enumerate() {
            let count = if p == platforms - 1 {
                class_idx.len() - start
            } else {
                ((g / total) * class_idx.len() as f64).round() as usize
            };
            let count = count.min(class_idx.len() - start);
            shards[p].extend_from_slice(&class_idx[start..start + count]);
            start += count;
        }
    }
    // Guarantee non-empty shards: steal one sample from the largest.
    while let Some(empty) = shards.iter().position(Vec::is_empty) {
        let largest = (0..platforms)
            .max_by_key(|&p| shards[p].len())
            .expect("non-zero platforms");
        let moved = shards[largest].pop().expect("largest shard non-empty");
        shards[empty].push(moved);
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticTabular;

    fn dataset(n: usize) -> InMemoryDataset {
        SyntheticTabular::new(4, 3, 0).generate(n).unwrap()
    }

    fn conservation(shards: &[InMemoryDataset], total: usize) {
        let sum: usize = shards.iter().map(InMemoryDataset::len).sum();
        assert_eq!(sum, total, "samples lost or duplicated");
        assert!(shards.iter().all(|s| !s.is_empty()), "empty shard");
    }

    #[test]
    fn iid_split_equal_sizes() {
        let ds = dataset(103);
        let shards = partition(&ds, 4, &Partition::Iid, 0).unwrap();
        conservation(&shards, 103);
        let sizes: Vec<usize> = shards.iter().map(InMemoryDataset::len).collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
    }

    #[test]
    fn power_law_is_skewed_and_conserving() {
        let ds = dataset(200);
        let shards = partition(&ds, 4, &Partition::PowerLaw { alpha: 1.5 }, 1).unwrap();
        conservation(&shards, 200);
        let sizes: Vec<usize> = shards.iter().map(InMemoryDataset::len).collect();
        assert!(sizes[0] > 2 * sizes[3], "not skewed: {sizes:?}");
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "not sorted: {sizes:?}");
    }

    #[test]
    fn power_law_alpha_zero_is_equalish() {
        let sizes = power_law_sizes(100, 4, 0.0);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(sizes.iter().all(|&s| (24..=28).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn power_law_tiny_n() {
        let sizes = power_law_sizes(4, 4, 3.0);
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn dirichlet_low_alpha_is_label_skewed() {
        let ds = dataset(400);
        let shards = partition(&ds, 4, &Partition::Dirichlet { alpha: 0.1 }, 2).unwrap();
        conservation(&shards, 400);
        // With alpha = 0.1 at least one platform should be dominated by a
        // single class (>60% of its samples).
        let dominated = shards.iter().any(|s| {
            let hist = s.class_histogram();
            let max = *hist.iter().max().unwrap();
            max as f32 / s.len() as f32 > 0.6
        });
        assert!(dominated, "expected label skew");
    }

    #[test]
    fn dirichlet_high_alpha_is_balanced() {
        let ds = dataset(400);
        let shards = partition(&ds, 4, &Partition::Dirichlet { alpha: 100.0 }, 3).unwrap();
        conservation(&shards, 400);
        for s in &shards {
            let hist = s.class_histogram();
            let max = *hist.iter().max().unwrap() as f32;
            let min = *hist.iter().min().unwrap() as f32;
            assert!(max / min.max(1.0) < 3.0, "unexpected skew: {hist:?}");
        }
    }

    #[test]
    fn disjointness() {
        // Partition a dataset with distinguishable rows and check no row
        // appears twice across shards.
        let ds = dataset(60);
        let shards = partition(&ds, 3, &Partition::Iid, 4).unwrap();
        let mut seen = std::collections::HashSet::new();
        for s in &shards {
            for i in 0..s.len() {
                let row: Vec<u32> = s
                    .batch(&[i])
                    .unwrap()
                    .0
                    .as_slice()
                    .iter()
                    .map(|f| f.to_bits())
                    .collect();
                assert!(seen.insert(row), "duplicate sample across shards");
            }
        }
    }

    #[test]
    fn partition_validation() {
        let ds = dataset(5);
        assert!(partition(&ds, 0, &Partition::Iid, 0).is_err());
        assert!(partition(&ds, 6, &Partition::Iid, 0).is_err());
        assert!(partition(&ds, 5, &Partition::Iid, 0).is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = dataset(50);
        let a = partition(&ds, 3, &Partition::Dirichlet { alpha: 0.5 }, 9).unwrap();
        let b = partition(&ds, 3, &Partition::Dirichlet { alpha: 0.5 }, 9).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn gamma_sampler_moments() {
        let mut rng = rng_from_seed(0);
        for &alpha in &[0.5f32, 1.0, 4.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| sample_gamma(alpha, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - alpha as f64).abs() < 0.15 * alpha as f64 + 0.05,
                "alpha {alpha}: mean {mean}"
            );
        }
    }
}
