//! Synthetic dataset generators.
//!
//! CIFAR-10/100 binaries are not available offline, so the evaluation runs
//! on seeded synthetic substitutes with **identical tensor shapes** (so all
//! byte accounting is exact) and a controllable class structure: each class
//! has a smooth random prototype image, and each sample is its class
//! prototype plus low-frequency instance deformation and pixel noise. The
//! task is learnable but not trivial, harder with 100 classes than with 10
//! — which is all the *shape* of the paper's Fig. 4 depends on.

use medsplit_tensor::{init::rng_from_seed, Result, Tensor};
use rand::Rng;

use crate::dataset::InMemoryDataset;

/// Generator for CIFAR-like synthetic image classification data.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticImages {
    /// Number of classes (10 for the CIFAR-10 stand-in, 100 for
    /// CIFAR-100).
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height and width.
    pub hw: usize,
    /// Standard deviation of the per-pixel noise added to each sample.
    pub noise: f32,
    /// Maximum per-sample circular translation (pixels) applied to the
    /// class prototype. Shift jitter forces models to learn
    /// translation-tolerant features, giving realistic (slow) convergence.
    pub max_shift: usize,
    /// RNG seed; the same seed always produces the same dataset.
    pub seed: u64,
}

impl SyntheticImages {
    /// A CIFAR-10-like generator: 10 classes of 3×32×32 images.
    pub fn cifar10_like(seed: u64) -> Self {
        SyntheticImages {
            num_classes: 10,
            channels: 3,
            hw: 32,
            noise: 1.0,
            max_shift: 6,
            seed,
        }
    }

    /// A CIFAR-100-like generator: 100 classes of 3×32×32 images.
    pub fn cifar100_like(seed: u64) -> Self {
        SyntheticImages {
            num_classes: 100,
            channels: 3,
            hw: 32,
            noise: 1.0,
            max_shift: 6,
            seed,
        }
    }

    /// A scaled-down variant matching the `lite` model input (3×16×16),
    /// used by the trained (as opposed to analytic) experiments. The noise
    /// level is chosen so a lite model needs a few hundred minibatch
    /// updates to converge — enough rounds for the accuracy-vs-bytes
    /// curves of Fig. 4 to separate.
    pub fn lite(num_classes: usize, seed: u64) -> Self {
        SyntheticImages {
            num_classes,
            channels: 3,
            hw: 16,
            noise: 1.0,
            max_shift: 4,
            seed,
        }
    }

    /// Smooth random field: sum of a few random 2-D cosine waves, giving
    /// CIFAR-like low-frequency structure.
    fn prototype(&self, rng: &mut impl Rng) -> Vec<f32> {
        let (c, hw) = (self.channels, self.hw);
        let mut img = vec![0.0f32; c * hw * hw];
        for ch in 0..c {
            for _ in 0..4 {
                let fx = rng.gen_range(0.5..3.0) * std::f32::consts::PI / hw as f32;
                let fy = rng.gen_range(0.5..3.0) * std::f32::consts::PI / hw as f32;
                let phase_x: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
                let phase_y: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
                let amp: f32 = rng.gen_range(0.3..0.8);
                for y in 0..hw {
                    for x in 0..hw {
                        img[ch * hw * hw + y * hw + x] +=
                            amp * (fx * x as f32 + phase_x).cos() * (fy * y as f32 + phase_y).cos();
                    }
                }
            }
        }
        img
    }

    /// Generates `n` samples with approximately equal class frequencies
    /// (labels cycle through the classes).
    ///
    /// # Errors
    ///
    /// Propagates tensor-construction errors (none occur for valid
    /// configurations).
    pub fn generate(&self, n: usize) -> Result<InMemoryDataset> {
        let mut rng = rng_from_seed(self.seed);
        let protos: Vec<Vec<f32>> = (0..self.num_classes).map(|_| self.prototype(&mut rng)).collect();
        let sample_len = self.channels * self.hw * self.hw;
        let mut data = Vec::with_capacity(n * sample_len);
        let mut labels = Vec::with_capacity(n);
        let (c, hw) = (self.channels, self.hw);
        for i in 0..n {
            let class = i % self.num_classes;
            labels.push(class);
            let proto = &protos[class];
            // Instance-level jitter: global intensity, circular spatial
            // shift, and pixel noise.
            let gain: f32 = 1.0 + 0.15 * (rng.gen::<f32>() - 0.5);
            let (dy, dx) = if self.max_shift == 0 {
                (0, 0)
            } else {
                (
                    rng.gen_range(0..=2 * self.max_shift),
                    rng.gen_range(0..=2 * self.max_shift),
                )
            };
            for ch in 0..c {
                for y in 0..hw {
                    let sy = (y + dy) % hw;
                    for x in 0..hw {
                        let sx = (x + dx) % hw;
                        let p = proto[ch * hw * hw + sy * hw + sx];
                        let eps: f32 = rng.gen::<f32>() * 2.0 - 1.0;
                        data.push(gain * p + self.noise * eps);
                    }
                }
            }
        }
        let features = Tensor::from_vec(data, [n, self.channels, self.hw, self.hw])?;
        InMemoryDataset::new(features, labels, self.num_classes)
    }

    /// Generates a disjoint train/test pair (`n_train` and `n_test`
    /// samples) sharing the same class prototypes.
    ///
    /// # Errors
    ///
    /// Propagates tensor-construction errors.
    pub fn generate_split(
        &self,
        n_train: usize,
        n_test: usize,
    ) -> Result<(InMemoryDataset, InMemoryDataset)> {
        let all = self.generate(n_train + n_test)?;
        // Interleave so both splits see all classes: even positions train,
        // odd positions test, padded from the tail.
        let train_idx: Vec<usize> = (0..n_train).collect();
        let test_idx: Vec<usize> = (n_train..n_train + n_test).collect();
        Ok((all.subset(&train_idx)?, all.subset(&test_idx)?))
    }
}

/// Generator for linearly-separable-ish tabular data (two-moons style
/// Gaussian blobs), used by the MLP ablations.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTabular {
    /// Number of classes.
    pub num_classes: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Class-centre separation relative to noise.
    pub separation: f32,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticTabular {
    /// A default generator with moderate class overlap.
    pub fn new(num_classes: usize, dim: usize, seed: u64) -> Self {
        SyntheticTabular {
            num_classes,
            dim,
            separation: 2.0,
            seed,
        }
    }

    /// Generates `n` samples (labels cycle through classes).
    ///
    /// # Errors
    ///
    /// Propagates tensor-construction errors.
    pub fn generate(&self, n: usize) -> Result<InMemoryDataset> {
        let mut rng = rng_from_seed(self.seed);
        let centres: Vec<Vec<f32>> = (0..self.num_classes)
            .map(|_| {
                (0..self.dim)
                    .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * self.separation)
                    .collect()
            })
            .collect();
        let mut data = Vec::with_capacity(n * self.dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.num_classes;
            labels.push(class);
            for &centre in &centres[class] {
                let eps: f32 = rng.gen::<f32>() * 2.0 - 1.0;
                data.push(centre + eps);
            }
        }
        let features = Tensor::from_vec(data, [n, self.dim])?;
        InMemoryDataset::new(features, labels, self.num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_cifar() {
        let ds = SyntheticImages::cifar10_like(0).generate(20).unwrap();
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.sample_dims(), &[3, 32, 32]);
        assert_eq!(ds.num_classes(), 10);
        // Per-sample byte size matches real CIFAR f32 tensors exactly.
        assert_eq!(ds.features().numel() / ds.len(), 3 * 32 * 32);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let ds = SyntheticImages::lite(4, 1).generate(8).unwrap();
        assert_eq!(ds.labels(), &[0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(ds.class_histogram(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticImages::lite(3, 7).generate(6).unwrap();
        let b = SyntheticImages::lite(3, 7).generate(6).unwrap();
        assert_eq!(a, b);
        let c = SyntheticImages::lite(3, 8).generate(6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn same_class_samples_are_similar_but_not_identical() {
        let ds = SyntheticImages::lite(2, 3).generate(8).unwrap();
        let (f, l) = ds.batch(&[0, 2, 1]).unwrap();
        assert_eq!(l, vec![0, 0, 1]);
        let a = f.slice0(0, 1).unwrap();
        let b = f.slice0(1, 1).unwrap();
        let c = f.slice0(2, 1).unwrap();
        let same = a.try_sub(&b).unwrap().norm();
        let diff = a.try_sub(&c).unwrap().norm();
        assert!(same > 0.0, "same-class duplicates");
        assert!(diff > same, "classes not separated: same {same} diff {diff}");
    }

    #[test]
    fn split_shares_prototypes() {
        let gen = SyntheticImages::lite(5, 4);
        let (train, test) = gen.generate_split(20, 10).unwrap();
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
        assert_eq!(train.num_classes(), 5);
        // Both sides contain every class.
        assert!(train.class_histogram().iter().all(|&c| c > 0));
        assert!(test.class_histogram().iter().all(|&c| c > 0));
    }

    #[test]
    fn tabular_generator_separates_classes() {
        let ds = SyntheticTabular::new(3, 8, 5).generate(30).unwrap();
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.sample_dims(), &[8]);
        assert_eq!(ds.class_histogram(), vec![10, 10, 10]);
    }

    #[test]
    fn cifar100_like_has_100_classes() {
        let gen = SyntheticImages::cifar100_like(0);
        assert_eq!(gen.num_classes, 100);
        let ds = gen.generate(200).unwrap();
        assert_eq!(ds.class_histogram(), vec![2; 100]);
    }
}
