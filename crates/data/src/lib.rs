//! # medsplit-data
//!
//! Datasets for the medsplit evaluation: seeded synthetic substitutes for
//! CIFAR-10/100 (same tensor shapes, controllable difficulty — see
//! DESIGN.md §5 for why this substitution preserves the paper's measured
//! quantities), partitioning across geo-distributed platforms (IID,
//! Dirichlet non-IID, power-law imbalance), and minibatch sampling
//! including the paper's proportional-minibatch imbalance mitigation.
//!
//! ```
//! use medsplit_data::{partition, MinibatchPolicy, Partition, SyntheticImages};
//!
//! let dataset = SyntheticImages::lite(10, 42).generate(120)?;
//! let shards = partition(&dataset, 4, &Partition::PowerLaw { alpha: 1.0 }, 7)?;
//! let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
//! let batches = MinibatchPolicy::Proportional { global: 32 }.sizes(&sizes);
//! assert_eq!(batches.len(), 4);
//! # Ok::<(), medsplit_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

pub mod augment;
mod dataset;
mod partition;
mod sampler;
mod synth;

pub use dataset::InMemoryDataset;
pub use partition::{partition, Partition};
pub use sampler::{BatchSampler, MinibatchPolicy};
pub use synth::{SyntheticImages, SyntheticTabular};
