//! `medsplit-serve`: split-inference serving for the geo-distributed
//! medical platform simulation.
//!
//! Training (the other crates) answers *how the model is learned without
//! moving patient data*; this crate answers *how the learned model is
//! used* under the same constraint. A deployed platform keeps `L1` local,
//! runs it over an incoming query, and ships the (possibly noised)
//! activations to the central server, which batches requests from all
//! platforms, runs `L2..Lk` forward-only, and returns logits — raw
//! features still never leave the hospital.
//!
//! The pieces:
//!
//! - [`wire`]: request/response payload formats over the simnet
//!   [`Envelope`](medsplit_simnet::Envelope), with their own
//!   [`MessageKind`](medsplit_simnet::MessageKind)s so serving traffic is
//!   accounted separately from training.
//! - [`batcher`]: a pure dynamic-batching state machine (flush on size or
//!   age) with bounded-queue admission control.
//! - [`runtime`]: the thread-per-node serving loop with simulated-time
//!   latency accounting, deadlines, and explicit rejection/timeout
//!   responses.
//! - [`metrics`]: p50/p95/p99 latency summaries and per-request byte
//!   accounting.

#![warn(missing_docs)]

pub mod batcher;
pub mod metrics;
pub mod runtime;
pub mod wire;

pub use batcher::{Admission, BatchEntry, DynamicBatcher};
pub use metrics::{LatencySummary, ServeReport};
pub use runtime::{serve_threaded, ClientRecord, ServeConfig, ServeOutcome};
pub use wire::{
    decode_request, decode_response, decode_routed_request, encode_request, encode_response,
    encode_response_from, encode_routed_request, InferRequest, InferResponse, InferStatus, RoutedRequest,
};
