//! Thread-per-node serving runtime over the simulated network.
//!
//! Mirrors the training runtime (`medsplit_core::threaded`): every
//! platform and the server run on their own OS thread and communicate
//! exclusively through a shared [`Transport`]. Clients submit requests
//! open-loop at a configured rate; the server decodes activation
//! envelopes, batches them with [`DynamicBatcher`], runs `L2..Lk`
//! forward-only, and answers every request explicitly — logits, a
//! rejection, or a timeout.
//!
//! Timing is simulated: requests carry their submission time, the server
//! reconstructs arrival times from the topology's link model, serving
//! advances a single-executor busy clock (`batch_setup_s` +
//! `per_item_s·n` per batch), and clients compute end-to-end latency from
//! the served timestamp plus the downlink transfer time. Because the
//! clients' streams interleave arbitrarily in wall-clock time, the server
//! first collects all requests and then replays them in simulated-arrival
//! order (a discrete-event simulation), so batch composition, admission
//! decisions, and every reported latency are deterministic — wall-clock
//! thread scheduling never affects the results.

use std::time::Duration;

use medsplit_core::{Platform, Result, SplitError, SplitServer, WireCodec};
use medsplit_simnet::threaded::run_per_node;
use medsplit_simnet::{Envelope, MessageKind, NodeId, StarTopology, StatsSnapshot, Transport};
use medsplit_tensor::Tensor;

use crate::batcher::{Admission, BatchEntry, DynamicBatcher};
use crate::metrics::{LatencySummary, ServeReport};
use crate::wire::{decode_request, decode_response, encode_request, encode_response, InferStatus};

/// How long a node thread waits on an empty inbox before giving up —
/// the shared, env-overridable constant from
/// [`medsplit_simnet::recv_timeout_default`].
fn recv_timeout() -> Duration {
    medsplit_simnet::recv_timeout_default()
}

/// Serving-runtime parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a batch when this many requests are pending.
    pub max_batch: usize,
    /// Flush a batch when the oldest pending request has waited this long
    /// (simulated seconds; `INFINITY` = flush on size only).
    pub max_wait_s: f64,
    /// Admission-control bound on the pending queue; requests beyond it
    /// are rejected.
    pub queue_capacity: usize,
    /// Per-request deadline relative to submission (simulated seconds;
    /// `INFINITY` = none). Requests served after their deadline get a
    /// timeout response instead of logits.
    pub deadline_s: f64,
    /// Open-loop request rate *per platform* (requests per simulated
    /// second).
    pub offered_rps: f64,
    /// Fixed server cost per batch (kernel launch / scheduling overhead).
    pub batch_setup_s: f64,
    /// Server cost per queued request in a batch.
    pub per_item_s: f64,
    /// Wire codec for activations and logits.
    pub codec: WireCodec,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_wait_s: 0.010,
            queue_capacity: 64,
            deadline_s: f64::INFINITY,
            offered_rps: 100.0,
            batch_setup_s: 0.002,
            per_item_s: 0.001,
            codec: WireCodec::F32,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<()> {
        if self.max_batch == 0 || self.queue_capacity == 0 {
            return Err(SplitError::Config(
                "max_batch and queue_capacity must be at least 1".into(),
            ));
        }
        if self.offered_rps.is_nan() || self.offered_rps <= 0.0 {
            return Err(SplitError::Config("offered_rps must be positive".into()));
        }
        if self.max_wait_s.is_nan() || self.max_wait_s < 0.0 {
            return Err(SplitError::Config("max_wait_s must be non-negative".into()));
        }
        if self.deadline_s.is_nan() || self.deadline_s < 0.0 {
            return Err(SplitError::Config("deadline_s must be non-negative".into()));
        }
        if self.batch_setup_s < 0.0 || self.per_item_s < 0.0 {
            return Err(SplitError::Config("compute costs must be non-negative".into()));
        }
        Ok(())
    }
}

/// The client-side view of one finished request.
#[derive(Debug, Clone)]
pub struct ClientRecord {
    /// Platform that submitted the request.
    pub platform: usize,
    /// Request id (unique across the run).
    pub id: u64,
    /// Simulated submission time.
    pub submit_s: f64,
    /// Terminal status.
    pub status: InferStatus,
    /// End-to-end simulated latency (submit → response received),
    /// regardless of status: rejections and timeouts also take wire time.
    pub latency_s: f64,
    /// Logits, present iff the request completed.
    pub logits: Option<Tensor>,
}

/// Everything a serving run produces.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Aggregate latency/throughput/byte accounting.
    pub report: ServeReport,
    /// Per-request records, ordered by platform then submission.
    pub records: Vec<ClientRecord>,
    /// Raw simulated-network statistics.
    pub stats: StatsSnapshot,
}

/// A decoded request queued at the server.
struct Pending {
    platform: usize,
    id: u64,
    submit_s: f64,
    activations: Tensor,
}

enum NodeOutput {
    Client(Vec<ClientRecord>),
    Server,
}

/// Runs a full serving session: every platform submits its queries
/// open-loop at `cfg.offered_rps`, the server batches and answers, and
/// the outcome aggregates every request's fate.
///
/// `queries[p]` are platform `p`'s inputs in submission order (each a
/// feature batch for [`Platform::infer_l1`]); `platforms.len()` must
/// equal `queries.len()` and match the transport's topology.
///
/// # Errors
///
/// Returns config errors for invalid parameters, protocol errors for
/// malformed traffic, and net errors if a node times out.
pub fn serve_threaded<T: Transport>(
    mut platforms: Vec<Platform>,
    mut server: SplitServer,
    queries: Vec<Vec<Tensor>>,
    topology: &StarTopology,
    cfg: &ServeConfig,
    transport: &T,
) -> Result<ServeOutcome> {
    cfg.validate()?;
    if platforms.len() != queries.len() {
        return Err(SplitError::Config(format!(
            "{} platforms but {} query streams",
            platforms.len(),
            queries.len()
        )));
    }
    let offered: usize = queries.iter().map(Vec::len).sum();
    let client_count = platforms.len();

    type NodeFn<'a, T> = Box<dyn FnOnce(NodeId, &T) -> Result<NodeOutput> + Send + 'a>;
    let mut nodes: Vec<(NodeId, NodeFn<'_, T>)> = Vec::with_capacity(client_count + 1);
    for (platform, qs) in platforms.drain(..).zip(queries) {
        let node = platform.node();
        let f: NodeFn<'_, T> = Box::new(move |node, t: &T| {
            client_loop(platform, qs, topology, cfg, node, t).map(NodeOutput::Client)
        });
        nodes.push((node, f));
    }
    let server_cfg = cfg.clone();
    nodes.push((
        NodeId::Server,
        Box::new(move |_, t: &T| {
            server_loop(&mut server, topology, &server_cfg, client_count, t)?;
            Ok(NodeOutput::Server)
        }),
    ));

    let results = run_per_node(transport, nodes);
    let mut records = Vec::with_capacity(offered);
    for (node, result) in results {
        match result? {
            NodeOutput::Client(mut r) => {
                r.sort_by_key(|rec| rec.id);
                records.extend(r);
            }
            NodeOutput::Server => debug_assert_eq!(node, NodeId::Server),
        }
    }

    let stats = transport.stats().snapshot();
    let mut report = ServeReport {
        offered,
        completed: 0,
        rejected: 0,
        timed_out: 0,
        throttled: 0,
        latency: None,
        request_bytes: stats.bytes_of(MessageKind::InferRequest),
        response_bytes: stats.bytes_of(MessageKind::InferResponse),
        makespan_s: stats.makespan_s,
    };
    let mut latencies = Vec::new();
    for rec in &records {
        report.tally(rec.status);
        if rec.status == InferStatus::Ok {
            latencies.push(rec.latency_s);
        }
    }
    report.latency = LatencySummary::from_samples(&latencies);
    Ok(ServeOutcome {
        report,
        records,
        stats,
    })
}

/// Globally unique request id: platform index in the high bits.
fn request_id(platform: usize, seq: usize) -> u64 {
    ((platform as u64) << 32) | seq as u64
}

fn client_loop<T: Transport>(
    mut platform: Platform,
    queries: Vec<Tensor>,
    topology: &StarTopology,
    cfg: &ServeConfig,
    node: NodeId,
    transport: &T,
) -> Result<Vec<ClientRecord>> {
    let pid = platform.id();
    let downlink = topology.link(NodeId::Server, node);
    let stats = transport.stats();
    let expected = queries.len();

    for (seq, query) in queries.into_iter().enumerate() {
        // Open-loop arrivals: request `seq` is submitted at a fixed rate
        // regardless of how earlier requests fared.
        let submit_s = seq as f64 / cfg.offered_rps;
        let now = stats.clock(node);
        if submit_s > now {
            stats.advance_clock(node, submit_s - now);
        }
        let acts = platform.infer_l1(&query)?;
        let env = encode_request(
            node,
            request_id(pid, seq),
            submit_s,
            submit_s + cfg.deadline_s,
            &acts,
            cfg.codec,
        );
        transport.send(env).map_err(SplitError::from)?;
    }
    // Tell the server this client is done submitting.
    transport
        .send(Envelope::control(node, NodeId::Server, expected as u64))
        .map_err(SplitError::from)?;

    let mut records = Vec::with_capacity(expected);
    for _ in 0..expected {
        let env = transport
            .recv_timeout(node, recv_timeout())
            .map_err(SplitError::from)?;
        let resp = decode_response(&env)?;
        // End-to-end latency under the simulated clock: the response left
        // the server at `served_s` and takes the downlink transfer time.
        let received_s = resp.served_s + downlink.map_or(0.0, |l| l.transfer_time(env.wire_size()));
        records.push(ClientRecord {
            platform: pid,
            id: resp.id,
            submit_s: resp.submit_s,
            status: resp.status,
            latency_s: received_s - resp.submit_s,
            logits: resp.logits,
        });
    }
    Ok(records)
}

/// A request waiting to enter the discrete-event replay, keyed by its
/// simulated arrival time.
struct Arrival {
    arrival_s: f64,
    deadline_s: f64,
    pending: Pending,
}

fn server_loop<T: Transport>(
    server: &mut SplitServer,
    topology: &StarTopology,
    cfg: &ServeConfig,
    client_count: usize,
    transport: &T,
) -> Result<()> {
    // Phase 1 — collect. Wall-clock receive order mixes the clients'
    // streams arbitrarily (each client thread enqueues its whole stream
    // as fast as it can), so simulated arrival times arrive out of order
    // across clients. The busy clock below must only ever move forward,
    // which makes processing order part of the result — so we gather
    // everything first and replay it as a discrete-event simulation.
    let mut arrivals: Vec<Arrival> = Vec::new();
    let mut done = 0usize;
    while done < client_count {
        let env = transport
            .recv_timeout(NodeId::Server, recv_timeout())
            .map_err(SplitError::from)?;
        match env.kind {
            MessageKind::Control => done += 1,
            MessageKind::InferRequest => {
                let req = decode_request(&env)?;
                let platform = env
                    .src
                    .platform_index()
                    .ok_or_else(|| SplitError::Protocol("infer_request from server".into()))?;
                let uplink = topology.link(env.src, NodeId::Server);
                let arrival_s = req.submit_s + uplink.map_or(0.0, |l| l.transfer_time(env.wire_size()));
                arrivals.push(Arrival {
                    arrival_s,
                    deadline_s: req.deadline_s,
                    pending: Pending {
                        platform,
                        id: req.id,
                        submit_s: req.submit_s,
                        activations: req.activations,
                    },
                });
            }
            other => {
                return Err(SplitError::Protocol(format!(
                    "unexpected {other} message on the serving path"
                )));
            }
        }
    }
    // Deterministic event order: by arrival, ties broken by request id.
    arrivals.sort_by(|a, b| {
        a.arrival_s
            .partial_cmp(&b.arrival_s)
            .expect("arrival times are not NaN")
            .then(a.pending.id.cmp(&b.pending.id))
    });

    // Phase 2 — replay. A single-executor busy clock: the server is free
    // to start the next batch at `sim_now`.
    let mut batcher: DynamicBatcher<Pending> =
        DynamicBatcher::new(cfg.max_batch, cfg.max_wait_s, cfg.queue_capacity);
    let mut sim_now = 0.0f64;
    for event in arrivals {
        // Any batch whose age timer expired before this arrival was
        // flushed while the server was (logically) idle.
        while let Some(ready) = batcher.ready_at() {
            if ready > event.arrival_s {
                break;
            }
            let flush_t = sim_now.max(ready);
            sim_now = serve_batch(server, batcher.take_batch(), flush_t, cfg, transport)?;
        }
        if event.arrival_s > sim_now {
            sim_now = event.arrival_s;
        }
        let platform = event.pending.platform;
        let id = event.pending.id;
        let submit_s = event.pending.submit_s;
        match batcher.offer(event.pending, event.arrival_s, event.deadline_s) {
            Admission::Admitted => {
                if batcher.len() >= batcher.max_batch() {
                    sim_now = serve_batch(server, batcher.take_batch(), sim_now, cfg, transport)?;
                }
            }
            Admission::Rejected => {
                medsplit_telemetry::counter_add("serve.rejections", 1);
                // Backpressure is explicit: the client gets an answer
                // rather than a silent drop.
                sync_server_clock(transport, sim_now);
                let resp = encode_response(
                    NodeId::Platform(platform),
                    id,
                    submit_s,
                    sim_now,
                    InferStatus::Rejected,
                    None,
                    cfg.codec,
                );
                transport.send(resp).map_err(SplitError::from)?;
            }
        }
    }
    // Phase 3 — drain what is still queued, honouring the age timer when
    // it is finite.
    while !batcher.is_empty() {
        let ready = batcher.ready_at().expect("non-empty queue");
        let flush_t = if ready.is_finite() {
            sim_now.max(ready)
        } else {
            sim_now
        };
        sim_now = serve_batch(server, batcher.take_batch(), flush_t, cfg, transport)?;
    }
    Ok(())
}

/// Serves one batch starting at `flush_t` and returns the time the server
/// is free again. Every entry gets exactly one response: logits, or a
/// timeout if its deadline expired before the batch finished.
fn serve_batch<T: Transport>(
    server: &mut SplitServer,
    entries: Vec<BatchEntry<Pending>>,
    flush_t: f64,
    cfg: &ServeConfig,
    transport: &T,
) -> Result<f64> {
    if entries.is_empty() {
        return Ok(flush_t);
    }
    let serve_done = flush_t + cfg.batch_setup_s + cfg.per_item_s * entries.len() as f64;
    sync_server_clock(transport, serve_done);

    let (live, expired): (Vec<_>, Vec<_>) = entries.into_iter().partition(|e| e.deadline_s >= serve_done);
    for entry in expired {
        let p = entry.item;
        let resp = encode_response(
            NodeId::Platform(p.platform),
            p.id,
            p.submit_s,
            serve_done,
            InferStatus::TimedOut,
            None,
            cfg.codec,
        );
        transport.send(resp).map_err(SplitError::from)?;
    }
    if live.is_empty() {
        return Ok(serve_done);
    }

    // One forward pass over the concatenated batch, then per-request
    // slices — the same aggregate pattern as training.
    medsplit_telemetry::histogram_observe(
        "serve.batch_size",
        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
        live.len() as f64,
    );
    let assemble = medsplit_telemetry::span("batch_assemble");
    let tensors: Vec<Tensor> = live.iter().map(|e| e.item.activations.clone()).collect();
    let rows: Vec<usize> = tensors.iter().map(|t| t.dims()[0]).collect();
    let batch = Tensor::concat0(&tensors)?;
    drop(assemble);
    let infer = medsplit_telemetry::span("batch_infer");
    let logits = server.infer(&batch)?;
    drop(infer);
    let mut offset = 0;
    for (entry, n) in live.into_iter().zip(rows) {
        let slice = logits.slice0(offset, n)?;
        offset += n;
        let p = entry.item;
        let resp = encode_response(
            NodeId::Platform(p.platform),
            p.id,
            p.submit_s,
            serve_done,
            InferStatus::Ok,
            Some(&slice),
            cfg.codec,
        );
        transport.send(resp).map_err(SplitError::from)?;
    }
    Ok(serve_done)
}

/// Brings the server's network clock up to `t` so transport-level arrival
/// times and the makespan agree with the serving busy clock.
fn sync_server_clock<T: Transport>(transport: &T, t: f64) {
    let stats = transport.stats();
    let now = stats.clock(NodeId::Server);
    if t > now {
        stats.advance_clock(NodeId::Server, t - now);
    }
}
