//! Dynamic batching with admission control.
//!
//! [`DynamicBatcher`] is a pure state machine over explicit timestamps: it
//! never reads a wall clock, so the serving runtime can drive it with
//! simulated time and tests can drive it with arbitrary schedules. A batch
//! is *due* when either `max_batch` requests are pending or the oldest
//! pending request has waited `max_wait_s` — whichever happens first, the
//! standard flush rule of serving systems (e.g. Triton/Clipper-style
//! dynamic batching).
//!
//! Admission control is a bounded queue: when `capacity` requests are
//! already pending, [`offer`](DynamicBatcher::offer) returns
//! [`Admission::Rejected`] and the caller must answer the client
//! explicitly — rejected work is never silently dropped.

use std::collections::VecDeque;

/// Whether an offered request was queued or refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request is pending and will appear in exactly one batch.
    Admitted,
    /// The queue was full; the request was not enqueued.
    Rejected,
}

/// One queued request with its timing metadata.
#[derive(Debug, Clone)]
pub struct BatchEntry<T> {
    /// The queued item.
    pub item: T,
    /// When the item entered the queue (simulated seconds).
    pub enqueued_s: f64,
    /// Absolute deadline (`INFINITY` = none). The batcher itself does not
    /// drop expired entries — the server decides at serve time, so late
    /// requests get an explicit timeout response.
    pub deadline_s: f64,
}

/// Bounded FIFO queue with flush-on-size-or-age batching.
#[derive(Debug)]
pub struct DynamicBatcher<T> {
    max_batch: usize,
    max_wait_s: f64,
    capacity: usize,
    pending: VecDeque<BatchEntry<T>>,
}

impl<T> DynamicBatcher<T> {
    /// Creates a batcher.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`, `capacity == 0`, or `max_wait_s` is
    /// negative/NaN (`INFINITY` is allowed: flush on size only).
    pub fn new(max_batch: usize, max_wait_s: f64, capacity: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        assert!(capacity >= 1, "capacity must be at least 1");
        assert!(max_wait_s >= 0.0, "max_wait_s must be non-negative");
        DynamicBatcher {
            max_batch,
            max_wait_s,
            capacity,
            pending: VecDeque::new(),
        }
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The flush batch-size threshold.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The flush age threshold in seconds.
    pub fn max_wait_s(&self) -> f64 {
        self.max_wait_s
    }

    /// The admission-control queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers a request at time `now_s`. Full queue ⇒ `Rejected` and the
    /// item is dropped (the caller already owns it and must produce the
    /// rejection response).
    pub fn offer(&mut self, item: T, now_s: f64, deadline_s: f64) -> Admission {
        if self.pending.len() >= self.capacity {
            return Admission::Rejected;
        }
        self.pending.push_back(BatchEntry {
            item,
            enqueued_s: now_s,
            deadline_s,
        });
        Admission::Admitted
    }

    /// The earliest time the age rule will force a flush: oldest pending
    /// entry's enqueue time plus `max_wait_s`. `None` when the queue is
    /// empty. (The size rule can make a batch due earlier.)
    pub fn ready_at(&self) -> Option<f64> {
        self.pending.front().map(|e| e.enqueued_s + self.max_wait_s)
    }

    /// Whether a batch is due at `now_s` under either flush rule.
    pub fn is_due(&self, now_s: f64) -> bool {
        self.pending.len() >= self.max_batch || self.ready_at().is_some_and(|t| now_s >= t)
    }

    /// Takes the due batch (up to `max_batch` oldest entries) if one is
    /// due at `now_s`; `None` otherwise.
    pub fn take_due(&mut self, now_s: f64) -> Option<Vec<BatchEntry<T>>> {
        if self.pending.is_empty() || !self.is_due(now_s) {
            return None;
        }
        Some(self.take_batch())
    }

    /// Unconditionally takes up to `max_batch` oldest entries (final
    /// drain at shutdown). Empty vec when nothing is pending.
    pub fn take_batch(&mut self) -> Vec<BatchEntry<T>> {
        let n = self.pending.len().min(self.max_batch);
        self.pending.drain(..n).collect()
    }

    /// Unconditionally takes *every* pending entry, ignoring `max_batch`.
    /// Used when a fleet replica drains: whatever is queued must leave
    /// with the replica in one sweep, not in flush-sized slices.
    pub fn drain_all(&mut self) -> Vec<BatchEntry<T>> {
        self.pending.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher(max_batch: usize, max_wait_s: f64, capacity: usize) -> DynamicBatcher<u32> {
        DynamicBatcher::new(max_batch, max_wait_s, capacity)
    }

    #[test]
    fn flushes_on_size() {
        let mut b = batcher(3, 10.0, 8);
        assert_eq!(b.offer(1, 0.0, f64::INFINITY), Admission::Admitted);
        assert_eq!(b.offer(2, 0.1, f64::INFINITY), Admission::Admitted);
        assert!(!b.is_due(0.2), "two of three pending");
        assert_eq!(b.offer(3, 0.2, f64::INFINITY), Admission::Admitted);
        assert!(b.is_due(0.2));
        let batch = b.take_due(0.2).unwrap();
        assert_eq!(batch.iter().map(|e| e.item).collect::<Vec<_>>(), [1, 2, 3]);
        assert!(b.is_empty());
    }

    #[test]
    fn flushes_on_age() {
        let mut b = batcher(16, 0.5, 8);
        b.offer(1, 1.0, f64::INFINITY);
        b.offer(2, 1.2, f64::INFINITY);
        assert_eq!(b.ready_at(), Some(1.5));
        assert!(!b.is_due(1.49));
        assert!(b.is_due(1.5));
        let batch = b.take_due(1.5).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(b.ready_at(), None);
    }

    #[test]
    fn size_rule_caps_batch_and_keeps_rest() {
        let mut b = batcher(2, 0.0, 8);
        for i in 0..5 {
            b.offer(i, 0.0, f64::INFINITY);
        }
        assert_eq!(
            b.take_due(0.0)
                .unwrap()
                .iter()
                .map(|e| e.item)
                .collect::<Vec<_>>(),
            [0, 1]
        );
        assert_eq!(b.len(), 3);
        assert_eq!(b.take_due(0.0).unwrap().len(), 2);
        assert_eq!(b.take_due(0.0).unwrap().len(), 1);
        assert!(b.take_due(0.0).is_none());
    }

    #[test]
    fn rejects_when_full() {
        let mut b = batcher(8, f64::INFINITY, 2);
        assert_eq!(b.offer(1, 0.0, f64::INFINITY), Admission::Admitted);
        assert_eq!(b.offer(2, 0.0, f64::INFINITY), Admission::Admitted);
        assert_eq!(b.offer(3, 0.0, f64::INFINITY), Admission::Rejected);
        assert_eq!(b.len(), 2, "rejected item must not be enqueued");
        // Draining frees capacity again.
        let _ = b.take_batch();
        assert_eq!(b.offer(4, 1.0, f64::INFINITY), Admission::Admitted);
    }

    #[test]
    fn infinite_wait_never_due_by_age() {
        let mut b = batcher(4, f64::INFINITY, 8);
        b.offer(1, 0.0, f64::INFINITY);
        assert!(!b.is_due(1e12));
        assert!(b.take_due(1e12).is_none());
        assert_eq!(b.take_batch().len(), 1);
    }

    #[test]
    fn entries_keep_timing_metadata() {
        let mut b = batcher(1, 0.0, 8);
        b.offer(7, 2.5, 3.25);
        let batch = b.take_due(2.5).unwrap();
        assert_eq!(batch[0].enqueued_s, 2.5);
        assert_eq!(batch[0].deadline_s, 3.25);
    }

    #[test]
    fn drain_all_ignores_max_batch() {
        let mut b = batcher(2, f64::INFINITY, 8);
        for i in 0..5 {
            b.offer(i, 0.0, f64::INFINITY);
        }
        let drained = b.drain_all();
        assert_eq!(
            drained.iter().map(|e| e.item).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        assert!(b.is_empty());
        assert!(b.drain_all().is_empty());
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_panics() {
        let _ = batcher(0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = batcher(1, 1.0, 0);
    }
}
