//! Latency and throughput accounting for a serving run.

use crate::wire::InferStatus;

use medsplit_telemetry::percentile;

/// Order statistics of a latency sample set, in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Median (nearest rank).
    pub p50_s: f64,
    /// 95th percentile (nearest rank).
    pub p95_s: f64,
    /// 99th percentile (nearest rank).
    pub p99_s: f64,
    /// Largest sample.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarises a sample set; `None` when it is empty.
    pub fn from_samples(samples: &[f64]) -> Option<LatencySummary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are not NaN"));
        Some(LatencySummary {
            count: sorted.len(),
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: percentile(&sorted, 50.0),
            p95_s: percentile(&sorted, 95.0),
            p99_s: percentile(&sorted, 99.0),
            max_s: *sorted.last().expect("non-empty"),
        })
    }
}

/// Aggregate outcome of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests the clients submitted.
    pub offered: usize,
    /// Requests served with logits.
    pub completed: usize,
    /// Requests refused admission (queue full).
    pub rejected: usize,
    /// Requests admitted but past their deadline when served.
    pub timed_out: usize,
    /// Requests refused by the fleet router (tenant quota exhausted or no
    /// active replica). Always zero for single-server runs.
    pub throttled: usize,
    /// End-to-end latency of *completed* requests (submit → logits
    /// received, simulated seconds).
    pub latency: Option<LatencySummary>,
    /// Total wire bytes of `InferRequest` traffic.
    pub request_bytes: u64,
    /// Total wire bytes of `InferResponse` traffic.
    pub response_bytes: u64,
    /// Simulated makespan of the run.
    pub makespan_s: f64,
}

impl ServeReport {
    /// Uplink wire bytes per offered request.
    pub fn request_bytes_per_offered(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.request_bytes as f64 / self.offered as f64
        }
    }

    /// Downlink wire bytes per offered request.
    pub fn response_bytes_per_offered(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.response_bytes as f64 / self.offered as f64
        }
    }

    /// Completed requests per simulated second.
    pub fn goodput_rps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.makespan_s
        }
    }

    /// Counts one terminal status (used while folding client records).
    pub fn tally(&mut self, status: InferStatus) {
        match status {
            InferStatus::Ok => self.completed += 1,
            InferStatus::Rejected => self.rejected += 1,
            InferStatus::TimedOut => self.timed_out += 1,
            InferStatus::Throttled => self.throttled += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_match_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_summary() {
        let s = LatencySummary::from_samples(&[0.25]).unwrap();
        assert_eq!(s.p50_s, 0.25);
        assert_eq!(s.p99_s, 0.25);
        assert_eq!(s.max_s, 0.25);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let s = LatencySummary::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.p50_s, 2.0);
        assert_eq!(s.max_s, 3.0);
    }

    #[test]
    fn empty_samples_yield_none() {
        assert!(LatencySummary::from_samples(&[]).is_none());
    }

    #[test]
    fn report_rates() {
        let mut r = ServeReport {
            offered: 10,
            completed: 0,
            rejected: 0,
            timed_out: 0,
            throttled: 0,
            latency: None,
            request_bytes: 1000,
            response_bytes: 500,
            makespan_s: 2.0,
        };
        for _ in 0..8 {
            r.tally(InferStatus::Ok);
        }
        r.tally(InferStatus::Rejected);
        r.tally(InferStatus::TimedOut);
        r.tally(InferStatus::Throttled);
        assert_eq!((r.completed, r.rejected, r.timed_out, r.throttled), (8, 1, 1, 1));
        assert_eq!(r.request_bytes_per_offered(), 100.0);
        assert_eq!(r.response_bytes_per_offered(), 50.0);
        assert_eq!(r.goodput_rps(), 4.0);
    }
}
