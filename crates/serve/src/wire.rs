//! Payload formats for the serving path.
//!
//! A request carries the client's `L1` activations plus the metadata the
//! server needs for batching and deadline handling; a response carries the
//! logits (or an empty body for rejections/timeouts) plus the timestamps
//! the client needs to compute end-to-end latency under the simulated
//! clock. All timestamps are absolute simulated seconds, serialised as
//! `f64` bit patterns so `INFINITY` ("no deadline") survives the trip.

use bytes::{BufMut, Bytes};
use medsplit_core::{Result, SplitError, WireCodec};
use medsplit_simnet::{Envelope, MessageKind, NodeId};
use medsplit_tensor::Tensor;

/// Fixed request prefix: id, submit time, deadline.
const REQUEST_PREFIX: usize = 8 + 8 + 8;
/// Fixed response prefix: id, submit time, served time, status byte.
const RESPONSE_PREFIX: usize = 8 + 8 + 8 + 1;
/// Fixed routed-request prefix: the plain request prefix plus tenant,
/// session, and pinned weight version.
const ROUTED_PREFIX: usize = REQUEST_PREFIX + 8 + 8 + 4;

/// Terminal status of one inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InferStatus {
    /// Served: the response carries logits.
    Ok,
    /// Refused admission (queue full); the request was never batched.
    Rejected,
    /// Admitted but its deadline expired before the batch was served.
    TimedOut,
    /// Refused by the fleet router before dispatch: the tenant's
    /// admission quota was exhausted, or no active replica could take the
    /// session. Distinct from [`InferStatus::Rejected`] so router-level
    /// backpressure and replica-level queue overflow stay separable in
    /// reports.
    Throttled,
}

impl InferStatus {
    fn code(self) -> u8 {
        match self {
            InferStatus::Ok => 0,
            InferStatus::Rejected => 1,
            InferStatus::TimedOut => 2,
            InferStatus::Throttled => 3,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(InferStatus::Ok),
            1 => Some(InferStatus::Rejected),
            2 => Some(InferStatus::TimedOut),
            3 => Some(InferStatus::Throttled),
            _ => None,
        }
    }
}

impl std::fmt::Display for InferStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InferStatus::Ok => "ok",
            InferStatus::Rejected => "rejected",
            InferStatus::TimedOut => "timed_out",
            InferStatus::Throttled => "throttled",
        })
    }
}

/// A decoded inference request.
#[derive(Debug, Clone)]
pub struct InferRequest {
    /// Client-assigned request id (unique per platform).
    pub id: u64,
    /// Simulated time the client submitted the request.
    pub submit_s: f64,
    /// Absolute deadline in simulated seconds (`INFINITY` = none).
    pub deadline_s: f64,
    /// The client's `L1` activations (possibly noised).
    pub activations: Tensor,
}

/// A decoded inference response.
#[derive(Debug, Clone)]
pub struct InferResponse {
    /// Echoed request id.
    pub id: u64,
    /// Echoed submission time.
    pub submit_s: f64,
    /// Simulated time the server finished handling the request.
    pub served_s: f64,
    /// Terminal status.
    pub status: InferStatus,
    /// Logits, present iff `status == Ok`.
    pub logits: Option<Tensor>,
}

/// Encodes an inference request envelope (platform → server).
pub fn encode_request(
    platform: NodeId,
    id: u64,
    submit_s: f64,
    deadline_s: f64,
    activations: &Tensor,
    codec: WireCodec,
) -> Envelope {
    let tensor_bytes = match codec {
        WireCodec::F32 => activations.to_bytes(),
        WireCodec::F16 => activations.to_bytes_f16(),
        WireCodec::Int8 => activations.to_bytes_i8(),
    };
    let mut payload = Vec::with_capacity(REQUEST_PREFIX + tensor_bytes.len());
    payload.put_u64_le(id);
    payload.put_u64_le(submit_s.to_bits());
    payload.put_u64_le(deadline_s.to_bits());
    payload.put_slice(&tensor_bytes);
    Envelope::new(
        platform,
        NodeId::Server,
        id,
        MessageKind::InferRequest,
        Bytes::from(payload),
    )
}

/// Decodes an inference request payload.
///
/// # Errors
///
/// Returns [`SplitError::Protocol`] for a wrong message kind or truncated
/// prefix, and [`SplitError::Tensor`] for a corrupt tensor body.
pub fn decode_request(env: &Envelope) -> Result<InferRequest> {
    if env.kind != MessageKind::InferRequest {
        return Err(SplitError::Protocol(format!(
            "expected infer_request from {}, got {}",
            env.src, env.kind
        )));
    }
    let p = &env.payload;
    if p.len() < REQUEST_PREFIX {
        return Err(SplitError::Protocol(format!(
            "truncated infer_request payload ({} bytes)",
            p.len()
        )));
    }
    let read_u64 = |at: usize| u64::from_le_bytes(p[at..at + 8].try_into().expect("8 bytes"));
    Ok(InferRequest {
        id: read_u64(0),
        submit_s: f64::from_bits(read_u64(8)),
        deadline_s: f64::from_bits(read_u64(16)),
        activations: Tensor::from_bytes(env.payload.slice(REQUEST_PREFIX..))?,
    })
}

/// A decoded fleet-routed inference request: the plain request plus the
/// routing coordinates the fleet router stamps on admission — owning
/// tenant, session within the tenant, and the weight version the session
/// is pinned to.
#[derive(Debug, Clone)]
pub struct RoutedRequest {
    /// Client-assigned request id (unique per platform).
    pub id: u64,
    /// Simulated time the client submitted the request.
    pub submit_s: f64,
    /// Absolute deadline in simulated seconds (`INFINITY` = none).
    pub deadline_s: f64,
    /// Owning tenant id.
    pub tenant: u64,
    /// Session id, unique within the tenant.
    pub session: u64,
    /// Weight version the session is pinned to.
    pub version: u32,
    /// The client's `L1` activations (possibly noised).
    pub activations: Tensor,
}

/// Encodes a fleet-routed inference request envelope. `src`/`dst` are
/// explicit because the same frame travels two hops: platform → router,
/// then router → replica after admission.
#[allow(clippy::too_many_arguments)]
pub fn encode_routed_request(src: NodeId, dst: NodeId, req: &RoutedRequest, codec: WireCodec) -> Envelope {
    let tensor_bytes = match codec {
        WireCodec::F32 => req.activations.to_bytes(),
        WireCodec::F16 => req.activations.to_bytes_f16(),
        WireCodec::Int8 => req.activations.to_bytes_i8(),
    };
    let mut payload = Vec::with_capacity(ROUTED_PREFIX + tensor_bytes.len());
    payload.put_u64_le(req.id);
    payload.put_u64_le(req.submit_s.to_bits());
    payload.put_u64_le(req.deadline_s.to_bits());
    payload.put_u64_le(req.tenant);
    payload.put_u64_le(req.session);
    payload.put_u32_le(req.version);
    payload.put_slice(&tensor_bytes);
    Envelope::new(src, dst, req.id, MessageKind::InferRequest, Bytes::from(payload))
}

/// Decodes a fleet-routed inference request payload.
///
/// # Errors
///
/// Returns [`SplitError::Protocol`] for a wrong message kind or truncated
/// prefix, and [`SplitError::Tensor`] for a corrupt tensor body.
pub fn decode_routed_request(env: &Envelope) -> Result<RoutedRequest> {
    if env.kind != MessageKind::InferRequest {
        return Err(SplitError::Protocol(format!(
            "expected infer_request from {}, got {}",
            env.src, env.kind
        )));
    }
    let p = &env.payload;
    if p.len() < ROUTED_PREFIX {
        return Err(SplitError::Protocol(format!(
            "truncated routed infer_request payload ({} bytes)",
            p.len()
        )));
    }
    let read_u64 = |at: usize| u64::from_le_bytes(p[at..at + 8].try_into().expect("8 bytes"));
    Ok(RoutedRequest {
        id: read_u64(0),
        submit_s: f64::from_bits(read_u64(8)),
        deadline_s: f64::from_bits(read_u64(16)),
        tenant: read_u64(24),
        session: read_u64(32),
        version: u32::from_le_bytes(p[40..44].try_into().expect("4 bytes")),
        activations: Tensor::from_bytes(env.payload.slice(ROUTED_PREFIX..))?,
    })
}

/// Encodes an inference response envelope (server → platform). `logits`
/// must be `Some` iff `status` is [`InferStatus::Ok`].
pub fn encode_response(
    platform: NodeId,
    id: u64,
    submit_s: f64,
    served_s: f64,
    status: InferStatus,
    logits: Option<&Tensor>,
    codec: WireCodec,
) -> Envelope {
    encode_response_from(
        NodeId::Server,
        platform,
        id,
        submit_s,
        served_s,
        status,
        logits,
        codec,
    )
}

/// Encodes an inference response envelope with an explicit source node.
/// Fleet replicas answer platforms directly, so the response's `src` is a
/// [`NodeId::Replica`] rather than the central server.
#[allow(clippy::too_many_arguments)]
pub fn encode_response_from(
    src: NodeId,
    platform: NodeId,
    id: u64,
    submit_s: f64,
    served_s: f64,
    status: InferStatus,
    logits: Option<&Tensor>,
    codec: WireCodec,
) -> Envelope {
    debug_assert_eq!(logits.is_some(), status == InferStatus::Ok);
    let tensor_bytes = logits.map(|t| match codec {
        WireCodec::F32 => t.to_bytes(),
        WireCodec::F16 => t.to_bytes_f16(),
        WireCodec::Int8 => t.to_bytes_i8(),
    });
    let body_len = tensor_bytes.as_ref().map_or(0, Bytes::len);
    let mut payload = Vec::with_capacity(RESPONSE_PREFIX + body_len);
    payload.put_u64_le(id);
    payload.put_u64_le(submit_s.to_bits());
    payload.put_u64_le(served_s.to_bits());
    payload.put_u8(status.code());
    if let Some(bytes) = &tensor_bytes {
        payload.put_slice(bytes);
    }
    Envelope::new(
        src,
        platform,
        id,
        MessageKind::InferResponse,
        Bytes::from(payload),
    )
}

/// Decodes an inference response payload.
///
/// # Errors
///
/// Returns [`SplitError::Protocol`] for a wrong kind, truncated prefix, or
/// unknown status code, and [`SplitError::Tensor`] for a corrupt body.
pub fn decode_response(env: &Envelope) -> Result<InferResponse> {
    if env.kind != MessageKind::InferResponse {
        return Err(SplitError::Protocol(format!(
            "expected infer_response from {}, got {}",
            env.src, env.kind
        )));
    }
    let p = &env.payload;
    if p.len() < RESPONSE_PREFIX {
        return Err(SplitError::Protocol(format!(
            "truncated infer_response payload ({} bytes)",
            p.len()
        )));
    }
    let read_u64 = |at: usize| u64::from_le_bytes(p[at..at + 8].try_into().expect("8 bytes"));
    let status = InferStatus::from_code(p[24])
        .ok_or_else(|| SplitError::Protocol(format!("unknown infer status code {}", p[24])))?;
    let logits = if status == InferStatus::Ok {
        Some(Tensor::from_bytes(env.payload.slice(RESPONSE_PREFIX..))?)
    } else {
        None
    };
    Ok(InferResponse {
        id: read_u64(0),
        submit_s: f64::from_bits(read_u64(8)),
        served_s: f64::from_bits(read_u64(16)),
        status,
        logits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let acts = Tensor::from_vec(vec![1.0, -2.5, 0.25, 8.0], [1, 4]).unwrap();
        let env = encode_request(NodeId::Platform(2), 7, 1.25, 3.5, &acts, WireCodec::F32);
        assert_eq!(env.kind, MessageKind::InferRequest);
        assert_eq!(env.src, NodeId::Platform(2));
        let req = decode_request(&env).unwrap();
        assert_eq!(req.id, 7);
        assert_eq!(req.submit_s, 1.25);
        assert_eq!(req.deadline_s, 3.5);
        assert_eq!(req.activations, acts);
    }

    #[test]
    fn infinite_deadline_survives() {
        let acts = Tensor::ones([1, 2]);
        let env = encode_request(NodeId::Platform(0), 0, 0.0, f64::INFINITY, &acts, WireCodec::F32);
        assert_eq!(decode_request(&env).unwrap().deadline_s, f64::INFINITY);
    }

    #[test]
    fn f16_request_halves_tensor_bytes() {
        let acts = Tensor::ones([4, 8]);
        let full = encode_request(NodeId::Platform(0), 0, 0.0, 1.0, &acts, WireCodec::F32);
        let half = encode_request(NodeId::Platform(0), 0, 0.0, 1.0, &acts, WireCodec::F16);
        assert!(half.payload.len() < full.payload.len());
        // Values of 1.0 are exactly representable in f16.
        assert_eq!(decode_request(&half).unwrap().activations, acts);
    }

    #[test]
    fn ok_response_round_trips() {
        let logits = Tensor::from_vec(vec![0.5, -1.5, 2.0], [1, 3]).unwrap();
        let env = encode_response(
            NodeId::Platform(1),
            9,
            0.5,
            0.75,
            InferStatus::Ok,
            Some(&logits),
            WireCodec::F32,
        );
        assert_eq!(env.dst, NodeId::Platform(1));
        let resp = decode_response(&env).unwrap();
        assert_eq!(resp.id, 9);
        assert_eq!(resp.submit_s, 0.5);
        assert_eq!(resp.served_s, 0.75);
        assert_eq!(resp.status, InferStatus::Ok);
        assert_eq!(resp.logits.unwrap(), logits);
    }

    #[test]
    fn rejection_response_has_no_body() {
        let env = encode_response(
            NodeId::Platform(0),
            3,
            1.0,
            1.0,
            InferStatus::Rejected,
            None,
            WireCodec::F32,
        );
        assert_eq!(env.payload.len(), RESPONSE_PREFIX);
        let resp = decode_response(&env).unwrap();
        assert_eq!(resp.status, InferStatus::Rejected);
        assert!(resp.logits.is_none());
        let timed = encode_response(
            NodeId::Platform(0),
            4,
            1.0,
            2.0,
            InferStatus::TimedOut,
            None,
            WireCodec::F16,
        );
        assert_eq!(decode_response(&timed).unwrap().status, InferStatus::TimedOut);
    }

    #[test]
    fn routed_request_round_trips() {
        let acts = Tensor::from_vec(vec![0.5, 1.5, -3.0], [1, 3]).unwrap();
        let req = RoutedRequest {
            id: 42,
            submit_s: 2.0,
            deadline_s: 5.0,
            tenant: 9,
            session: 0xdead_beef,
            version: 3,
            activations: acts.clone(),
        };
        // First hop: platform → router.
        let env = encode_routed_request(NodeId::Platform(1), NodeId::Server, &req, WireCodec::F32);
        assert_eq!(env.kind, MessageKind::InferRequest);
        let back = decode_routed_request(&env).unwrap();
        assert_eq!(back.id, 42);
        assert_eq!(back.tenant, 9);
        assert_eq!(back.session, 0xdead_beef);
        assert_eq!(back.version, 3);
        assert_eq!(back.activations, acts);
        // Second hop reuses the same frame with new endpoints.
        let fwd = encode_routed_request(NodeId::Server, NodeId::Replica(2), &back, WireCodec::F32);
        assert_eq!(fwd.payload, env.payload);
        assert_eq!(fwd.dst, NodeId::Replica(2));
    }

    #[test]
    fn routed_request_truncation_rejected() {
        let acts = Tensor::ones([1, 2]);
        let req = RoutedRequest {
            id: 1,
            submit_s: 0.0,
            deadline_s: f64::INFINITY,
            tenant: 0,
            session: 0,
            version: 0,
            activations: acts,
        };
        let env = encode_routed_request(NodeId::Platform(0), NodeId::Server, &req, WireCodec::F32);
        let short = Envelope::new(
            NodeId::Platform(0),
            NodeId::Server,
            1,
            MessageKind::InferRequest,
            env.payload.slice(..40),
        );
        assert!(decode_routed_request(&short).is_err());
    }

    #[test]
    fn throttled_status_round_trips_from_replica() {
        let env = encode_response_from(
            NodeId::Replica(1),
            NodeId::Platform(0),
            5,
            1.0,
            1.0,
            InferStatus::Throttled,
            None,
            WireCodec::F32,
        );
        assert_eq!(env.src, NodeId::Replica(1));
        let resp = decode_response(&env).unwrap();
        assert_eq!(resp.status, InferStatus::Throttled);
        assert!(resp.logits.is_none());
        assert_eq!(InferStatus::Throttled.to_string(), "throttled");
    }

    #[test]
    fn malformed_payloads_rejected() {
        let acts = Tensor::ones([1, 2]);
        let env = encode_request(NodeId::Platform(0), 0, 0.0, 1.0, &acts, WireCodec::F32);
        // Wrong kind for the decoder.
        assert!(decode_response(&env).is_err());
        // Truncated prefix.
        let short = Envelope::new(
            NodeId::Platform(0),
            NodeId::Server,
            0,
            MessageKind::InferRequest,
            env.payload.slice(..10),
        );
        assert!(decode_request(&short).is_err());
        // Unknown status code.
        let mut bad = encode_response(
            NodeId::Platform(0),
            1,
            0.0,
            0.0,
            InferStatus::Rejected,
            None,
            WireCodec::F32,
        );
        let mut raw = bad.payload.to_vec();
        raw[24] = 99;
        bad.payload = Bytes::from(raw);
        assert!(decode_response(&bad).is_err());
    }
}
