//! Property tests for the dynamic batcher: driven the way the serving
//! runtime drives it (flush age-due batches before each arrival, flush on
//! size after each admit, drain at shutdown), every admitted request must
//! land in exactly one batch, no batch may exceed `max_batch`, no entry
//! may wait past `max_wait` while traffic keeps arriving, and rejected
//! requests must be reported — never silently dropped.

use medsplit_serve::{Admission, BatchEntry, DynamicBatcher};
use proptest::prelude::*;

/// Replays a gap sequence through the runtime's flush discipline.
/// Returns `(admitted, rejected, flushes)` where each flush records its
/// time and the taken entries.
#[allow(clippy::type_complexity)]
fn drive(
    max_batch: usize,
    max_wait_s: f64,
    capacity: usize,
    gaps: &[f64],
) -> (Vec<u64>, Vec<u64>, Vec<(f64, Vec<BatchEntry<u64>>)>) {
    let mut b: DynamicBatcher<u64> = DynamicBatcher::new(max_batch, max_wait_s, capacity);
    let mut now = 0.0f64;
    let mut admitted = Vec::new();
    let mut rejected = Vec::new();
    let mut flushes = Vec::new();
    for (i, gap) in gaps.iter().enumerate() {
        now += gap;
        // Age rule: batches whose timer expired before this arrival are
        // flushed at their due time.
        while let Some(ready) = b.ready_at() {
            if ready > now {
                break;
            }
            let batch = b.take_due(ready).expect("due at its own ready time");
            flushes.push((ready, batch));
        }
        match b.offer(i as u64, now, f64::INFINITY) {
            Admission::Admitted => {
                admitted.push(i as u64);
                // Size rule: a full batch goes out immediately.
                if b.len() >= max_batch {
                    flushes.push((now, b.take_batch()));
                }
            }
            Admission::Rejected => rejected.push(i as u64),
        }
    }
    // Shutdown drain: whatever is still pending goes out, age timer
    // honoured when finite.
    while !b.is_empty() {
        let ready = b.ready_at().expect("non-empty");
        let t = if ready.is_finite() { ready.max(now) } else { now };
        flushes.push((t, b.take_batch()));
    }
    (admitted, rejected, flushes)
}

proptest! {
    #[test]
    fn every_admitted_request_batched_exactly_once(
        max_batch in 1usize..6,
        max_wait_steps in 0u32..40,
        capacity in 1usize..10,
        gaps in prop::collection::vec(0.0f64..0.2, 1..80),
    ) {
        let max_wait_s = max_wait_steps as f64 * 0.01;
        let offered = gaps.len() as u64;
        let (admitted, rejected, flushes) = drive(max_batch, max_wait_s, capacity, &gaps);

        // Conservation: every request is either admitted or rejected.
        prop_assert_eq!(admitted.len() + rejected.len(), offered as usize);

        // Every admitted id appears in exactly one flushed batch...
        let mut batched: Vec<u64> = flushes
            .iter()
            .flat_map(|(_, batch)| batch.iter().map(|e| e.item))
            .collect();
        batched.sort_unstable();
        let mut expected = admitted.clone();
        expected.sort_unstable();
        prop_assert_eq!(&batched, &expected);

        // ...and rejected ids never do (no silent drops, no ghost serves).
        for id in &rejected {
            prop_assert!(!batched.contains(id), "rejected id {} was batched", id);
        }
        for id in 0..offered {
            prop_assert!(
                admitted.contains(&id) || rejected.contains(&id),
                "request {} vanished without an admission verdict",
                id
            );
        }
    }

    #[test]
    fn batches_respect_size_and_wait_bounds(
        max_batch in 1usize..6,
        max_wait_steps in 0u32..40,
        capacity in 1usize..10,
        gaps in prop::collection::vec(0.0f64..0.2, 2..80),
    ) {
        let max_wait_s = max_wait_steps as f64 * 0.01;
        let last_arrival: f64 = gaps.iter().sum();
        let (_, _, flushes) = drive(max_batch, max_wait_s, capacity, &gaps);

        for (flush_t, batch) in &flushes {
            prop_assert!(!batch.is_empty(), "empty flush");
            prop_assert!(batch.len() <= max_batch, "batch of {} > max {}", batch.len(), max_batch);
            for entry in batch {
                let wait = flush_t - entry.enqueued_s;
                prop_assert!(wait >= -1e-9, "flushed before enqueue");
                // While traffic still arrives, the age rule bounds every
                // wait by max_wait. Only entries drained at shutdown
                // (flushed at/after the last arrival) may exceed it,
                // because no event fires their timer.
                if *flush_t < last_arrival - 1e-9 {
                    prop_assert!(
                        wait <= max_wait_s + 1e-9,
                        "entry waited {} > max_wait {}",
                        wait,
                        max_wait_s
                    );
                }
            }
        }
    }

    #[test]
    fn pending_never_exceeds_capacity(
        max_batch in 1usize..6,
        capacity in 1usize..10,
        gaps in prop::collection::vec(0.0f64..0.05, 1..60),
    ) {
        // Infinite wait + tiny gaps: worst case for queue growth.
        let mut b: DynamicBatcher<u64> = DynamicBatcher::new(max_batch, f64::INFINITY, capacity);
        let mut now = 0.0;
        for (i, gap) in gaps.iter().enumerate() {
            now += gap;
            let verdict = b.offer(i as u64, now, f64::INFINITY);
            prop_assert!(b.len() <= capacity, "queue grew past capacity");
            if b.len() == capacity {
                // The next offer must be rejected until something drains.
                prop_assert_eq!(b.offer(u64::MAX, now, f64::INFINITY), Admission::Rejected);
            }
            if verdict == Admission::Admitted && b.len() >= max_batch {
                let _ = b.take_batch();
            }
        }
    }
}
