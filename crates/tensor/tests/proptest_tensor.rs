//! Property-based tests for tensor algebra invariants.

use medsplit_tensor::ops::reduce_broadcast;
use medsplit_tensor::{Conv2dSpec, Shape, Tensor};
use proptest::prelude::*;

/// Strategy producing a small shape (rank 1..=3, dims 1..=6).
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=6, 1..=3)
}

/// Strategy producing a tensor with the given shape filled with small
/// finite values.
fn tensor_with_shape(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-100.0f32..100.0, n..=n)
        .prop_map(move |data| Tensor::from_vec(data, dims.clone()).unwrap())
}

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    small_shape().prop_flat_map(tensor_with_shape)
}

fn arb_tensor_pair_same_shape() -> impl Strategy<Value = (Tensor, Tensor)> {
    small_shape().prop_flat_map(|dims| (tensor_with_shape(dims.clone()), tensor_with_shape(dims)))
}

proptest! {
    #[test]
    fn serialize_roundtrip_is_identity(t in arb_tensor()) {
        let back = Tensor::from_bytes(t.to_bytes()).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn serialized_len_matches(t in arb_tensor()) {
        prop_assert_eq!(t.to_bytes().len(), medsplit_tensor::serialized_len(t.shape()));
        prop_assert_eq!(t.to_bytes().len(), 4 + 4 + 8 * t.rank() + 4 * t.numel());
    }

    #[test]
    fn i8_quantize_roundtrip_error_bounded(t in arb_tensor()) {
        // The per-tensor scale is absmax/127; every element must come back
        // within half a quantisation step (plus half-ULP slack for the
        // dequantisation multiply).
        let absmax = t.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if absmax > 0.0 { absmax / 127.0 } else { 0.0 };
        let back = Tensor::from_bytes(t.to_bytes_i8()).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        for (&a, &b) in t.as_slice().iter().zip(back.as_slice()) {
            prop_assert!(
                (a - b).abs() <= scale * 0.5 * (1.0 + 1e-5),
                "value {} decoded as {} exceeds half-scale bound {}",
                a, b, scale * 0.5
            );
        }
    }

    #[test]
    fn i8_serialized_len_matches(t in arb_tensor()) {
        prop_assert_eq!(t.to_bytes_i8().len(), medsplit_tensor::serialized_len_i8(t.shape()));
        prop_assert_eq!(t.to_bytes_i8().len(), 4 + 4 + 8 * t.rank() + 4 + t.numel());
    }

    #[test]
    fn i8_encode_decode_is_deterministic(t in arb_tensor()) {
        let bytes = t.to_bytes_i8();
        prop_assert_eq!(&bytes, &t.to_bytes_i8());
        let once = Tensor::from_bytes(bytes.clone()).unwrap();
        let twice = Tensor::from_bytes(bytes).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn f16_wire_roundtrip_error_bounded(t in arb_tensor()) {
        // Inputs in ±100 are all within f16 normal range: relative error
        // per element is at most 2⁻¹¹.
        let back = Tensor::from_bytes(t.to_bytes_f16()).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        for (&a, &b) in t.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= a.abs() * 2.0f32.powi(-11) + 1e-7, "{} vs {}", a, b);
        }
    }

    #[test]
    fn addition_commutes((a, b) in arb_tensor_pair_same_shape()) {
        prop_assert!((&a + &b).allclose(&(&b + &a), 1e-4));
    }

    #[test]
    fn addition_identity(a in arb_tensor()) {
        let zero = Tensor::zeros(a.shape().clone());
        prop_assert!((&a + &zero).allclose(&a, 0.0));
    }

    #[test]
    fn subtraction_inverse(a in arb_tensor()) {
        let diff = &a - &a;
        prop_assert!(diff.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scale_distributes((a, b) in arb_tensor_pair_same_shape(), k in -10.0f32..10.0) {
        let lhs = (&a + &b).scale(k);
        let rhs = &a.scale(k) + &b.scale(k);
        prop_assert!(lhs.allclose(&rhs, 1e-2));
    }

    #[test]
    fn sum_matches_manual(a in arb_tensor()) {
        let manual: f32 = a.as_slice().iter().sum();
        prop_assert!((a.sum() - manual).abs() < 1e-3);
    }

    #[test]
    fn sum_axis_preserves_total(a in arb_tensor(), axis_sel in 0usize..3) {
        let axis = axis_sel % a.rank();
        let reduced = a.sum_axis(axis).unwrap();
        prop_assert!((reduced.sum() - a.sum()).abs() < 1e-2 * (1.0 + a.sum().abs()));
    }

    #[test]
    fn reshape_preserves_data(a in arb_tensor()) {
        let flat = a.flatten();
        prop_assert_eq!(flat.as_slice(), a.as_slice());
        let back = flat.reshape(a.shape().clone()).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn transpose_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = medsplit_tensor::init::rng_from_seed(seed);
        let t = Tensor::rand_uniform([rows, cols], -1.0, 1.0, &mut rng);
        let tt = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(t, tt);
    }

    #[test]
    fn matmul_identity_both_sides(n in 1usize..6, m in 1usize..6, seed in 0u64..1000) {
        let mut rng = medsplit_tensor::init::rng_from_seed(seed);
        let a = Tensor::rand_uniform([n, m], -2.0, 2.0, &mut rng);
        prop_assert!(a.matmul(&Tensor::eye(m)).unwrap().allclose(&a, 1e-5));
        prop_assert!(Tensor::eye(n).matmul(&a).unwrap().allclose(&a, 1e-5));
    }

    #[test]
    fn matmul_transpose_identity(n in 1usize..5, k in 1usize..5, m in 1usize..5, seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let mut rng = medsplit_tensor::init::rng_from_seed(seed);
        let a = Tensor::rand_uniform([n, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform([k, m], -2.0, 2.0, &mut rng);
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn fused_transpose_kernels_agree(n in 1usize..5, k in 1usize..5, m in 1usize..5, seed in 0u64..1000) {
        let mut rng = medsplit_tensor::init::rng_from_seed(seed);
        let a = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform([k, m], -2.0, 2.0, &mut rng);
        let fused = a.matmul_tn(&b).unwrap();
        let direct = a.transpose().unwrap().matmul(&b).unwrap();
        prop_assert!(fused.allclose(&direct, 1e-3));

        let c = Tensor::rand_uniform([n, k], -2.0, 2.0, &mut rng);
        let d = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
        let fused2 = c.matmul_nt(&d).unwrap();
        let direct2 = c.matmul(&d.transpose().unwrap()).unwrap();
        prop_assert!(fused2.allclose(&direct2, 1e-3));
    }

    #[test]
    fn broadcast_shape_is_symmetric(a in small_shape(), b in small_shape()) {
        let sa = Shape::new(a);
        let sb = Shape::new(b);
        match (sa.broadcast(&sb), sb.broadcast(&sa)) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "broadcast symmetry violated"),
        }
    }

    #[test]
    fn reduce_broadcast_adjoint_of_expand((a, _) in arb_tensor_pair_same_shape(), seed in 0u64..1000) {
        // <expand(a), g> == <a, reduce(g)> where expand is broadcast-add with zeros.
        let mut rng = medsplit_tensor::init::rng_from_seed(seed);
        let mut big_dims = vec![3usize];
        big_dims.extend_from_slice(a.dims());
        let zeros = Tensor::zeros(big_dims.clone());
        let expanded = zeros.try_add(&a).unwrap();
        let g = Tensor::rand_uniform(big_dims, -1.0, 1.0, &mut rng);
        let lhs = expanded.dot(&g).unwrap();
        let reduced = reduce_broadcast(&g, a.shape()).unwrap();
        let rhs = a.dot(&reduced).unwrap() + zeros.dot(&g).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-1 * (1.0 + lhs.abs()));
    }

    #[test]
    fn softmax_rows_is_distribution(rows in 1usize..5, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = medsplit_tensor::init::rng_from_seed(seed);
        let t = Tensor::rand_uniform([rows, cols], -20.0, 20.0, &mut rng);
        let s = t.softmax_rows().unwrap();
        for i in 0..rows {
            let sum: f32 = s.row(i).unwrap().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
        prop_assert!(s.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn conv_output_shape_formula(h in 3usize..12, w in 3usize..12, k in 1usize..4, stride in 1usize..3, pad in 0usize..2) {
        let spec = Conv2dSpec::square(k, stride, pad);
        if let Ok((oh, ow)) = spec.output_hw(h, w) {
            prop_assert_eq!(oh, (h + 2 * pad - k) / stride + 1);
            prop_assert_eq!(ow, (w + 2 * pad - k) / stride + 1);
            let input = Tensor::zeros([1, 1, h, w]);
            let weight = Tensor::zeros([2, 1, k, k]);
            let out = medsplit_tensor::ops::conv::conv2d_forward(&input, &weight, None, spec).unwrap();
            prop_assert_eq!(out.dims(), &[1, 2, oh, ow]);
        }
    }

    #[test]
    fn conv_is_linear_in_input(seed in 0u64..500) {
        let mut rng = medsplit_tensor::init::rng_from_seed(seed);
        let spec = Conv2dSpec::square(3, 1, 1);
        let w = Tensor::rand_uniform([2, 1, 3, 3], -1.0, 1.0, &mut rng);
        let x1 = Tensor::rand_uniform([1, 1, 5, 5], -1.0, 1.0, &mut rng);
        let x2 = Tensor::rand_uniform([1, 1, 5, 5], -1.0, 1.0, &mut rng);
        let y_sum = medsplit_tensor::ops::conv::conv2d_forward(&x1.try_add(&x2).unwrap(), &w, None, spec).unwrap();
        let y1 = medsplit_tensor::ops::conv::conv2d_forward(&x1, &w, None, spec).unwrap();
        let y2 = medsplit_tensor::ops::conv::conv2d_forward(&x2, &w, None, spec).unwrap();
        prop_assert!(y_sum.allclose(&y1.try_add(&y2).unwrap(), 1e-3));
    }

    #[test]
    fn conv_backward_is_adjoint(seed in 0u64..200) {
        // <conv(x), g> == <x, conv_backward_input(g)>
        let mut rng = medsplit_tensor::init::rng_from_seed(seed);
        let spec = Conv2dSpec::square(3, 1, 1);
        let w = Tensor::rand_uniform([2, 2, 3, 3], -1.0, 1.0, &mut rng);
        let x = Tensor::rand_uniform([1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let y = medsplit_tensor::ops::conv::conv2d_forward(&x, &w, None, spec).unwrap();
        let g = Tensor::rand_uniform(y.shape().clone(), -1.0, 1.0, &mut rng);
        let (gx, _, _) = medsplit_tensor::ops::conv::conv2d_backward(&x, &w, &g, spec).unwrap();
        let lhs = y.dot(&g).unwrap();
        let rhs = x.dot(&gx).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn cholesky_solve_residual_small(n in 1usize..6, seed in 0u64..500) {
        let mut rng = medsplit_tensor::init::rng_from_seed(seed);
        // Build SPD matrix A = MᵀM + I.
        let m = Tensor::rand_uniform([n, n], -1.0, 1.0, &mut rng);
        let mut a = m.matmul_tn(&m).unwrap();
        for i in 0..n {
            a.as_mut_slice()[i * n + i] += 1.0;
        }
        let b = Tensor::rand_uniform([n, 1], -1.0, 1.0, &mut rng);
        let x = medsplit_tensor::linalg::solve_spd(&a, &b).unwrap();
        let residual = a.matmul(&x).unwrap().try_sub(&b).unwrap().norm();
        prop_assert!(residual < 1e-3, "residual {}", residual);
    }
}
