//! Error types for tensor operations.

use std::fmt;

use crate::shape::Shape;

/// Errors produced by fallible tensor operations.
///
/// Most arithmetic entry points have both a fallible (`try_*`) and a
/// panicking variant; the panicking variants call the fallible ones and
/// `expect` the result, so every shape violation is reported through this
/// type first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (exactly or after
    /// broadcasting) did not.
    ShapeMismatch {
        /// Left-hand operand shape.
        lhs: Shape,
        /// Right-hand operand shape.
        rhs: Shape,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The number of elements implied by a shape did not match the data
    /// length supplied.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An axis argument was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// An index was out of bounds for the dimension it addressed.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The dimension size.
        dim: usize,
    },
    /// Deserialisation found a malformed or truncated buffer.
    Corrupt(String),
    /// A linear-algebra routine failed (e.g. a non-positive-definite matrix
    /// handed to a Cholesky factorisation).
    Numerical(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: {lhs} vs {rhs}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "length mismatch: shape implies {expected} elements, got {actual}"
                )
            }
            TensorError::RankMismatch { expected, actual, op } => {
                write!(
                    f,
                    "rank mismatch in `{op}`: expected rank {expected}, got {actual}"
                )
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfBounds { index, dim } => {
                write!(f, "index {index} out of bounds for dimension of size {dim}")
            }
            TensorError::Corrupt(msg) => write!(f, "corrupt tensor buffer: {msg}"),
            TensorError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenient alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            lhs: Shape::new(vec![2, 3]),
            rhs: Shape::new(vec![4]),
            op: "add",
        };
        let msg = err.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4]"));
    }

    #[test]
    fn error_trait_object() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TensorError>();
    }

    #[test]
    fn length_mismatch_display() {
        let err = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert_eq!(
            err.to_string(),
            "length mismatch: shape implies 6 elements, got 5"
        );
    }
}
