//! Reusable, thread-local scratch buffers for the hot kernels.
//!
//! The im2col/col2im convolution path and the packed GEMM kernels need
//! large temporary `f32` buffers (`[C*KH*KW, OH*OW]` column matrices,
//! `KC×NC` B-panels). Allocating them fresh every call dominated the
//! allocator profile of a training round, so they are drawn from a
//! grow-only, thread-local arena instead: after one warm-up step over a
//! given model, steady-state training and inference perform **zero**
//! scratch heap allocations — a property the test suite asserts via
//! [`stats`].
//!
//! The arena is a LIFO stack of buffers per thread. Nested acquisitions
//! (a conv task holding its column buffer while the inner GEMM grabs a
//! pack buffer) release in reverse order, so each nesting level keeps
//! hitting the same cached buffer and sizes stabilise after warm-up.
//! Buffers hand out **uninitialised-looking** contents (stale data from
//! prior uses); every kernel here fully overwrites or explicitly zeroes
//! what it reads.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buffer-growth events (heap allocations) since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Total bytes ever requested from the allocator by the arena.
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Number of `with_f32` acquisitions since process start.
static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// LIFO stack of free buffers for this thread.
    static FREE: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// A point-in-time snapshot of the arena's global counters (summed over
/// all threads, monotonically non-decreasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// Buffer-growth events: how often an acquisition had to touch the
    /// heap because no cached buffer was large enough.
    pub allocations: u64,
    /// Total bytes those growth events requested.
    pub allocated_bytes: u64,
    /// Total number of buffer acquisitions.
    pub acquisitions: u64,
}

/// Reads the arena counters. Subtract two snapshots to measure the
/// allocation behaviour of a region of code (e.g. "zero allocations per
/// training step after warm-up").
pub fn stats() -> ScratchStats {
    ScratchStats {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        acquisitions: ACQUISITIONS.load(Ordering::Relaxed),
    }
}

/// Runs `body` with a scratch `&mut [f32]` of exactly `len` elements.
///
/// Contents are arbitrary (not zeroed); the caller must fully initialise
/// whatever it reads. Buffers are recycled LIFO per thread and only ever
/// grow, so steady-state call patterns allocate nothing.
pub fn with_f32<R>(len: usize, body: impl FnOnce(&mut [f32]) -> R) -> R {
    ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    let mut buf = FREE.with(|free| free.borrow_mut().pop()).unwrap_or_default();
    if buf.capacity() < len {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(
            ((len - buf.capacity()) * std::mem::size_of::<f32>()) as u64,
            Ordering::Relaxed,
        );
        buf.reserve(len - buf.len());
        medsplit_telemetry::gauge_set(
            "scratch.allocated_bytes",
            ALLOCATED_BYTES.load(Ordering::Relaxed) as f64,
        );
    }
    buf.resize(len, 0.0);
    let result = body(&mut buf[..len]);
    FREE.with(|free| free.borrow_mut().push(buf));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_after_warmup() {
        // Warm up with the largest size used below.
        with_f32(4096, |b| b.fill(1.0));
        let before = stats();
        for _ in 0..10 {
            with_f32(4096, |b| {
                b[0] = 2.0;
            });
            with_f32(100, |b| {
                b[99] = 3.0;
            });
        }
        let after = stats();
        // The 4096 buffer is cached; the nested-free 100 buffer reuses it
        // LIFO... but the first 100-length acquisition happens after the
        // 4096 one was released, so it pops that same buffer. Either way:
        // no growth events.
        assert_eq!(after.allocations, before.allocations, "unexpected scratch growth");
        assert_eq!(after.acquisitions - before.acquisitions, 20);
    }

    #[test]
    fn nested_acquisitions_get_distinct_buffers() {
        with_f32(64, |outer| {
            outer.fill(7.0);
            with_f32(64, |inner| {
                inner.fill(9.0);
            });
            // The inner buffer must not have aliased the outer one.
            assert!(outer.iter().all(|&v| v == 7.0));
        });
    }

    #[test]
    fn requested_length_is_exact() {
        with_f32(3, |b| assert_eq!(b.len(), 3));
        with_f32(1000, |b| assert_eq!(b.len(), 1000));
        with_f32(0, |b| assert!(b.is_empty()));
    }
}
