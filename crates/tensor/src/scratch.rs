//! Reusable, thread-local scratch buffers for the hot kernels.
//!
//! The im2col/col2im convolution path and the packed GEMM kernels need
//! large temporary `f32` buffers (`[C*KH*KW, OH*OW]` column matrices,
//! microkernel-order packing panels). Allocating them fresh every call
//! dominated the allocator profile of a training round, so they are drawn
//! from a grow-only, thread-local arena instead: after one warm-up step
//! over a given model, steady-state training and inference perform
//! **zero** scratch heap allocations — a property the test suite asserts
//! via [`stats`]. A warm-up must touch *every* pool worker's arena to
//! count; [`crate::pool::warmup`] broadcasts a closure across the whole
//! pool for exactly that purpose.
//!
//! Buffers are **64-byte aligned** (cache line, and comfortably above the
//! 32-byte AVX2 requirement) so the SIMD microkernels can use aligned
//! vector loads on packed panels. The arena is a LIFO stack of buffers
//! per thread. Nested acquisitions (a conv task holding its column buffer
//! while the inner GEMM grabs a pack buffer) release in reverse order, so
//! each nesting level keeps hitting the same cached buffer and sizes
//! stabilise after warm-up. Buffers hand out **uninitialised-looking**
//! contents (stale data from prior uses, zero on first allocation); every
//! kernel here fully overwrites or explicitly zeroes what it reads.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::cell::RefCell;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};

/// Alignment of every arena buffer, in bytes.
pub const ALIGN: usize = 64;

/// Number of buffer-growth events (heap allocations) since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Total bytes ever requested from the allocator by the arena.
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Number of `with_f32` acquisitions since process start.
static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

/// A 64-byte-aligned, grow-only `f32` allocation. Contents beyond what a
/// caller last wrote are arbitrary (zero on first allocation).
struct AlignedBuf {
    ptr: NonNull<f32>,
    /// Capacity in `f32` elements (0 for the empty sentinel).
    cap: usize,
}

impl AlignedBuf {
    const fn empty() -> Self {
        AlignedBuf {
            ptr: NonNull::dangling(),
            cap: 0,
        }
    }

    fn layout(cap: usize) -> Layout {
        Layout::from_size_align(cap * std::mem::size_of::<f32>(), ALIGN).expect("scratch buffer layout")
    }

    /// Grows the buffer to at least `len` elements. Contents are not
    /// preserved (the arena contract hands out arbitrary contents), so
    /// growth is a fresh zeroed allocation plus a free — zeroing keeps
    /// the handed-out memory initialised without a per-acquisition cost.
    fn ensure(&mut self, len: usize) {
        if self.cap >= len {
            return;
        }
        let layout = Self::layout(len);
        // SAFETY: `len > 0` here (cap >= 0 and cap < len), so the layout
        // has non-zero size as `alloc_zeroed` requires.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<f32>()) else {
            handle_alloc_error(layout)
        };
        if self.cap > 0 {
            // SAFETY: `self.ptr` came from `alloc_zeroed` with the layout
            // of the old capacity and has not been freed.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.cap)) };
        }
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(
            ((len - self.cap) * std::mem::size_of::<f32>()) as u64,
            Ordering::Relaxed,
        );
        self.ptr = ptr;
        self.cap = len;
        medsplit_telemetry::gauge_set(
            "scratch.allocated_bytes",
            ALLOCATED_BYTES.load(Ordering::Relaxed) as f64,
        );
    }

    /// Views the first `len` elements mutably.
    ///
    /// # Safety
    ///
    /// `len <= self.cap`, and the caller must be the unique owner of the
    /// buffer for the borrow's duration (guaranteed by popping it off the
    /// thread-local free list).
    unsafe fn slice_mut(&mut self, len: usize) -> &mut [f32] {
        debug_assert!(len <= self.cap);
        std::slice::from_raw_parts_mut(self.ptr.as_ptr(), len)
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: allocated by `ensure` with this exact layout.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.cap)) };
        }
    }
}

thread_local! {
    /// LIFO stack of free buffers for this thread.
    static FREE: RefCell<Vec<AlignedBuf>> = const { RefCell::new(Vec::new()) };
}

/// A point-in-time snapshot of the arena's global counters (summed over
/// all threads, monotonically non-decreasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// Buffer-growth events: how often an acquisition had to touch the
    /// heap because no cached buffer was large enough.
    pub allocations: u64,
    /// Total bytes those growth events requested.
    pub allocated_bytes: u64,
    /// Total number of buffer acquisitions.
    pub acquisitions: u64,
}

/// Reads the arena counters. Subtract two snapshots to measure the
/// allocation behaviour of a region of code (e.g. "zero allocations per
/// training step after warm-up").
pub fn stats() -> ScratchStats {
    ScratchStats {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        acquisitions: ACQUISITIONS.load(Ordering::Relaxed),
    }
}

/// Runs `body` with a 64-byte-aligned scratch `&mut [f32]` of exactly
/// `len` elements.
///
/// Contents are arbitrary (zero on first allocation, stale afterwards);
/// the caller must fully initialise whatever it reads. Buffers are
/// recycled LIFO per thread and only ever grow, so steady-state call
/// patterns allocate nothing.
pub fn with_f32<R>(len: usize, body: impl FnOnce(&mut [f32]) -> R) -> R {
    ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    let mut buf = FREE
        .with(|free| free.borrow_mut().pop())
        .unwrap_or_else(AlignedBuf::empty);
    buf.ensure(len);
    // SAFETY: `ensure` made `cap >= len`, and the buffer is off the free
    // list so this borrow is unique.
    let result = body(unsafe { buf.slice_mut(len) });
    FREE.with(|free| free.borrow_mut().push(buf));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_after_warmup() {
        // Warm up with the largest size used below.
        with_f32(4096, |b| b.fill(1.0));
        let before = stats();
        for _ in 0..10 {
            with_f32(4096, |b| {
                b[0] = 2.0;
            });
            with_f32(100, |b| {
                b[99] = 3.0;
            });
        }
        let after = stats();
        // The 4096 buffer is cached; the nested-free 100 buffer reuses it
        // LIFO... but the first 100-length acquisition happens after the
        // 4096 one was released, so it pops that same buffer. Either way:
        // no growth events.
        assert_eq!(after.allocations, before.allocations, "unexpected scratch growth");
        assert_eq!(after.acquisitions - before.acquisitions, 20);
    }

    #[test]
    fn nested_acquisitions_get_distinct_buffers() {
        with_f32(64, |outer| {
            outer.fill(7.0);
            with_f32(64, |inner| {
                inner.fill(9.0);
            });
            // The inner buffer must not have aliased the outer one.
            assert!(outer.iter().all(|&v| v == 7.0));
        });
    }

    #[test]
    fn requested_length_is_exact() {
        with_f32(3, |b| assert_eq!(b.len(), 3));
        with_f32(1000, |b| assert_eq!(b.len(), 1000));
        with_f32(0, |b| assert!(b.is_empty()));
    }

    #[test]
    fn buffers_are_simd_aligned() {
        for len in [1usize, 7, 64, 1000, 4096] {
            with_f32(len, |b| {
                assert_eq!(
                    b.as_ptr() as usize % ALIGN,
                    0,
                    "scratch buffer of {len} not {ALIGN}-byte aligned"
                );
            });
        }
    }

    #[test]
    fn fresh_allocations_are_zeroed() {
        // A size larger than anything else on this thread forces a growth
        // event, which reallocates the whole buffer; the contract promises
        // the fresh allocation is zeroed, not garbage.
        with_f32(1 << 20, |b| {
            assert!(b.iter().all(|&v| v == 0.0));
        });
    }
}
