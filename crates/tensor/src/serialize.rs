//! Exact binary (de)serialisation of tensors.
//!
//! The wire format is the basis of the paper's evaluation: every byte the
//! protocols "transmit" is a byte produced by [`Tensor::to_bytes`] (or its
//! half-precision sibling [`Tensor::to_bytes_f16`]). The format is
//! deliberately minimal and exact:
//!
//! ```text
//! magic   u32 LE = 0x4D54534E ("MTSN")  — or 0x4D545348 ("MTSH") for f16
//! rank    u32 LE
//! dims    rank × u64 LE
//! data    numel × f32 LE (MTSN)  /  numel × u16 LE f16 bits (MTSH)
//! ```
//!
//! [`Tensor::from_bytes`] detects the magic and decodes either encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Result, TensorError};
use crate::half::{f16_bits_to_f32, f32_to_f16_bits};
use crate::shape::Shape;
use crate::tensor::Tensor;

const MAGIC: u32 = 0x4D54_534E;
const MAGIC_F16: u32 = 0x4D54_5348;

/// Number of bytes [`Tensor::to_bytes`] will produce for a tensor of the
/// given shape, without serialising.
pub fn serialized_len(shape: &Shape) -> usize {
    4 + 4 + 8 * shape.rank() + 4 * shape.numel()
}

/// Number of bytes [`Tensor::to_bytes_f16`] will produce for a tensor of
/// the given shape, without serialising.
pub fn serialized_len_f16(shape: &Shape) -> usize {
    4 + 4 + 8 * shape.rank() + 2 * shape.numel()
}

impl Tensor {
    /// Serialises the tensor to the exact wire format described in the
    /// module docs.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(serialized_len(self.shape()));
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(self.rank() as u32);
        for &d in self.dims() {
            buf.put_u64_le(d as u64);
        }
        for &v in self.as_slice() {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Serialises the tensor with half-precision payload: identical header,
    /// `u16` binary16 data. Lossy (each value is rounded to the nearest
    /// representable f16) but half the activation bytes — the protocol's
    /// optional compression codec.
    pub fn to_bytes_f16(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(serialized_len_f16(self.shape()));
        buf.put_u32_le(MAGIC_F16);
        buf.put_u32_le(self.rank() as u32);
        for &d in self.dims() {
            buf.put_u64_le(d as u64);
        }
        for &v in self.as_slice() {
            buf.put_u16_le(f32_to_f16_bits(v));
        }
        buf.freeze()
    }

    /// Deserialises a tensor written by [`to_bytes`](Self::to_bytes) or
    /// [`to_bytes_f16`](Self::to_bytes_f16) (the encoding is detected from
    /// the magic number).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Corrupt`] if the buffer is truncated, has a
    /// bad magic number, or declares an implausible rank.
    pub fn from_bytes(mut buf: impl Buf) -> Result<Tensor> {
        if buf.remaining() < 8 {
            return Err(TensorError::Corrupt("buffer shorter than header".into()));
        }
        let magic = buf.get_u32_le();
        let half = match magic {
            MAGIC => false,
            MAGIC_F16 => true,
            _ => return Err(TensorError::Corrupt(format!("bad magic 0x{magic:08X}"))),
        };
        let rank = buf.get_u32_le() as usize;
        if rank > 16 {
            return Err(TensorError::Corrupt(format!("implausible rank {rank}")));
        }
        if buf.remaining() < 8 * rank {
            return Err(TensorError::Corrupt("buffer truncated in dims".into()));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(buf.get_u64_le() as usize);
        }
        let shape = Shape::new(dims);
        let numel = shape.numel();
        let elem = if half { 2 } else { 4 };
        if buf.remaining() < elem * numel {
            return Err(TensorError::Corrupt(format!(
                "buffer truncated in data: need {} bytes, have {}",
                elem * numel,
                buf.remaining()
            )));
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(if half {
                f16_bits_to_f32(buf.get_u16_le())
            } else {
                buf.get_f32_le()
            });
        }
        Tensor::from_vec(data, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let t = Tensor::from_vec(vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE], [2, 2]).unwrap();
        let bytes = t.to_bytes();
        let back = Tensor::from_bytes(bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn roundtrip_scalar_and_empty() {
        let s = Tensor::scalar(3.25);
        assert_eq!(Tensor::from_bytes(s.to_bytes()).unwrap(), s);
        let e = Tensor::zeros([0, 5]);
        let back = Tensor::from_bytes(e.to_bytes()).unwrap();
        assert_eq!(back.dims(), &[0, 5]);
    }

    #[test]
    fn length_is_exact() {
        let t = Tensor::zeros([3, 4, 5]);
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), serialized_len(t.shape()));
        assert_eq!(bytes.len(), 4 + 4 + 8 * 3 + 4 * 60);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = Tensor::zeros([2]).to_bytes().to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(
            Tensor::from_bytes(&raw[..]),
            Err(TensorError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let raw = Tensor::zeros([4]).to_bytes();
        for cut in [0, 4, 9, raw.len() - 1] {
            assert!(
                Tensor::from_bytes(&raw[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn f16_roundtrip_is_near_lossless_for_activations() {
        let t = Tensor::from_vec(vec![0.125, -3.5, 0.0, 1.000_976_6], [2, 2]).unwrap();
        let back = Tensor::from_bytes(t.to_bytes_f16()).unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= a.abs() * 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn f16_encoding_is_half_the_payload() {
        let t = Tensor::zeros([100]);
        assert_eq!(t.to_bytes().len(), 8 + 8 + 400);
        assert_eq!(t.to_bytes_f16().len(), 8 + 8 + 200);
        assert_eq!(t.to_bytes_f16().len(), serialized_len_f16(t.shape()));
    }

    #[test]
    fn f16_truncation_detected() {
        let raw = Tensor::zeros([4]).to_bytes_f16();
        assert!(Tensor::from_bytes(&raw[..raw.len() - 1]).is_err());
    }

    #[test]
    fn rejects_implausible_rank() {
        let mut buf = bytes::BytesMut::new();
        use bytes::BufMut;
        buf.put_u32_le(super::MAGIC);
        buf.put_u32_le(99);
        assert!(Tensor::from_bytes(buf.freeze()).is_err());
    }
}
