//! Exact binary (de)serialisation of tensors.
//!
//! The wire format is the basis of the paper's evaluation: every byte the
//! protocols "transmit" is a byte produced by [`Tensor::to_bytes`] (or its
//! half-precision sibling [`Tensor::to_bytes_f16`]). The format is
//! deliberately minimal and exact:
//!
//! ```text
//! magic   u32 LE = 0x4D54534E ("MTSN")  — 0x4D545348 ("MTSH") for f16,
//!                                         0x4D545351 ("MTSQ") for int8
//! rank    u32 LE
//! dims    rank × u64 LE
//! scale   f32 LE                          (MTSQ only: per-tensor absmax/127)
//! data    numel × f32 LE (MTSN)  /  numel × u16 LE f16 bits (MTSH)
//!                                /  numel × i8 quantised values (MTSQ)
//! ```
//!
//! [`Tensor::from_bytes`] detects the magic and decodes any encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Result, TensorError};
use crate::half::{f16_bits_to_f32, f32_to_f16_bits};
use crate::shape::Shape;
use crate::tensor::Tensor;

const MAGIC: u32 = 0x4D54_534E;
const MAGIC_F16: u32 = 0x4D54_5348;
const MAGIC_I8: u32 = 0x4D54_5351;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Encoding {
    F32,
    F16,
    I8,
}

/// Number of bytes [`Tensor::to_bytes`] will produce for a tensor of the
/// given shape, without serialising.
pub fn serialized_len(shape: &Shape) -> usize {
    4 + 4 + 8 * shape.rank() + 4 * shape.numel()
}

/// Number of bytes [`Tensor::to_bytes_f16`] will produce for a tensor of
/// the given shape, without serialising.
pub fn serialized_len_f16(shape: &Shape) -> usize {
    4 + 4 + 8 * shape.rank() + 2 * shape.numel()
}

/// Number of bytes [`Tensor::to_bytes_i8`] will produce for a tensor of
/// the given shape, without serialising (header grows by the 4-byte
/// scale; each element shrinks to one byte).
pub fn serialized_len_i8(shape: &Shape) -> usize {
    4 + 4 + 8 * shape.rank() + 4 + shape.numel()
}

/// Quantises one value against a positive per-tensor scale: round half
/// away from zero, saturating to the symmetric range ±127.
///
/// The ratio is formed in f64 so the rounding decision depends only on
/// the IEEE-exact quotient, never on an intermediate f32 rounding —
/// quantisation is therefore bit-deterministic across ISAs and hosts.
fn quantize_i8(v: f32, scale: f32) -> i8 {
    let q = (f64::from(v) / f64::from(scale)).round();
    q.clamp(-127.0, 127.0) as i8
}

impl Tensor {
    /// Serialises the tensor to the exact wire format described in the
    /// module docs.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(serialized_len(self.shape()));
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(self.rank() as u32);
        for &d in self.dims() {
            buf.put_u64_le(d as u64);
        }
        for &v in self.as_slice() {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Serialises the tensor with half-precision payload: identical header,
    /// `u16` binary16 data. Lossy (each value is rounded to the nearest
    /// representable f16) but half the activation bytes — the protocol's
    /// optional compression codec.
    pub fn to_bytes_f16(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(serialized_len_f16(self.shape()));
        buf.put_u32_le(MAGIC_F16);
        buf.put_u32_le(self.rank() as u32);
        for &d in self.dims() {
            buf.put_u64_le(d as u64);
        }
        for &v in self.as_slice() {
            buf.put_u16_le(f32_to_f16_bits(v));
        }
        buf.freeze()
    }

    /// Serialises the tensor with symmetric int8 quantisation: the header
    /// carries a per-tensor scale (`absmax / 127`) and each element is
    /// stored as `round_half_away(v / scale)` clamped to ±127. Lossy
    /// (absolute error ≤ scale/2 per element) but roughly a quarter of the
    /// f32 payload — the protocol's aggressive compression codec.
    ///
    /// An all-zero tensor encodes scale 0 and an all-zero payload; NaN
    /// elements quantise to 0 deterministically.
    pub fn to_bytes_i8(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(serialized_len_i8(self.shape()));
        buf.put_u32_le(MAGIC_I8);
        buf.put_u32_le(self.rank() as u32);
        for &d in self.dims() {
            buf.put_u64_le(d as u64);
        }
        // f32::max ignores NaN operands, so a stray NaN cannot poison the
        // scale of the whole tensor.
        let absmax = self.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if absmax > 0.0 { absmax / 127.0 } else { 0.0 };
        buf.put_f32_le(scale);
        if scale == 0.0 {
            for _ in 0..self.shape().numel() {
                buf.put_u8(0);
            }
        } else {
            for &v in self.as_slice() {
                buf.put_u8(quantize_i8(v, scale) as u8);
            }
        }
        buf.freeze()
    }

    /// Deserialises a tensor written by [`to_bytes`](Self::to_bytes),
    /// [`to_bytes_f16`](Self::to_bytes_f16) or
    /// [`to_bytes_i8`](Self::to_bytes_i8) (the encoding is detected from
    /// the magic number).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Corrupt`] if the buffer is truncated, has a
    /// bad magic number, or declares an implausible rank.
    pub fn from_bytes(mut buf: impl Buf) -> Result<Tensor> {
        if buf.remaining() < 8 {
            return Err(TensorError::Corrupt("buffer shorter than header".into()));
        }
        let magic = buf.get_u32_le();
        let enc = match magic {
            MAGIC => Encoding::F32,
            MAGIC_F16 => Encoding::F16,
            MAGIC_I8 => Encoding::I8,
            _ => return Err(TensorError::Corrupt(format!("bad magic 0x{magic:08X}"))),
        };
        let rank = buf.get_u32_le() as usize;
        if rank > 16 {
            return Err(TensorError::Corrupt(format!("implausible rank {rank}")));
        }
        if buf.remaining() < 8 * rank {
            return Err(TensorError::Corrupt("buffer truncated in dims".into()));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(buf.get_u64_le() as usize);
        }
        let shape = Shape::new(dims);
        let numel = shape.numel();
        let scale = if enc == Encoding::I8 {
            if buf.remaining() < 4 {
                return Err(TensorError::Corrupt("buffer truncated in scale".into()));
            }
            buf.get_f32_le()
        } else {
            0.0
        };
        let elem = match enc {
            Encoding::F32 => 4,
            Encoding::F16 => 2,
            Encoding::I8 => 1,
        };
        if buf.remaining() < elem * numel {
            return Err(TensorError::Corrupt(format!(
                "buffer truncated in data: need {} bytes, have {}",
                elem * numel,
                buf.remaining()
            )));
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(match enc {
                Encoding::F32 => buf.get_f32_le(),
                Encoding::F16 => f16_bits_to_f32(buf.get_u16_le()),
                Encoding::I8 => f32::from(buf.get_u8() as i8) * scale,
            });
        }
        Tensor::from_vec(data, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let t = Tensor::from_vec(vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE], [2, 2]).unwrap();
        let bytes = t.to_bytes();
        let back = Tensor::from_bytes(bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn roundtrip_scalar_and_empty() {
        let s = Tensor::scalar(3.25);
        assert_eq!(Tensor::from_bytes(s.to_bytes()).unwrap(), s);
        let e = Tensor::zeros([0, 5]);
        let back = Tensor::from_bytes(e.to_bytes()).unwrap();
        assert_eq!(back.dims(), &[0, 5]);
    }

    #[test]
    fn length_is_exact() {
        let t = Tensor::zeros([3, 4, 5]);
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), serialized_len(t.shape()));
        assert_eq!(bytes.len(), 4 + 4 + 8 * 3 + 4 * 60);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = Tensor::zeros([2]).to_bytes().to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(
            Tensor::from_bytes(&raw[..]),
            Err(TensorError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let raw = Tensor::zeros([4]).to_bytes();
        for cut in [0, 4, 9, raw.len() - 1] {
            assert!(
                Tensor::from_bytes(&raw[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn f16_roundtrip_is_near_lossless_for_activations() {
        let t = Tensor::from_vec(vec![0.125, -3.5, 0.0, 1.000_976_6], [2, 2]).unwrap();
        let back = Tensor::from_bytes(t.to_bytes_f16()).unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= a.abs() * 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn f16_encoding_is_half_the_payload() {
        let t = Tensor::zeros([100]);
        assert_eq!(t.to_bytes().len(), 8 + 8 + 400);
        assert_eq!(t.to_bytes_f16().len(), 8 + 8 + 200);
        assert_eq!(t.to_bytes_f16().len(), serialized_len_f16(t.shape()));
    }

    #[test]
    fn f16_codec_preserves_subnormal_inf_nan() {
        let tiny = 2.0f32.powi(-24); // smallest positive f16 subnormal
        let largest_sub = 1023.0 * 2.0f32.powi(-24);
        let t = Tensor::from_vec(
            vec![
                tiny,
                -tiny,
                largest_sub,
                f32::INFINITY,
                f32::NEG_INFINITY,
                f32::NAN,
                1e6,   // overflows f16 → +inf
                1e-10, // below the subnormal range → flushes to +0
            ],
            [8],
        )
        .unwrap();
        let back = Tensor::from_bytes(t.to_bytes_f16()).unwrap();
        let s = back.as_slice();
        assert_eq!(s[0], tiny);
        assert_eq!(s[1], -tiny);
        assert_eq!(s[2], largest_sub);
        assert_eq!(s[3], f32::INFINITY);
        assert_eq!(s[4], f32::NEG_INFINITY);
        assert!(s[5].is_nan());
        assert_eq!(s[6], f32::INFINITY);
        assert_eq!(s[7].to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn f16_truncation_detected() {
        let raw = Tensor::zeros([4]).to_bytes_f16();
        assert!(Tensor::from_bytes(&raw[..raw.len() - 1]).is_err());
    }

    #[test]
    fn i8_roundtrip_bounded_by_half_scale() {
        let t = Tensor::from_vec(vec![12.7, -3.3, 0.01, -12.7, 5.05, 0.0], [2, 3]).unwrap();
        let scale = 12.7f32 / 127.0;
        let back = Tensor::from_bytes(t.to_bytes_i8()).unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert!(
                (a - b).abs() <= scale * 0.5 * (1.0 + 1e-5),
                "{a} vs {b} (scale {scale})"
            );
        }
        // The extrema hit the quantisation grid exactly.
        assert_eq!(back.as_slice()[0], 12.7);
        assert_eq!(back.as_slice()[3], -12.7);
    }

    #[test]
    fn i8_rounds_half_away_from_zero() {
        // scale = 127/127 = 1, so values sit directly on the half grid.
        let t = Tensor::from_vec(vec![127.0, 2.5, -2.5, 0.49, -0.49], [5]).unwrap();
        let back = Tensor::from_bytes(t.to_bytes_i8()).unwrap();
        assert_eq!(back.as_slice(), &[127.0, 3.0, -3.0, 0.0, -0.0]);
    }

    #[test]
    fn i8_zero_tensor_is_exact() {
        let t = Tensor::zeros([4, 4]);
        let back = Tensor::from_bytes(t.to_bytes_i8()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn i8_encoding_is_quarter_the_payload() {
        let t = Tensor::zeros([100]);
        assert_eq!(t.to_bytes_i8().len(), 8 + 8 + 4 + 100);
        assert_eq!(t.to_bytes_i8().len(), serialized_len_i8(t.shape()));
    }

    #[test]
    fn i8_truncation_detected() {
        let raw = Tensor::zeros([4]).to_bytes_i8();
        for cut in [0, 4, 9, 14, raw.len() - 1] {
            assert!(
                Tensor::from_bytes(&raw[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn i8_encode_is_deterministic() {
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin() * 9.5).collect();
        let t = Tensor::from_vec(vals, [8, 8]).unwrap();
        assert_eq!(t.to_bytes_i8(), t.to_bytes_i8());
    }

    #[test]
    fn rejects_implausible_rank() {
        let mut buf = bytes::BytesMut::new();
        use bytes::BufMut;
        buf.put_u32_le(super::MAGIC);
        buf.put_u32_le(99);
        assert!(Tensor::from_bytes(buf.freeze()).is_err());
    }
}
