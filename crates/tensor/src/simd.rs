//! Runtime ISA detection and dispatch for the SIMD compute kernels.
//!
//! The hot kernels (the GEMM microkernel in [`crate::ops::microkernel`]
//! and the elementwise maps below) exist in up to three implementations:
//! AVX2+FMA (`x86_64`), NEON (`aarch64`), and a portable fallback. The
//! active one is picked **once** per process from CPU feature detection,
//! overridable with `MEDSPLIT_ISA=scalar|avx2|neon` for A/B testing, and
//! switchable at runtime via [`set_isa`] (benchmarks and tests use this;
//! it is process-global like [`crate::pool::set_num_threads`]).
//!
//! # Bit-identical results across ISAs
//!
//! Every implementation of a kernel performs the *same* floating-point
//! operations on each output element in the *same* order; vector width
//! only changes how many independent elements advance per instruction,
//! never the per-element rounding sequence. Concretely:
//!
//! - the GEMM microkernels accumulate each output element over `k` in
//!   ascending order with a **fused** multiply-add per step — hardware
//!   `vfmadd`/`fmla` lanes on AVX2/NEON, [`f32::mul_add`] (exactly
//!   rounded by IEEE 754 definition) in the portable kernel;
//! - the elementwise kernels use the identical unfused expression per
//!   lane (`a + b`, `y += alpha * x`, compare-and-select ReLU).
//!
//! `MEDSPLIT_ISA=scalar` therefore reproduces the SIMD results **to the
//! bit** (pinned by `tests/parallel_kernels.rs` and a CI digest A/B),
//! and results are reproducible across hosts. The price: the portable
//! GEMM kernel's `mul_add` compiles to a libm call on targets without a
//! compile-time FMA guarantee, so the scalar path is a slow *reference*
//! implementation, not a fast fallback — dispatch exists precisely so
//! real hosts never run it.

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction sets the kernels can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable reference kernels (fused via [`f32::mul_add`]).
    Scalar,
    /// AVX2 + FMA (`x86_64`), 8-lane `f32` vectors.
    Avx2,
    /// NEON (`aarch64`), 4-lane `f32` vectors.
    Neon,
}

impl Isa {
    /// Stable lowercase name (`scalar` / `avx2` / `neon`) — the values
    /// `MEDSPLIT_ISA` accepts.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
        }
    }

    /// Numeric level reported to telemetry (`kernel.isa_level` gauge):
    /// 0 = scalar, 1 = neon, 2 = avx2.
    pub fn level(self) -> u8 {
        match self {
            Isa::Scalar => 0,
            Isa::Neon => 1,
            Isa::Avx2 => 2,
        }
    }

    fn from_code(code: u8) -> Isa {
        match code {
            2 => Isa::Avx2,
            3 => Isa::Neon,
            _ => Isa::Scalar,
        }
    }

    fn code(self) -> u8 {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 2,
            Isa::Neon => 3,
        }
    }
}

/// Active ISA: 0 = unresolved, otherwise `Isa::code()`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// What the hardware supports, independent of any override.
pub fn detect() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Isa::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is a baseline feature of aarch64.
        return Isa::Neon;
    }
    #[allow(unreachable_code)]
    Isa::Scalar
}

fn resolve() -> Isa {
    let requested = match std::env::var("MEDSPLIT_ISA") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            "neon" => Some(Isa::Neon),
            "" | "auto" => None,
            other => {
                eprintln!("MEDSPLIT_ISA={other:?} not recognised (scalar|avx2|neon|auto); auto-detecting");
                None
            }
        },
        Err(_) => None,
    };
    match requested {
        Some(isa) if supported(isa) => isa,
        Some(isa) => {
            eprintln!(
                "MEDSPLIT_ISA={} not supported on this host; falling back to {}",
                isa.name(),
                detect().name()
            );
            detect()
        }
        None => detect(),
    }
}

/// Whether the host can convert f16 half-words to `f32` in vector
/// registers. On `x86_64` this is the F16C extension (`vcvtph2ps`) — a
/// separate CPUID bit from AVX2, so the f16-storage GEMM kernels gate on
/// both. On `aarch64` half-to-single conversion is baseline NEON. Hosts
/// without hardware conversion fall back to the portable f16 kernel,
/// which converts in software; results are bit-identical either way
/// because f16 → f32 conversion is exact on every path.
pub fn f16c_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        return is_x86_feature_detected!("f16c");
    }
    #[cfg(target_arch = "aarch64")]
    {
        return true;
    }
    #[allow(unreachable_code)]
    false
}

/// Whether `isa` can run on this host.
pub fn supported(isa: Isa) -> bool {
    match isa {
        Isa::Scalar => true,
        Isa::Avx2 | Isa::Neon => detect() == isa,
    }
}

/// The ISA the kernels currently dispatch to. Resolved on first use from
/// feature detection and the `MEDSPLIT_ISA` override, then cached.
pub fn active_isa() -> Isa {
    let code = ACTIVE.load(Ordering::Relaxed);
    if code != 0 {
        return Isa::from_code(code);
    }
    let isa = resolve();
    // Racing initialisers compute the same value; last write wins.
    ACTIVE.store(isa.code(), Ordering::Relaxed);
    medsplit_telemetry::gauge_set("kernel.isa_level", f64::from(isa.level()));
    isa
}

/// Overrides the dispatch target at runtime (process-global; benchmarks
/// A/B kernels with it). Returns `false` — leaving the active ISA
/// unchanged — if the host cannot run `isa`.
pub fn set_isa(isa: Isa) -> bool {
    if !supported(isa) {
        return false;
    }
    ACTIVE.store(isa.code(), Ordering::Relaxed);
    medsplit_telemetry::gauge_set("kernel.isa_level", f64::from(isa.level()));
    true
}

/// Same-shape binary elementwise operations with a dispatched kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
}

/// `out[i] = a[i] op b[i]`. All slices must have equal length.
pub(crate) fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detection guarantees AVX2 is available.
        unsafe { avx2::binary(op, a, b, out) };
        return;
    }
    binary_portable(op, a, b, out);
}

fn binary_portable(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    match op {
        BinOp::Add => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x + y;
            }
        }
        BinOp::Sub => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x - y;
            }
        }
        BinOp::Mul => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x * y;
            }
        }
        BinOp::Div => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x / y;
            }
        }
    }
}

/// `dst[i] += alpha * src[i]` — deliberately *unfused* (separate multiply
/// and add roundings) on every ISA, matching the historical accumulator
/// semantics the optimisers were tuned against.
pub(crate) fn axpy(alpha: f32, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detection guarantees AVX2 is available.
        unsafe { avx2::axpy(alpha, dst, src) };
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += alpha * s;
    }
}

/// `dst[i] += src[i]`.
pub(crate) fn add_assign(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detection guarantees AVX2 is available.
        unsafe { avx2::add_assign(dst, src) };
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `dst[i] *= s`.
pub(crate) fn scale(dst: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detection guarantees AVX2 is available.
        unsafe { avx2::scale(dst, s) };
        return;
    }
    for d in dst.iter_mut() {
        *d *= s;
    }
}

/// `out[i] = if src[i] > 0 { src[i] } else { 0.0 }`.
///
/// Select-by-comparison rather than `max`: it maps `-0.0` and NaN inputs
/// to `+0.0` identically on every ISA (vector `max` NaN/zero semantics
/// differ between instruction sets).
pub(crate) fn relu(src: &[f32], out: &mut [f32]) {
    debug_assert_eq!(src.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detection guarantees AVX2 is available.
        unsafe { avx2::relu(src, out) };
        return;
    }
    for (o, &x) in out.iter_mut().zip(src) {
        *o = if x > 0.0 { x } else { 0.0 };
    }
}

/// ReLU backward: `out[i] = if y[i] > 0 { g[i] } else { 0.0 }`, where `y`
/// is the cached forward *output*.
pub(crate) fn relu_grad(y: &[f32], g: &[f32], out: &mut [f32]) {
    debug_assert_eq!(y.len(), g.len());
    debug_assert_eq!(y.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detection guarantees AVX2 is available.
        unsafe { avx2::relu_grad(y, g, out) };
        return;
    }
    for ((o, &yv), &gv) in out.iter_mut().zip(y).zip(g) {
        *o = if yv > 0.0 { gv } else { 0.0 };
    }
}

/// Leaky ReLU: `out[i] = if src[i] > 0 { src[i] } else { alpha * src[i] }`.
pub(crate) fn leaky_relu(alpha: f32, src: &[f32], out: &mut [f32]) {
    debug_assert_eq!(src.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detection guarantees AVX2 is available.
        unsafe { avx2::leaky_relu(alpha, src, out) };
        return;
    }
    for (o, &x) in out.iter_mut().zip(src) {
        *o = if x > 0.0 { x } else { alpha * x };
    }
}

/// Leaky ReLU backward against the cached forward *input* `x`:
/// `out[i] = if x[i] > 0 { g[i] } else { alpha * g[i] }`.
pub(crate) fn leaky_relu_grad(alpha: f32, x: &[f32], g: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), g.len());
    debug_assert_eq!(x.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detection guarantees AVX2 is available.
        unsafe { avx2::leaky_relu_grad(alpha, x, g, out) };
        return;
    }
    for ((o, &xv), &gv) in out.iter_mut().zip(x).zip(g) {
        *o = if xv > 0.0 { gv } else { alpha * gv };
    }
}

/// AVX2 elementwise kernels. Each mirrors its portable counterpart
/// lane-for-lane: identical operations, identical rounding, so results
/// are bit-identical — the vector just advances 8 elements at a time.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::BinOp;
    use std::arch::x86_64::*;

    const LANES: usize = 8;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn binary(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = out.len();
        let mut i = 0;
        while i + LANES <= n {
            let x = _mm256_loadu_ps(a.as_ptr().add(i));
            let y = _mm256_loadu_ps(b.as_ptr().add(i));
            let r = match op {
                BinOp::Add => _mm256_add_ps(x, y),
                BinOp::Sub => _mm256_sub_ps(x, y),
                BinOp::Mul => _mm256_mul_ps(x, y),
                BinOp::Div => _mm256_div_ps(x, y),
            };
            _mm256_storeu_ps(out.as_mut_ptr().add(i), r);
            i += LANES;
        }
        super::binary_portable(op, &a[i..], &b[i..], &mut out[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy(alpha: f32, dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            // mul then add (not fmadd): matches the scalar `d + alpha*s`.
            let r = _mm256_add_ps(d, _mm256_mul_ps(va, s));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), r);
            i += LANES;
        }
        for (d, &s) in dst[i..].iter_mut().zip(&src[i..]) {
            *d += alpha * s;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, s));
            i += LANES;
        }
        for (d, &s) in dst[i..].iter_mut().zip(&src[i..]) {
            *d += s;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale(dst: &mut [f32], s: f32) {
        let n = dst.len();
        let vs = _mm256_set1_ps(s);
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_mul_ps(d, vs));
            i += LANES;
        }
        for d in dst[i..].iter_mut() {
            *d *= s;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relu(src: &[f32], out: &mut [f32]) {
        let n = out.len();
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= n {
            let x = _mm256_loadu_ps(src.as_ptr().add(i));
            // x > 0 ? x : 0 — the mask is all-ones/all-zeros per lane, so
            // AND implements the select (NaN compares false -> 0).
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(x, zero);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_and_ps(x, mask));
            i += LANES;
        }
        for (o, &x) in out[i..].iter_mut().zip(&src[i..]) {
            *o = if x > 0.0 { x } else { 0.0 };
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relu_grad(y: &[f32], g: &[f32], out: &mut [f32]) {
        let n = out.len();
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= n {
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            let gv = _mm256_loadu_ps(g.as_ptr().add(i));
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(yv, zero);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_and_ps(gv, mask));
            i += LANES;
        }
        for ((o, &yv), &gv) in out[i..].iter_mut().zip(&y[i..]).zip(&g[i..]) {
            *o = if yv > 0.0 { gv } else { 0.0 };
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn leaky_relu(alpha: f32, src: &[f32], out: &mut [f32]) {
        let n = out.len();
        let zero = _mm256_setzero_ps();
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + LANES <= n {
            let x = _mm256_loadu_ps(src.as_ptr().add(i));
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(x, zero);
            let neg = _mm256_mul_ps(va, x);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_blendv_ps(neg, x, mask));
            i += LANES;
        }
        for (o, &x) in out[i..].iter_mut().zip(&src[i..]) {
            *o = if x > 0.0 { x } else { alpha * x };
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn leaky_relu_grad(alpha: f32, x: &[f32], g: &[f32], out: &mut [f32]) {
        let n = out.len();
        let zero = _mm256_setzero_ps();
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + LANES <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let gv = _mm256_loadu_ps(g.as_ptr().add(i));
            let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(xv, zero);
            let neg = _mm256_mul_ps(va, gv);
            _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_blendv_ps(neg, gv, mask));
            i += LANES;
        }
        for ((o, &xv), &gv) in out[i..].iter_mut().zip(&x[i..]).zip(&g[i..]) {
            *o = if xv > 0.0 { gv } else { alpha * gv };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that flip the process-global active ISA.
    static ISA_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn mk(seed: u32, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                ((h % 2001) as f32) / 500.0 - 2.0
            })
            .collect()
    }

    /// Runs `f` under the scalar ISA and the detected ISA and asserts the
    /// outputs match bit-for-bit.
    fn assert_isa_bit_identical(f: impl Fn() -> Vec<f32>) {
        let _g = ISA_LOCK.lock().unwrap();
        assert!(set_isa(Isa::Scalar));
        let scalar = f();
        assert!(set_isa(detect()));
        let native = f();
        assert_eq!(
            scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            native.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn isa_names_and_levels_are_stable() {
        assert_eq!(Isa::Scalar.name(), "scalar");
        assert_eq!(Isa::Avx2.name(), "avx2");
        assert_eq!(Isa::Neon.name(), "neon");
        assert_eq!(Isa::Scalar.level(), 0);
        assert!(supported(Isa::Scalar));
        assert!(supported(detect()));
    }

    #[test]
    fn set_isa_rejects_unsupported() {
        let _g = ISA_LOCK.lock().unwrap();
        let host = detect();
        if host != Isa::Neon {
            assert!(!set_isa(Isa::Neon));
        }
        if host != Isa::Avx2 {
            assert!(!set_isa(Isa::Avx2));
        }
        assert!(set_isa(host));
        assert_eq!(active_isa(), host);
    }

    #[test]
    fn binary_ops_bit_identical_across_isas() {
        // 1037 is deliberately not a multiple of the vector width, so the
        // tail path runs too.
        let a = mk(1, 1037);
        let b = mk(2, 1037);
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div] {
            assert_isa_bit_identical(|| {
                let mut out = vec![0.0; a.len()];
                binary(op, &a, &b, &mut out);
                out
            });
        }
    }

    #[test]
    fn accumulators_bit_identical_across_isas() {
        let src = mk(3, 517);
        assert_isa_bit_identical(|| {
            let mut d = mk(4, 517);
            axpy(0.37, &mut d, &src);
            add_assign(&mut d, &src);
            scale(&mut d, -1.25);
            d
        });
    }

    #[test]
    fn relu_family_bit_identical_across_isas() {
        let mut x = mk(5, 299);
        // Force the edge cases the select semantics pin down.
        x[0] = -0.0;
        x[1] = 0.0;
        x[2] = f32::NAN;
        x[3] = f32::INFINITY;
        x[4] = f32::NEG_INFINITY;
        let g = mk(6, 299);
        assert_isa_bit_identical(|| {
            let mut out = vec![0.0; x.len()];
            let mut parts = Vec::new();
            relu(&x, &mut out);
            parts.extend_from_slice(&out);
            relu_grad(&x, &g, &mut out);
            parts.extend_from_slice(&out);
            leaky_relu(0.01, &x, &mut out);
            parts.extend_from_slice(&out);
            leaky_relu_grad(0.01, &x, &g, &mut out);
            parts.extend_from_slice(&out);
            parts
        });
    }

    #[test]
    fn relu_edge_semantics() {
        let x = [-0.0f32, 0.0, f32::NAN, -3.5, 2.0];
        let mut out = [9.0f32; 5];
        relu(&x, &mut out);
        assert_eq!(out[0].to_bits(), 0.0f32.to_bits(), "-0.0 maps to +0.0");
        assert_eq!(out[1], 0.0);
        assert_eq!(out[2], 0.0, "NaN maps to 0");
        assert_eq!(out[3], 0.0);
        assert_eq!(out[4], 2.0);
    }
}
