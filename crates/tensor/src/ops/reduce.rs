//! Reductions: sums, means, extrema, softmax.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements. Returns 0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Returns `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sums along `axis`, removing it.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let out_shape = self.shape().without_axis(axis)?;
        let mut out = Tensor::zeros(out_shape);
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    dst[obase + i] += src[base + i];
                }
            }
        }
        Ok(out)
    }

    /// Means along `axis`, removing it.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for an invalid axis.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        if axis >= self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let count = self.dims()[axis].max(1) as f32;
        Ok(self.sum_axis(axis)?.scale(1.0 / count))
    }

    /// Index of the maximum element of each row of a rank-2 tensor.
    ///
    /// Ties resolve to the lowest index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "argmax_rows",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let data = self.as_slice();
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            let row = &data[i * c..(i + 1) * c];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Numerically-stable row-wise softmax of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "softmax_rows",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = self.clone();
        let data = out.as_mut_slice();
        for i in 0..r {
            let row = &mut data[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        Ok(out)
    }

    /// Row-wise log-softmax of a rank-2 tensor (stable).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn log_softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "log_softmax_rows",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = self.clone();
        let data = out.as_mut_slice();
        for i in 0..r {
            let row = &mut data[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let z: f32 = row.iter().map(|&v| (v - m).exp()).sum();
            let log_z = m + z.ln();
            for v in row.iter_mut() {
                *v -= log_z;
            }
        }
        Ok(out)
    }

    /// Per-column mean and (population) variance of a rank-2 tensor, as a
    /// pair of rank-1 tensors of length `cols`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
    pub fn column_stats(&self) -> Result<(Tensor, Tensor)> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "column_stats",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let n = r.max(1) as f32;
        let data = self.as_slice();
        let mut mean = vec![0.0f32; c];
        for i in 0..r {
            for j in 0..c {
                mean[j] += data[i * c + j];
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; c];
        for i in 0..r {
            for j in 0..c {
                let d = data[i * c + j] - mean[j];
                var[j] += d * d;
            }
        }
        for v in &mut var {
            *v /= n;
        }
        Ok((Tensor::from_vec(mean, [c])?, Tensor::from_vec(var, [c])?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, 4.0], [2, 2]).unwrap();
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 1.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -2.0);
    }

    #[test]
    fn sum_axis_all_axes() {
        let t = Tensor::arange(24).reshape([2, 3, 4]).unwrap();
        let s0 = t.sum_axis(0).unwrap();
        assert_eq!(s0.dims(), &[3, 4]);
        assert_eq!(s0.get(&[0, 0]).unwrap(), 0.0 + 12.0);
        let s1 = t.sum_axis(1).unwrap();
        assert_eq!(s1.dims(), &[2, 4]);
        assert_eq!(s1.get(&[0, 0]).unwrap(), 0.0 + 4.0 + 8.0);
        let s2 = t.sum_axis(2).unwrap();
        assert_eq!(s2.dims(), &[2, 3]);
        assert_eq!(s2.get(&[0, 0]).unwrap(), 0.0 + 1.0 + 2.0 + 3.0);
        assert!(t.sum_axis(3).is_err());
    }

    #[test]
    fn mean_axis() {
        let t = Tensor::arange(6).reshape([2, 3]).unwrap();
        let m = t.mean_axis(0).unwrap();
        assert_eq!(m.as_slice(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn argmax_rows_with_ties() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0, -1.0, -5.0], [2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
        assert!(Tensor::arange(3).argmax_rows().is_err());
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], [2, 3]).unwrap();
        let s = t.softmax_rows().unwrap();
        for i in 0..2 {
            let row_sum: f32 = s.row(i).unwrap().sum();
            assert!((row_sum - 1.0).abs() < 1e-5, "row {i} sums to {row_sum}");
        }
        // Large inputs must not overflow (stability check).
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
        // Uniform logits -> uniform distribution.
        assert!((s.get(&[1, 0]).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0], [1, 3]).unwrap();
        let ls = t.log_softmax_rows().unwrap();
        let s = t.softmax_rows().unwrap();
        for j in 0..3 {
            assert!((ls.as_slice()[j].exp() - s.as_slice()[j]).abs() < 1e-6);
        }
    }

    #[test]
    fn column_stats_values() {
        let t = Tensor::from_vec(vec![1.0, 10.0, 3.0, 20.0], [2, 2]).unwrap();
        let (mean, var) = t.column_stats().unwrap();
        assert_eq!(mean.as_slice(), &[2.0, 15.0]);
        assert_eq!(var.as_slice(), &[1.0, 25.0]);
    }
}
