//! 2-D max- and average-pooling with exact backward passes.
//!
//! The forward passes and the average-pooling backward pass are
//! parallelised over `(batch, channel)` planes — every plane writes a
//! disjoint output region, so results are identical for any pool size.
//! The max-pooling backward pass stays sequential: it scatters through
//! caller-supplied `argmax` indices, which the type system cannot prove
//! disjoint, and it is a single cheap pass.

use crate::error::{Result, TensorError};
use crate::ops::conv::Conv2dSpec;
use crate::pool;
use crate::tensor::Tensor;

fn check_nchw(t: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if t.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.rank(),
            op,
        });
    }
    let d = t.dims();
    Ok((d[0], d[1], d[2], d[3]))
}

/// Result of a max-pooling forward pass: the pooled tensor plus the flat
/// input index each output element was taken from (needed by the backward
/// pass).
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled activations, `[N, C, OH, OW]`.
    pub output: Tensor,
    /// For each output element, the flat index into the input buffer of the
    /// winning element.
    pub argmax: Vec<usize>,
}

/// Max-pooling forward pass over an `NCHW` tensor.
///
/// Padding positions are treated as `-inf` (they never win).
///
/// # Errors
///
/// Returns shape errors for non-4-D inputs or non-fitting windows.
pub fn maxpool2d_forward(input: &Tensor, spec: Conv2dSpec) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = check_nchw(input, "maxpool2d")?;
    let (oh, ow) = spec.output_hw(h, w)?;
    let mut output = Tensor::zeros([n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let src = input.as_slice();
    let pad = spec.padding as isize;
    let plane = oh * ow;
    let dst = pool::RawSliceMut::new(output.as_mut_slice());
    let arg = pool::RawSliceMut::new(&mut argmax);
    pool::parallel_for(n * c, |p| {
        let base = p * h * w;
        // SAFETY: plane `p` owns exactly `[p * plane, (p + 1) * plane)`
        // of both outputs.
        let dst = unsafe { dst.slice(p * plane, (p + 1) * plane) };
        let arg = unsafe { arg.slice(p * plane, (p + 1) * plane) };
        let mut oidx = 0usize;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = base; // fallback; will be overwritten
                for ky in 0..spec.kernel_h {
                    let iy = (oy * spec.stride) as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..spec.kernel_w {
                        let ix = (ox * spec.stride) as isize + kx as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        let idx = base + iy as usize * w + ix as usize;
                        if src[idx] > best {
                            best = src[idx];
                            best_idx = idx;
                        }
                    }
                }
                dst[oidx] = best;
                arg[oidx] = best_idx;
                oidx += 1;
            }
        }
    });
    Ok(MaxPoolOutput { output, argmax })
}

/// Max-pooling backward pass: routes each upstream gradient to the winning
/// input position recorded in `argmax`.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if `grad_out` and `argmax`
/// disagree in length.
pub fn maxpool2d_backward(grad_out: &Tensor, argmax: &[usize], input_shape: &crate::Shape) -> Result<Tensor> {
    if grad_out.numel() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: argmax.len(),
            actual: grad_out.numel(),
        });
    }
    let mut grad_in = Tensor::zeros(input_shape.clone());
    let gi = grad_in.as_mut_slice();
    for (&g, &idx) in grad_out.as_slice().iter().zip(argmax) {
        gi[idx] += g;
    }
    Ok(grad_in)
}

/// Average-pooling forward pass over an `NCHW` tensor.
///
/// The divisor is the full kernel area (`count_include_pad` semantics), so
/// forward and backward stay exact adjoints.
///
/// # Errors
///
/// Returns shape errors for non-4-D inputs or non-fitting windows.
pub fn avgpool2d_forward(input: &Tensor, spec: Conv2dSpec) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "avgpool2d")?;
    let (oh, ow) = spec.output_hw(h, w)?;
    let area = (spec.kernel_h * spec.kernel_w) as f32;
    let mut output = Tensor::zeros([n, c, oh, ow]);
    let src = input.as_slice();
    let pad = spec.padding as isize;
    pool::parallel_chunks_mut(output.as_mut_slice(), oh * ow, |p, dst| {
        let base = p * h * w;
        let mut oidx = 0usize;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..spec.kernel_h {
                    let iy = (oy * spec.stride) as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..spec.kernel_w {
                        let ix = (ox * spec.stride) as isize + kx as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        acc += src[base + iy as usize * w + ix as usize];
                    }
                }
                dst[oidx] = acc / area;
                oidx += 1;
            }
        }
    });
    Ok(output)
}

/// Average-pooling backward pass: spreads each upstream gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns shape errors if `grad_out` is inconsistent with `input_shape`
/// under `spec`.
pub fn avgpool2d_backward(grad_out: &Tensor, input_shape: &crate::Shape, spec: Conv2dSpec) -> Result<Tensor> {
    let d = input_shape.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: d.len(),
            op: "avgpool2d_backward",
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (oh, ow) = spec.output_hw(h, w)?;
    let (gn, gc, goh, gow) = check_nchw(grad_out, "avgpool2d_backward")?;
    if gn != n || gc != c || goh != oh || gow != ow {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().clone(),
            rhs: input_shape.clone(),
            op: "avgpool2d_backward",
        });
    }
    let area = (spec.kernel_h * spec.kernel_w) as f32;
    let mut grad_in = Tensor::zeros(input_shape.clone());
    let g = grad_out.as_slice();
    let pad = spec.padding as isize;
    pool::parallel_chunks_mut(grad_in.as_mut_slice(), h * w, |p, gi| {
        let mut oidx = p * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let gv = g[oidx] / area;
                oidx += 1;
                for ky in 0..spec.kernel_h {
                    let iy = (oy * spec.stride) as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..spec.kernel_w {
                        let ix = (ox * spec.stride) as isize + kx as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        gi[iy as usize * w + ix as usize] += gv;
                    }
                }
            }
        }
    });
    Ok(grad_in)
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-4-D inputs.
pub fn global_avgpool(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "global_avgpool")?;
    let area = (h * w) as f32;
    let mut out = Tensor::zeros([n, c]);
    let src = input.as_slice();
    pool::parallel_chunks_mut(out.as_mut_slice(), c, |i, dst| {
        for (ch, d) in dst.iter_mut().enumerate() {
            let base = (i * c + ch) * h * w;
            *d = src[base..base + h * w].iter().sum::<f32>() / area;
        }
    });
    Ok(out)
}

/// Backward of [`global_avgpool`]: spreads `[N, C]` gradients uniformly over
/// the spatial plane.
///
/// # Errors
///
/// Returns shape errors on inconsistency.
pub fn global_avgpool_backward(grad_out: &Tensor, input_shape: &crate::Shape) -> Result<Tensor> {
    let d = input_shape.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: d.len(),
            op: "global_avgpool_backward",
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    if grad_out.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.shape().clone(),
            rhs: input_shape.clone(),
            op: "global_avgpool_backward",
        });
    }
    let area = (h * w) as f32;
    let mut grad_in = Tensor::zeros(input_shape.clone());
    let g = grad_out.as_slice();
    pool::parallel_chunks_mut(grad_in.as_mut_slice(), h * w, |p, gi| {
        let gv = g[p] / area;
        for v in gi.iter_mut() {
            *v = gv;
        }
    });
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn input_2x2_blocks() -> Tensor {
        // [1,1,4,4] with distinct values 0..16
        Tensor::arange(16).reshape([1, 1, 4, 4]).unwrap()
    }

    #[test]
    fn maxpool_2x2() {
        let input = input_2x2_blocks();
        let MaxPoolOutput { output, argmax } =
            maxpool2d_forward(&input, Conv2dSpec::square(2, 2, 0)).unwrap();
        assert_eq!(output.dims(), &[1, 1, 2, 2]);
        assert_eq!(output.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let input = input_2x2_blocks();
        let fw = maxpool2d_forward(&input, Conv2dSpec::square(2, 2, 0)).unwrap();
        let grad_out = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]).unwrap();
        let gi = maxpool2d_backward(&grad_out, &fw.argmax, input.shape()).unwrap();
        assert_eq!(gi.as_slice()[5], 1.0);
        assert_eq!(gi.as_slice()[7], 2.0);
        assert_eq!(gi.as_slice()[13], 3.0);
        assert_eq!(gi.as_slice()[15], 4.0);
        assert_eq!(gi.sum(), 10.0);
        assert!(maxpool2d_backward(&Tensor::ones([5]), &fw.argmax, input.shape()).is_err());
    }

    #[test]
    fn maxpool_with_padding_ignores_pad() {
        // All-negative input: padding must not win even though values < 0.
        let input = Tensor::full([1, 1, 2, 2], -3.0);
        let fw = maxpool2d_forward(&input, Conv2dSpec::square(3, 1, 1)).unwrap();
        assert!(fw.output.as_slice().iter().all(|&v| v == -3.0));
    }

    #[test]
    fn avgpool_values_and_adjoint() {
        let input = input_2x2_blocks();
        let spec = Conv2dSpec::square(2, 2, 0);
        let out = avgpool2d_forward(&input, spec).unwrap();
        assert_eq!(out.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
        // Adjoint identity: <Ax, y> == <x, Aᵀy> for the linear pooling map.
        let y = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], [1, 1, 2, 2]).unwrap();
        let lhs = out.dot(&y).unwrap();
        let aty = avgpool2d_backward(&y, input.shape(), spec).unwrap();
        let rhs = input.dot(&aty).unwrap();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn avgpool_backward_shape_checks() {
        let spec = Conv2dSpec::square(2, 2, 0);
        let bad = Tensor::ones([1, 1, 3, 3]);
        assert!(avgpool2d_backward(&bad, &Shape::from([1, 1, 4, 4]), spec).is_err());
        assert!(avgpool2d_backward(&bad, &Shape::from([4, 4]), spec).is_err());
    }

    #[test]
    fn global_avgpool_and_backward() {
        let input = Tensor::arange(8).reshape([1, 2, 2, 2]).unwrap();
        let out = global_avgpool(&input).unwrap();
        assert_eq!(out.dims(), &[1, 2]);
        assert_eq!(out.as_slice(), &[1.5, 5.5]);
        let g = Tensor::from_vec(vec![4.0, 8.0], [1, 2]).unwrap();
        let gi = global_avgpool_backward(&g, input.shape()).unwrap();
        assert_eq!(gi.as_slice()[..4], [1.0; 4]);
        assert_eq!(gi.as_slice()[4..], [2.0; 4]);
        assert!(global_avgpool_backward(&Tensor::ones([2, 2]), input.shape()).is_err());
        assert!(global_avgpool(&Tensor::ones([2, 2])).is_err());
    }
}
